"""Ablation bench — 1-d bucketing strategies (paper §3.2's list).

Compares Jenks, k-means, EM, KDE, quantile and equal-width splitting on
the same repository: grouping-module runtime plus downstream selection
quality (total score of the greedy subset on the resulting instance,
normalized per strategy by its own max score so instances of different
group counts are comparable).

Asserted shape: every strategy yields a valid instance Podium covers
well; Jenks (the default) is not dominated on normalized score.
"""

import time

import pytest

from repro.core import (
    GroupingConfig,
    build_instance,
    build_simple_groups,
    greedy_select,
)
from repro.core.buckets import STRATEGIES
from repro.datasets.synth import generate_profile_repository

BUDGET = 8


@pytest.fixture(scope="module")
def repo():
    return generate_profile_repository(
        n_users=500, n_properties=120, mean_profile_size=30.0, seed=37
    )


def _compare(repo):
    rows = {}
    for strategy in sorted(STRATEGIES):
        start = time.perf_counter()
        groups = build_simple_groups(
            repo, GroupingConfig(strategy=strategy, min_support=3)
        )
        grouping_seconds = time.perf_counter() - start
        instance = build_instance(repo, BUDGET, groups=groups)
        result = greedy_select(repo, instance)
        rows[strategy] = {
            "groups": len(groups),
            "grouping_seconds": grouping_seconds,
            "score_fraction": float(result.score) / float(instance.max_score()),
        }
    return rows


def test_ablation_bucketing_strategies(benchmark, repo):
    rows = benchmark.pedantic(_compare, args=(repo,), rounds=1, iterations=1)
    print()
    print("| strategy | groups | grouping s | greedy score / max |")
    print("|---|---|---|---|")
    for strategy, row in rows.items():
        print(
            f"| {strategy} | {row['groups']} | "
            f"{row['grouping_seconds']:.3f} | {row['score_fraction']:.3f} |"
        )

    fractions = {s: r["score_fraction"] for s, r in rows.items()}
    assert all(0.0 < f <= 1.0 for f in fractions.values())
    # The default strategy holds its own (within 10% of the best).
    assert fractions["jenks"] >= 0.9 * max(fractions.values())

    benchmark.extra_info["rows"] = {
        s: {k: round(v, 4) for k, v in r.items()} for s, r in rows.items()
    }
