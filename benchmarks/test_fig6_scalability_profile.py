"""Fig. 6 bench — selection runtime versus average profile size.

Population fixed (the paper uses 8K users; we default to 2K to keep the
bench under a minute), average properties-per-user swept.

Paper shape asserted: Podium's runtime grows linearly with profile size
(R² ≥ 0.85) and stays well below Clustering's at the largest profiles.
"""

import pytest

from repro.experiments import (
    ScalabilitySetup,
    linear_fit_r2,
    scalability_in_profile_size,
    timing_table,
)


@pytest.fixture(scope="module")
def setup():
    return ScalabilitySetup(
        fixed_users=2000,
        profile_sizes=(10, 20, 40, 80),
        n_properties=200,
        repetitions=3,
    )


def test_fig6_scalability_profile(benchmark, setup):
    rows = benchmark.pedantic(
        scalability_in_profile_size, args=(setup,), rounds=1, iterations=1
    )
    print()
    print(timing_table(rows))

    r2 = linear_fit_r2(rows, "Podium")
    print(f"Podium linear-fit R^2 = {r2:.3f}")
    assert r2 >= 0.85

    largest = max(setup.profile_sizes)
    by_algo = {r.algorithm: r.seconds for r in rows if r.x == largest}
    print(f"at profile size {largest}: {by_algo}")
    assert by_algo["Clustering"] >= by_algo["Podium"]

    benchmark.extra_info["timings"] = {
        f"{r.algorithm}@{r.x}": round(r.seconds, 5) for r in rows
    }
