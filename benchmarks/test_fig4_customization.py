"""Fig. 4 bench — Yelp intrinsic diversity with customization.

Nested random priority-group sets G_20 ⊆ G_40 ⊆ G_60 ⊆ G_80 fed as
"priority coverage" feedback, 10 repetitions, B = 8.

Paper shape asserted: the intrinsic metrics stay close to the
no-customization baseline (priority coverage restricts standard coverage
only "not by a significant gap"), while Feedback Group Coverage drops
markedly as |G_d| grows.
"""

import pytest

from repro.experiments import Fig4Setup, fig4


@pytest.fixture(scope="module")
def setup():
    return Fig4Setup(n_users=600, repetitions=10, seed=11)


def test_fig4_customization(benchmark, setup):
    table = benchmark.pedantic(fig4, args=(setup,), rounds=1, iterations=1)
    print()
    print(table.to_markdown())

    base = table.rows["no-customization"]
    sizes = setup.priority_sizes

    coverages = [
        table.rows[f"priority-{s}"]["feedback_group_coverage"] for s in sizes
    ]
    # Feedback coverage decreases significantly with more priority groups.
    assert coverages == sorted(coverages, reverse=True) or (
        coverages[0] > coverages[-1]
    )
    assert coverages[-1] < coverages[0]

    # Intrinsic metrics dip only mildly relative to the baseline.
    for size in sizes:
        row = table.rows[f"priority-{size}"]
        assert row["total_score"] >= 0.7 * base["total_score"]
        assert row["top_k_coverage"] >= base["top_k_coverage"] - 0.35

    for metric in table.metrics:
        benchmark.extra_info[metric] = {
            name: round(row[metric], 4) for name, row in table.rows.items()
        }
