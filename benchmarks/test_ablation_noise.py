"""Ablation bench — randomness via noisy group weights (paper §10).

The paper's future work proposes "adding noise to group weights" to
diversify repeated selections.  This bench implements that extension:
multiplicative log-normal noise on the LBS weights, re-selecting across
seeds, and measures (a) how much the subsets vary and (b) how much total
score is sacrificed.

Asserted shape: noise produces distinct subsets across seeds while the
noisy subsets retain most of the noiseless greedy score (>= 85% at
sigma = 0.3).
"""

import numpy as np
import pytest

from repro.core import (
    GroupingConfig,
    build_instance,
    build_simple_groups,
    greedy_select,
    randomized_select,
    subset_score,
)
from repro.datasets.synth import generate_profile_repository

BUDGET = 8
SIGMA = 0.3
SEEDS = range(8)


@pytest.fixture(scope="module")
def setup():
    repo = generate_profile_repository(
        n_users=600, n_properties=120, mean_profile_size=25.0, seed=53
    )
    groups = build_simple_groups(repo, GroupingConfig(min_support=3))
    instance = build_instance(repo, BUDGET, groups=groups)
    return repo, instance


def _run(repo, instance):
    baseline = greedy_select(repo, instance)
    subsets = []
    retained = []
    for seed in SEEDS:
        picked = randomized_select(
            repo, instance, sigma=SIGMA, seed=seed
        ).selected
        subsets.append(frozenset(picked))
        retained.append(
            float(subset_score(instance, picked)) / float(baseline.score)
        )
    return baseline, subsets, retained


def test_ablation_noisy_weights(benchmark, setup):
    repo, instance = setup
    baseline, subsets, retained = benchmark.pedantic(
        _run, args=(repo, instance), rounds=1, iterations=1
    )
    distinct = len(set(subsets))
    mean_retained = float(np.mean(retained))
    print(
        f"\ndistinct subsets over {len(list(SEEDS))} seeds: {distinct}; "
        f"mean retained score: {mean_retained:.3f}"
    )
    assert distinct >= 2  # noise actually diversifies the output
    assert mean_retained >= 0.85  # without giving up much coverage
    # Note: individual retained ratios may exceed 1.0 — greedy is only a
    # (1 − 1/e) approximation, so a noisy run can luck into a better
    # subset for the original objective.

    benchmark.extra_info["distinct_subsets"] = distinct
    benchmark.extra_info["mean_retained_score"] = round(mean_retained, 4)
