"""Ablation bench — taxonomy enrichment on vs off (paper §3.1).

Enrichment (generalization + functional rules) grows profiles and the
group set; the paper argues it makes selection better informed.  This
bench measures the group count delta and whether the enriched selection
still covers the *raw* (un-enriched) top groups at least as well.

Asserted shape: enrichment strictly adds properties and groups, and the
subset selected on enriched profiles loses nothing on raw top-k coverage.
"""

import pytest

from repro.core import (
    GroupingConfig,
    build_instance,
    build_simple_groups,
    greedy_select,
)
from repro.datasets import (
    DeriveConfig,
    build_repository,
)
from repro.metrics import top_k_coverage

BUDGET = 8


@pytest.fixture(scope="module")
def repositories(bench_ta_dataset):
    enriched = build_repository(bench_ta_dataset, DeriveConfig())
    raw = build_repository(
        bench_ta_dataset,
        DeriveConfig(enrich_taxonomy=False, functional_lives_in=False),
    )
    return raw, enriched


def _compare(raw, enriched):
    grouping = GroupingConfig(min_support=3)
    raw_groups = build_simple_groups(raw, grouping)
    enriched_groups = build_simple_groups(enriched, grouping)
    raw_instance = build_instance(raw, BUDGET, groups=raw_groups)
    enriched_instance = build_instance(
        enriched, BUDGET, groups=enriched_groups
    )
    raw_pick = greedy_select(raw, raw_instance).selected
    enriched_pick = greedy_select(enriched, enriched_instance).selected
    return {
        "raw_properties": len(raw.property_labels),
        "enriched_properties": len(enriched.property_labels),
        "raw_groups": len(raw_groups),
        "enriched_groups": len(enriched_groups),
        "raw_pick_on_raw_topk": top_k_coverage(raw_instance, raw_pick, 100),
        "enriched_pick_on_raw_topk": top_k_coverage(
            raw_instance, enriched_pick, 100
        ),
    }


def test_ablation_taxonomy_enrichment(benchmark, repositories):
    raw, enriched = repositories
    stats = benchmark.pedantic(
        _compare, args=(raw, enriched), rounds=1, iterations=1
    )
    print()
    for key, value in stats.items():
        print(f"  {key}: {value}")

    assert stats["enriched_properties"] > stats["raw_properties"]
    assert stats["enriched_groups"] > stats["raw_groups"]
    # Selecting on enriched profiles does not collapse raw coverage.
    assert (
        stats["enriched_pick_on_raw_topk"]
        >= stats["raw_pick_on_raw_topk"] - 0.25
    )
    benchmark.extra_info.update(
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in stats.items()}
    )
