"""Fig. 3a bench — TripAdvisor intrinsic diversity.

Regenerates the four-bar comparison (total score, top-200 coverage,
intersected-property coverage, distribution similarity) for Podium vs
Random / Clustering / Distance and prints both raw and normalized rows.

Paper shape asserted: Podium leads every metric; Distance trails on
intersected (complex-group) coverage.
"""

import pytest

from repro.core import GroupingConfig
from repro.experiments import (
    IntrinsicExperimentConfig,
    default_selectors,
    run_intrinsic_comparison,
)


@pytest.fixture(scope="module")
def config():
    return IntrinsicExperimentConfig(
        budget=8,
        grouping=GroupingConfig(min_support=3),
        top_k=200,
        repetitions=3,
    )


def test_fig3a_tripadvisor_intrinsic(benchmark, bench_ta_repository, config):
    table = benchmark.pedantic(
        run_intrinsic_comparison,
        args=(
            "Fig. 3a — TripAdvisor intrinsic diversity",
            bench_ta_repository,
            default_selectors(),
            config,
        ),
        kwargs={"seed": 7},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_markdown())
    print(table.normalized().to_markdown())

    assert table.leader("total_score") == "Podium"
    assert table.leader("top_k_coverage") == "Podium"
    assert table.leader("distribution_similarity") == "Podium"
    intersected = {
        name: row["intersected_coverage"] for name, row in table.rows.items()
    }
    assert intersected["Podium"] >= max(
        v for k, v in intersected.items() if k != "Podium"
    )
    assert intersected["Distance"] == min(intersected.values())

    for metric in table.metrics:
        benchmark.extra_info[metric] = {
            name: round(row[metric], 4) for name, row in table.rows.items()
        }
