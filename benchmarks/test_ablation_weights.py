"""Ablation bench — weight (Iden/LBS/EBS) × coverage (Single/Prop) grid.

The paper's Example 3.8 observes that Iden tends to select "eccentric"
users (sole members of their groups) where LBS/EBS prefer representatives
of larger groups.  This bench quantifies that on a synthetic population:

* eccentricity — mean pairwise property intersection of the selected
  subset (lower = more eccentric picks);
* number of covered groups (Iden's objective) vs size-weighted score.

Asserted shape: Iden covers at least as many groups as LBS; LBS selects
users with (weakly) larger pairwise overlap than Iden.
"""

import pytest

from repro.baselines import mean_pairwise_intersection
from repro.core import (
    EBSWeights,
    GroupingConfig,
    IdenWeights,
    LBSWeights,
    PropCoverage,
    SingleCoverage,
    build_instance,
    build_simple_groups,
    covered_groups,
    greedy_select,
)
from repro.datasets.synth import generate_profile_repository

BUDGET = 8


@pytest.fixture(scope="module")
def repo():
    return generate_profile_repository(
        n_users=800, n_properties=150, mean_profile_size=25.0, seed=31
    )


@pytest.fixture(scope="module")
def groups(repo):
    return build_simple_groups(repo, GroupingConfig(min_support=3))


def _grid(repo, groups):
    results = {}
    for weight in (IdenWeights(), LBSWeights(), EBSWeights()):
        for coverage in (SingleCoverage(), PropCoverage()):
            instance = build_instance(
                repo,
                BUDGET,
                groups=groups,
                weight_scheme=weight,
                coverage_scheme=coverage,
            )
            result = greedy_select(repo, instance)
            results[(weight.name, coverage.name)] = {
                "covered_groups": len(covered_groups(instance, result.selected)),
                "pairwise_intersection": mean_pairwise_intersection(
                    repo, list(result.selected)
                ),
            }
    return results


def test_ablation_weight_coverage_grid(benchmark, repo, groups):
    results = benchmark.pedantic(
        _grid, args=(repo, groups), rounds=1, iterations=1
    )
    print()
    print("| weights | coverage | covered groups | mean pairwise ∩ |")
    print("|---|---|---|---|")
    for (weight, coverage), row in results.items():
        print(
            f"| {weight} | {coverage} | {row['covered_groups']} | "
            f"{row['pairwise_intersection']:.2f} |"
        )

    iden = results[("Iden", "Single")]
    lbs = results[("LBS", "Single")]
    # Iden maximizes the number of covered groups by construction.
    assert iden["covered_groups"] >= lbs["covered_groups"]
    # LBS leans mainstream: its picks overlap at least as much as Iden's.
    assert (
        lbs["pairwise_intersection"] >= 0.9 * iden["pairwise_intersection"]
    )

    benchmark.extra_info["grid"] = {
        f"{w}+{c}": row for (w, c), row in results.items()
    }
