"""Selection-backend micro-benchmark: eager vs lazy vs matrix.

Establishes the perf baseline every later optimization PR measures
against (the ``BENCH_*.json`` trajectory).  The full Fig. 5 sweep runs
via ``python -m repro bench``; this bench keeps a laptop-scale instance
in the tier-2 suite so backend parity and the speedup direction are
checked continuously.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import (
    GroupingConfig,
    build_instance,
    build_simple_groups,
    greedy_select,
    instance_index,
)
from repro.datasets.synth import generate_profile_repository
from repro.experiments.scalability import SELECTION_BACKENDS

_BUDGET = 8
_REPETITIONS = 3


def _bench_instance(n_users: int = 2000):
    repository = generate_profile_repository(
        n_users=n_users, n_properties=200, mean_profile_size=40.0, seed=3
    )
    groups = build_simple_groups(repository, GroupingConfig(min_support=2))
    return repository, build_instance(repository, _BUDGET, groups=groups)


def test_backends_agree_and_matrix_leads():
    repository, instance = _bench_instance()
    instance_index(instance)  # offline index build, excluded from timing

    seconds: dict[str, float] = {}
    results = {}
    for backend in SELECTION_BACKENDS:
        samples = []
        for _ in range(_REPETITIONS):
            start = time.perf_counter()
            results[backend] = greedy_select(
                repository, instance, _BUDGET, method=backend
            )
            samples.append(time.perf_counter() - start)
        seconds[backend] = float(np.median(samples))

    reference = results["eager"]
    for backend in ("lazy", "matrix"):
        assert results[backend].selected == reference.selected
        assert results[backend].score == reference.score
        assert results[backend].gains == reference.gains

    print(
        "\nselection backends (|U|=2000, budget 8): "
        + ", ".join(f"{b}={seconds[b]:.4f}s" for b in SELECTION_BACKENDS)
        + f", matrix speedup {seconds['eager'] / seconds['matrix']:.1f}x"
    )
    # Direction check, deliberately far below the observed ~30x so noisy
    # CI machines never flake: the vectorized backend must beat eager.
    assert seconds["matrix"] < seconds["eager"]
