"""Micro-benchmark of Algorithm 1 itself (multiple timed rounds).

Unlike the figure benches (single pedantic rounds around whole
experiments), this one lets pytest-benchmark sample the core greedy
repeatedly, giving a stable ops/sec figure for the selection hot path on
a mid-size instance (2,000 users, ~200 properties, B = 8).
"""

import pytest

from repro.core import (
    GroupingConfig,
    build_instance,
    build_simple_groups,
    greedy_select,
)
from repro.datasets.synth import generate_profile_repository


@pytest.fixture(scope="module")
def setup():
    repo = generate_profile_repository(
        n_users=2000, n_properties=200, mean_profile_size=40.0, seed=71
    )
    groups = build_simple_groups(repo, GroupingConfig(min_support=3))
    instance = build_instance(repo, 8, groups=groups)
    return repo, instance


def test_greedy_lazy_hot_path(benchmark, setup):
    repo, instance = setup
    result = benchmark(greedy_select, repo, instance, method="lazy")
    assert len(result.selected) == 8
    assert result.score > 0


def test_greedy_eager_hot_path(benchmark, setup):
    repo, instance = setup
    result = benchmark(greedy_select, repo, instance, method="eager")
    assert len(result.selected) == 8
    assert result.score > 0
