"""§8.4 budget-sweep bench — quality as B grows.

The paper notes: "As B increases, all the quality metric improve and the
gaps between the baselines slightly decrease, but the general trends are
preserved."

Asserted shape, for B ∈ {4, 8, 16, 32} on the bench Yelp repository:
Podium's coverage metrics are non-decreasing in B, Podium leads total
score at every B, and the normalized Podium-vs-Random gap at B = 32 is
no larger than at B = 4.
"""

import numpy as np
import pytest

from repro.baselines import PodiumSelector, RandomSelector
from repro.core import build_instance
from repro.metrics import evaluate_intrinsic

BUDGETS = (4, 8, 16, 32)


def _sweep(repository, groups):
    rows = {}
    for budget in BUDGETS:
        instance = build_instance(repository, budget, groups=groups)
        podium = PodiumSelector().select(repository, instance, budget)
        random_reports = []
        for rep in range(3):
            rng = np.random.default_rng((budget, rep))
            picked = RandomSelector().select(
                repository, instance, budget, rng=rng
            )
            random_reports.append(evaluate_intrinsic(instance, picked))
        rows[budget] = {
            "podium": evaluate_intrinsic(instance, podium).as_dict(),
            "random": {
                metric: float(
                    np.mean([r.as_dict()[metric] for r in random_reports])
                )
                for metric in random_reports[0].as_dict()
            },
        }
    return rows


@pytest.fixture(scope="module")
def groups(bench_yelp_repository):
    from repro.core import GroupingConfig, build_simple_groups

    return build_simple_groups(
        bench_yelp_repository, GroupingConfig(min_support=3)
    )


def test_budget_sweep(benchmark, bench_yelp_repository, groups):
    rows = benchmark.pedantic(
        _sweep, args=(bench_yelp_repository, groups), rounds=1, iterations=1
    )
    print()
    print("| B | Podium top-k | Random top-k | Podium score | Random score |")
    print("|---|---|---|---|---|")
    for budget in BUDGETS:
        p, r = rows[budget]["podium"], rows[budget]["random"]
        print(
            f"| {budget} | {p['top_k_coverage']:.3f} | "
            f"{r['top_k_coverage']:.3f} | {p['total_score']:.0f} | "
            f"{r['total_score']:.0f} |"
        )

    podium_topk = [rows[b]["podium"]["top_k_coverage"] for b in BUDGETS]
    assert podium_topk == sorted(podium_topk)  # improves with B
    for budget in BUDGETS:
        assert (
            rows[budget]["podium"]["total_score"]
            > rows[budget]["random"]["total_score"]
        )

    def gap(budget):
        return (
            rows[budget]["podium"]["total_score"]
            / rows[budget]["random"]["total_score"]
        )

    assert gap(BUDGETS[-1]) <= gap(BUDGETS[0]) + 0.02  # gaps shrink
    benchmark.extra_info["gaps"] = {
        str(b): round(gap(b), 4) for b in BUDGETS
    }
