"""Ablation bench — Podium vs classical stratified sampling (§2, Table 1).

Stratified sampling is the survey-methodology gold standard the paper
positions itself against: sound on a *single* low-dimensional
stratification variable, but unable to exploit hundreds of overlapping
dimensions.  This bench runs both on the bench TripAdvisor repository.

Asserted shape: the stratified panel beats Random on distribution
similarity of its own stratification dimension family, but Podium beats
stratified on total score and top-k coverage — the high-dimension gap
Table 1 encodes.
"""

import numpy as np

from repro.baselines import PodiumSelector, RandomSelector, StratifiedSelector
from repro.metrics import evaluate_intrinsic


def _compare(repository, instance):
    rows = {}
    for index, selector in enumerate(
        (PodiumSelector(), StratifiedSelector(), RandomSelector())
    ):
        reports = []
        for rep in range(3):
            rng = np.random.default_rng((index, rep))
            selected = selector.select(repository, instance, 8, rng=rng)
            reports.append(evaluate_intrinsic(instance, selected, k=200))
        rows[selector.name] = {
            metric: float(
                np.mean([r.as_dict()[metric] for r in reports])
            )
            for metric in reports[0].as_dict()
        }
    return rows


def test_ablation_stratified_sampling(
    benchmark, bench_ta_repository, bench_ta_instance
):
    rows = benchmark.pedantic(
        _compare,
        args=(bench_ta_repository, bench_ta_instance),
        rounds=1,
        iterations=1,
    )
    print()
    metrics = list(next(iter(rows.values())))
    print("| algorithm | " + " | ".join(metrics) + " |")
    print("|---" * (len(metrics) + 1) + "|")
    for name, row in rows.items():
        cells = " | ".join(f"{row[m]:.3f}" for m in metrics)
        print(f"| {name} | {cells} |")

    assert rows["Podium"]["total_score"] > rows["Stratified"]["total_score"]
    assert (
        rows["Podium"]["top_k_coverage"]
        > rows["Stratified"]["top_k_coverage"]
    )
    # Stratified is a sane baseline: at worst marginally behind Random.
    assert (
        rows["Stratified"]["distribution_similarity"]
        >= rows["Random"]["distribution_similarity"] - 0.05
    )
    benchmark.extra_info["rows"] = {
        name: {m: round(v, 4) for m, v in row.items()}
        for name, row in rows.items()
    }
