"""Shared fixtures for the benchmark harness.

Benchmarks regenerate every table and figure of the paper at laptop
scale.  Dataset construction is hoisted into session fixtures so each
figure's bench times the *experiment*, not the generator.
"""

from __future__ import annotations

import pytest

from repro.core import GroupingConfig, build_instance, build_simple_groups
from repro.datasets import (
    build_repository,
    generate,
    tripadvisor_config,
    tripadvisor_derive_config,
    yelp_config,
    yelp_derive_config,
)


def pytest_collection_modifyitems(items):
    """Run benchmarks in definition order (figures in paper order)."""


@pytest.fixture(scope="session")
def bench_ta_dataset():
    """TripAdvisor-like ground truth (scaled-down from the paper's 4,475
    users; same structural traits)."""
    return generate(tripadvisor_config(n_users=600), seed=101)


@pytest.fixture(scope="session")
def bench_ta_repository(bench_ta_dataset):
    return build_repository(bench_ta_dataset, tripadvisor_derive_config())


@pytest.fixture(scope="session")
def bench_yelp_dataset():
    """Yelp-like ground truth (scaled-down from the paper's 60K users)."""
    return generate(yelp_config(n_users=1500), seed=102)


@pytest.fixture(scope="session")
def bench_yelp_repository(bench_yelp_dataset):
    return build_repository(bench_yelp_dataset, yelp_derive_config())


@pytest.fixture(scope="session")
def bench_ta_instance(bench_ta_repository):
    groups = build_simple_groups(
        bench_ta_repository, GroupingConfig(min_support=3)
    )
    return build_instance(bench_ta_repository, 8, groups=groups)


@pytest.fixture(scope="session")
def bench_yelp_instance(bench_yelp_repository):
    groups = build_simple_groups(
        bench_yelp_repository, GroupingConfig(min_support=3)
    )
    return build_instance(bench_yelp_repository, 8, groups=groups)
