"""§8.4 bench — greedy versus exhaustive optimal.

The paper restricts to |U| = 40, B = 5 (443 s naive on their machine) and
reports a .998 greedy/optimal ratio, far above the (1 − 1/e) bound.

Asserted: ratio ≥ 0.97 on average over seeds, and always ≥ the bound;
also times the optimal search itself (branch-and-bound keeps it fast).
"""

import numpy as np

from repro.experiments import GREEDY_BOUND, measure_ratio


def test_optimal_ratio_5_of_40(benchmark):
    results = benchmark.pedantic(
        lambda: [
            measure_ratio(n_users=40, budget=5, seed=seed)
            for seed in range(5)
        ],
        rounds=1,
        iterations=1,
    )
    ratios = [r.ratio for r in results]
    mean = float(np.mean(ratios))
    print(f"\nratios: {[round(r, 4) for r in ratios]}  mean={mean:.4f}")

    assert all(r >= GREEDY_BOUND for r in ratios)
    assert mean >= 0.97  # paper: .998

    benchmark.extra_info["ratios"] = [round(r, 4) for r in ratios]
    benchmark.extra_info["mean_ratio"] = round(mean, 4)
