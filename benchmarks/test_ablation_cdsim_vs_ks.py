"""Ablation bench — CD-sim vs Kolmogorov–Smirnov similarity (§8.2).

The paper rejects symmetric goodness-of-fit statistics because coverage
forces small groups to be over-represented.  The decisive property is a
*ranking disagreement*: given

* subset **A** — proportional to the population but missing the smallest
  bucket entirely (abandons the small group), and
* subset **B** — one representative per bucket (the coverage-oriented
  choice, necessarily over-representing small buckets),

a coverage-appropriate metric must prefer B, yet KS often prefers A
because B's over-representation inflates its CDF gap.  This bench builds
the A/B pair from every real property distribution of the bench
TripAdvisor instance and counts each metric's preferences.

Asserted shape: CD-sim prefers the coverage subset B on ≥ 90% of
properties; KS prefers the group-abandoning subset A strictly more often
than CD-sim does — the Def. 8.1 motivation, measured.
"""

from repro.metrics.cdsim import cd_sim, ks_similarity, normalize


def _property_distributions(instance) -> list[list[float]]:
    """Population bucket distributions of every multi-bucket property."""
    distributions = []
    seen: set[str] = set()
    for group in instance.groups:
        label = group.key.property_label
        if label in seen:
            continue
        seen.add(label)
        buckets = sorted(
            instance.groups.buckets_of_property(label),
            key=lambda g: (g.bucket.lo if g.bucket else 0.0, g.label),
        )
        if len(buckets) < 2:
            continue
        distributions.append(normalize([float(g.size) for g in buckets]))
    return distributions


def _compare(instance):
    cd_prefers_b = ks_prefers_b = total = 0
    for population in _property_distributions(instance):
        k = len(population)
        smallest = min(range(k), key=lambda i: population[i])
        # A: proportional, but the smallest bucket is abandoned.
        subset_a = [0.0 if i == smallest else population[i] for i in range(k)]
        subset_a = normalize(subset_a)
        # B: the coverage-oriented pick — one representative per bucket.
        subset_b = [1.0 / k] * k
        total += 1
        if cd_sim(subset_b, population) > cd_sim(subset_a, population):
            cd_prefers_b += 1
        if ks_similarity(subset_b, population) > ks_similarity(
            subset_a, population
        ):
            ks_prefers_b += 1
    return {
        "properties": total,
        "cd_sim_prefers_coverage": cd_prefers_b,
        "ks_prefers_coverage": ks_prefers_b,
    }


def test_ablation_cdsim_vs_ks(benchmark, bench_ta_instance):
    stats = benchmark.pedantic(
        _compare, args=(bench_ta_instance,), rounds=1, iterations=1
    )
    print()
    for key, value in stats.items():
        print(f"  {key}: {value}")

    total = stats["properties"]
    assert total >= 20
    # CD-sim sides with coverage nearly always.
    assert stats["cd_sim_prefers_coverage"] >= 0.9 * total
    # KS sides with abandoning the small group on strictly more
    # properties — the §8.2 inadequacy, quantified.
    assert stats["ks_prefers_coverage"] < stats["cd_sim_prefers_coverage"]

    benchmark.extra_info.update(stats)
