"""Fig. 3b bench — TripAdvisor opinion diversity.

Simulated opinion procurement over held-out destinations: select 8
reviewers per destination on profiles excluding it, then measure the
diversity of their ground-truth reviews (topic+sentiment coverage, rating
distribution similarity, rating variance; TripAdvisor has no useful
votes).

Paper shape asserted: Podium is at or near the lead on topic+sentiment
coverage (the representativeness metric it targets), and no baseline
dominates it across the board.
"""

import pytest

from repro.core import GroupingConfig
from repro.datasets import tripadvisor_derive_config
from repro.experiments import OPINION_METRICS, ComparisonTable, default_selectors
from repro.procurement import ProcurementConfig, run_procurement


@pytest.fixture(scope="module")
def config():
    return ProcurementConfig(
        budget=8,
        derive=tripadvisor_derive_config(),
        grouping=GroupingConfig(min_support=2),
        min_reviews_per_destination=25,
        max_destinations=25,
    )


def _run(dataset, config):
    reports = run_procurement(dataset, default_selectors(), config, seed=13)
    table = ComparisonTable(
        "Fig. 3b — TripAdvisor opinion diversity", OPINION_METRICS
    )
    for name, report in reports.items():
        table.add_row(name, report.as_dict())
    return table


def test_fig3b_tripadvisor_opinion(benchmark, bench_ta_dataset, config):
    table = benchmark.pedantic(
        _run, args=(bench_ta_dataset, config), rounds=1, iterations=1
    )
    print()
    print(table.to_markdown())
    print(table.normalized().to_markdown())

    rows = table.rows
    best_tsc = max(r["topic_sentiment_coverage"] for r in rows.values())
    # Podium within 5% of the best topic+sentiment coverage (it led in
    # the paper; on synthetic data Distance occasionally edges it).
    assert rows["Podium"]["topic_sentiment_coverage"] >= 0.95 * best_tsc
    # No baseline dominates Podium on every metric simultaneously.
    for name, row in rows.items():
        if name == "Podium":
            continue
        dominated = all(
            row[m] >= rows["Podium"][m] for m in table.metrics
        )
        assert not dominated, f"{name} dominates Podium"

    for metric in table.metrics:
        benchmark.extra_info[metric] = {
            name: round(row[metric], 4) for name, row in rows.items()
        }
