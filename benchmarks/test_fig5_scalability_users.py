"""Fig. 5 bench — selection runtime versus population size |U|.

Profiles carry ≤200 properties as in the paper's runs.

Paper shape asserted: Podium and Distance scale linearly (R² of a linear
fit ≥ 0.9) and Podium is substantially faster than Clustering (the paper
reports ~9×; we demand ≥2× to stay robust across machines).
"""

import pytest

from repro.experiments import (
    ScalabilitySetup,
    linear_fit_r2,
    scalability_in_users,
    timing_table,
)


@pytest.fixture(scope="module")
def setup():
    return ScalabilitySetup(
        user_sizes=(500, 1000, 2000, 4000),
        n_properties=200,
        mean_profile_size=40.0,
        repetitions=3,
    )


def test_fig5_scalability_users(benchmark, setup):
    rows = benchmark.pedantic(
        scalability_in_users, args=(setup,), rounds=1, iterations=1
    )
    print()
    print(timing_table(rows))

    for algorithm in ("Podium", "Distance"):
        r2 = linear_fit_r2(rows, algorithm)
        print(f"{algorithm} linear-fit R^2 = {r2:.3f}")
        assert r2 >= 0.9, algorithm

    largest = max(setup.user_sizes)
    by_algo = {
        r.algorithm: r.seconds for r in rows if r.x == largest
    }
    print(f"at |U|={largest}: {by_algo}")
    assert by_algo["Clustering"] >= 2.0 * by_algo["Podium"]

    benchmark.extra_info["timings"] = {
        f"{r.algorithm}@{r.x}": round(r.seconds, 5) for r in rows
    }
