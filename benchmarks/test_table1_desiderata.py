"""Table 1 bench — Podium's desiderata row as executable checks.

Verifies on a live instance that Podium is coverage-based and intrinsic,
diversifies along score ranges, handles high-dimensional profiles, emits
all three explanation types, and responds to customization feedback.
"""

from repro.experiments import check_podium_row, podium_row_markdown


def test_table1_podium_desiderata(benchmark):
    checks = benchmark.pedantic(
        check_podium_row, rounds=1, iterations=1
    )
    print()
    print(podium_row_markdown(checks))
    failing = [c.name for c in checks if not c.holds]
    assert not failing, failing
    assert {c.name for c in checks} == {
        "coverage-based",
        "intrinsic",
        "range",
        "high-dimension",
        "explanations",
        "customizable",
    }
    benchmark.extra_info["row"] = {c.name: c.holds for c in checks}
