"""Fig. 3d bench — Yelp opinion diversity (including Usefulness).

Same procurement simulation as Fig. 3b on the Yelp-like dataset, which
additionally records useful votes per review.

Paper shape asserted: Podium leads topic+sentiment coverage and
usefulness (the representativeness metrics); Random does comparatively
better on the dissimilarity metrics (rating variance) than on the
representativeness ones, and Clustering shows the opposite trend.
"""

import pytest

from repro.core import GroupingConfig
from repro.datasets import yelp_derive_config
from repro.experiments import OPINION_METRICS, ComparisonTable, default_selectors
from repro.procurement import ProcurementConfig, run_procurement


@pytest.fixture(scope="module")
def config():
    return ProcurementConfig(
        budget=8,
        derive=yelp_derive_config(),
        grouping=GroupingConfig(min_support=2),
        min_reviews_per_destination=30,
        max_destinations=30,
    )


def _run(dataset, config):
    reports = run_procurement(dataset, default_selectors(), config, seed=17)
    table = ComparisonTable(
        "Fig. 3d — Yelp opinion diversity", OPINION_METRICS
    )
    for name, report in reports.items():
        table.add_row(name, report.as_dict())
    return table


def test_fig3d_yelp_opinion(benchmark, bench_yelp_dataset, config):
    table = benchmark.pedantic(
        _run, args=(bench_yelp_dataset, config), rounds=1, iterations=1
    )
    print()
    print(table.to_markdown())
    print(table.normalized().to_markdown())

    rows = table.rows
    best_tsc = max(r["topic_sentiment_coverage"] for r in rows.values())
    best_useful = max(r["usefulness"] for r in rows.values())
    assert rows["Podium"]["topic_sentiment_coverage"] >= 0.95 * best_tsc
    assert rows["Podium"]["usefulness"] >= 0.90 * best_useful

    # No baseline dominates Podium on every metric simultaneously (the
    # finer Random-vs-Clustering trend the paper reports is within noise
    # at synthetic laptop scale, so it is printed but not asserted).
    for name, row in rows.items():
        if name == "Podium":
            continue
        dominated = all(row[m] >= rows["Podium"][m] for m in table.metrics)
        assert not dominated, f"{name} dominates Podium"

    for metric in table.metrics:
        benchmark.extra_info[metric] = {
            name: round(row[metric], 4) for name, row in rows.items()
        }
