"""Fig. 3c bench — Yelp intrinsic diversity.

Same comparison as Fig. 3a on the Yelp-like population (more users,
simpler semantics, fewer groups).

Paper shape asserted: Podium leads *every* metric and the normalized gap
to the best baseline is wider than on TripAdvisor — "for this dataset our
results are better than the baselines by a significantly larger gap".
"""

import pytest

from repro.core import GroupingConfig
from repro.experiments import (
    IntrinsicExperimentConfig,
    default_selectors,
    run_intrinsic_comparison,
)


@pytest.fixture(scope="module")
def config():
    return IntrinsicExperimentConfig(
        budget=8,
        grouping=GroupingConfig(min_support=3),
        top_k=200,
        repetitions=3,
    )


def test_fig3c_yelp_intrinsic(
    benchmark, bench_yelp_repository, bench_ta_repository, config
):
    table = benchmark.pedantic(
        run_intrinsic_comparison,
        args=(
            "Fig. 3c — Yelp intrinsic diversity",
            bench_yelp_repository,
            default_selectors(),
            config,
        ),
        kwargs={"seed": 7},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_markdown())
    print(table.normalized().to_markdown())

    for metric in table.metrics:
        assert table.leader(metric) == "Podium", metric

    # Wider gap than TripAdvisor on the directly-optimized metric.
    ta_table = run_intrinsic_comparison(
        "ta", bench_ta_repository, default_selectors(), config, seed=7
    )

    def gap(t):
        podium = t.rows["Podium"]["total_score"]
        runner_up = max(
            row["total_score"]
            for name, row in t.rows.items()
            if name != "Podium"
        )
        return podium / runner_up

    assert gap(table) > gap(ta_table)

    for metric in table.metrics:
        benchmark.extra_info[metric] = {
            name: round(row[metric], 4) for name, row in table.rows.items()
        }
