"""Ablation bench — simple groups only vs explicit complex groups.

§8.4 claims "selection based on simple groups may be sufficient for
coverage purposes": Podium's top-200 *intersected-property* coverage is
high even though the objective never sees intersection groups.  This
bench quantifies the claim by also running selection on an instance
augmented with the largest pairwise intersections
(:func:`repro.core.augment_with_intersections`) and comparing.

Asserted shape: the simple-groups selection already attains at least 85%
of the intersected coverage achieved when the intersections are explicit
targets — the paper's "implicitly accounts for complex groups".
"""

import pytest

from repro.core import (
    GroupingConfig,
    augment_with_intersections,
    build_instance,
    build_simple_groups,
    greedy_select,
)
from repro.datasets.synth import generate_profile_repository
from repro.metrics import intersected_property_coverage

BUDGET = 8


@pytest.fixture(scope="module")
def setup():
    repo = generate_profile_repository(
        n_users=700, n_properties=120, mean_profile_size=25.0, seed=61
    )
    groups = build_simple_groups(repo, GroupingConfig(min_support=3))
    return repo, groups


def _compare(repo, groups):
    simple_instance = build_instance(repo, BUDGET, groups=groups)
    augmented = augment_with_intersections(groups, min_size=5, max_new=200)
    complex_instance = build_instance(repo, BUDGET, groups=augmented)

    simple_pick = greedy_select(repo, simple_instance).selected
    complex_pick = greedy_select(repo, complex_instance).selected

    # Judge both selections with the SAME yardstick: intersected coverage
    # on the simple instance (the metric never sees the explicit groups).
    return {
        "simple_groups": len(groups),
        "augmented_groups": len(augmented),
        "simple_pick_coverage": intersected_property_coverage(
            simple_instance, simple_pick, k=200
        ),
        "complex_pick_coverage": intersected_property_coverage(
            simple_instance, complex_pick, k=200
        ),
    }


def test_ablation_complex_groups(benchmark, setup):
    repo, groups = setup
    stats = benchmark.pedantic(
        _compare, args=(repo, groups), rounds=1, iterations=1
    )
    print()
    for key, value in stats.items():
        print(f"  {key}: {value}")

    assert stats["augmented_groups"] > stats["simple_groups"]
    # The paper's claim: simple-group selection implicitly covers complex
    # groups nearly as well as explicitly targeting them.
    assert (
        stats["simple_pick_coverage"]
        >= 0.85 * stats["complex_pick_coverage"]
    )
    benchmark.extra_info.update(
        {
            k: (round(v, 4) if isinstance(v, float) else v)
            for k, v in stats.items()
        }
    )
