"""Ablation bench — paper-faithful eager Algorithm 1 vs lazy-heap greedy.

Both carry the (1 − 1/e) guarantee; the lazy variant skips the explicit
marginal-contribution updates (Algorithm 1 line 10) by re-evaluating only
heap tops.  Asserted: identical scores, and the bench records the speed
ratio on a large overlapping instance.
"""

import time

import pytest

from repro.core import (
    GroupingConfig,
    build_instance,
    build_simple_groups,
    greedy_select,
)
from repro.datasets.synth import generate_profile_repository

BUDGET = 16


@pytest.fixture(scope="module")
def setup():
    repo = generate_profile_repository(
        n_users=3000, n_properties=200, mean_profile_size=40.0, seed=41
    )
    groups = build_simple_groups(repo, GroupingConfig(min_support=3))
    instance = build_instance(repo, BUDGET, groups=groups)
    return repo, instance


def _compare(repo, instance):
    timings = {}
    scores = {}
    for method in ("eager", "lazy"):
        start = time.perf_counter()
        result = greedy_select(repo, instance, method=method)
        timings[method] = time.perf_counter() - start
        scores[method] = result.score
    return timings, scores


def test_ablation_greedy_implementations(benchmark, setup):
    repo, instance = setup
    timings, scores = benchmark.pedantic(
        _compare, args=(repo, instance), rounds=1, iterations=1
    )
    ratio = timings["eager"] / timings["lazy"]
    print(
        f"\neager {timings['eager']:.3f}s vs lazy {timings['lazy']:.3f}s "
        f"(eager/lazy = {ratio:.2f}x), scores {scores}"
    )
    assert scores["eager"] == scores["lazy"]
    benchmark.extra_info["timings"] = {
        k: round(v, 4) for k, v in timings.items()
    }
    benchmark.extra_info["speedup_eager_over_lazy"] = round(ratio, 3)
