"""End-to-end smoke test of the HTTP serving path.

Boots ``repro serve`` on an ephemeral port as a real subprocess, drives
``/health``, ``/select``, ``/metrics`` and the error paths over HTTP,
and exits non-zero if anything deviates:

* repeated ``/select`` must be served from the artifact cache
  (exactly one instance miss, the rest hits);
* every error body — malformed JSON, unknown configuration,
  ``budget: 0`` — must be JSON, never an HTML traceback.

Run from the repository root::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL — {message}", file=sys.stderr)
    raise SystemExit(1)


def request(
    port: int,
    path: str,
    body: bytes | None = None,
    expect_status: int = 200,
) -> dict:
    url = f"http://127.0.0.1:{port}{path}"
    req = urllib.request.Request(
        url, data=body, method="POST" if body is not None else "GET"
    )
    try:
        with urllib.request.urlopen(req, timeout=15) as response:
            status, payload = response.status, response.read()
            content_type = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as exc:
        status, payload = exc.code, exc.read()
        content_type = exc.headers.get("Content-Type", "")
    if status != expect_status:
        fail(f"{path}: expected status {expect_status}, got {status}")
    if not content_type.startswith("application/json"):
        fail(f"{path}: non-JSON content type {content_type!r}")
    try:
        return json.loads(payload)
    except json.JSONDecodeError:
        fail(f"{path}: body is not JSON: {payload[:200]!r}")


def main() -> None:
    sys.path.insert(0, SRC)
    from repro.datasets import example_repository
    from repro.datasets.io import save_profiles

    with tempfile.TemporaryDirectory() as tmp:
        profiles = os.path.join(tmp, "profiles.json")
        save_profiles(example_repository(), profiles)

        env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--profiles",
                profiles,
                "--port",
                "0",
                "--budget",
                "2",
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = server.stdout.readline()
            match = re.search(r"http://[^:]+:(\d+)", line)
            if not match:
                fail(f"could not parse bound port from {line!r}")
            port = int(match.group(1))

            deadline = time.time() + 30
            while True:
                try:
                    health = request(port, "/health")
                    break
                except (SystemExit, OSError):
                    if time.time() > deadline:
                        fail("server never became healthy")
                    time.sleep(0.2)
            if health["users"] != 5:
                fail(f"unexpected corpus size {health['users']}")

            select_body = json.dumps({"configuration": "cli"}).encode()
            first = request(port, "/select", select_body)
            if not first["selected"]:
                fail("empty selection")
            for _ in range(2):
                repeat = request(port, "/select", select_body)
                if repeat["selected"] != first["selected"]:
                    fail("selection changed across identical requests")

            metrics = request(port, "/metrics")
            cache = metrics["cache"]
            if cache["instance_misses"] != 1:
                fail(
                    f"expected exactly 1 instance build, got "
                    f"{cache['instance_misses']} misses"
                )
            if cache["instance_hits"] != 2:
                fail(f"expected 2 cache hits, got {cache['instance_hits']}")
            if metrics["requests"]["POST /select"]["count"] != 3:
                fail("request counters did not track /select")

            # Error paths must all be JSON bodies.
            bad = request(port, "/select", b"{broken", expect_status=400)
            if "error" not in bad:
                fail("malformed-JSON 400 lacks an error field")
            bad = request(
                port,
                "/select",
                json.dumps({"configuration": "nope"}).encode(),
                expect_status=400,
            )
            if "unknown configuration" not in bad["error"]:
                fail(f"unexpected unknown-config error {bad['error']!r}")
            bad = request(
                port,
                "/select",
                json.dumps({"configuration": "cli", "budget": 0}).encode(),
                expect_status=400,
            )
            if "budget" not in bad["error"]:
                fail(f"budget=0 not rejected properly: {bad['error']!r}")
            request(port, "/definitely-not-a-route", expect_status=404)

            metrics = request(port, "/metrics")
            if metrics["error_count"] < 4:
                fail("error counter did not track the failed requests")
        finally:
            server.send_signal(signal.SIGINT)
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()
    print("serve-smoke: OK")


if __name__ == "__main__":
    main()
