"""End-to-end smoke test of WAL shipping and follower promotion.

Boots a primary and a warm standby as real subprocesses talking over
real HTTP, then checks the replication promises the chaos/replication
layer makes:

* **Convergence** — the follower bootstraps the primary's state, tails
  its WAL (``GET /admin/wal``), and reports ``lag_seq == 0`` in
  ``/metrics`` once caught up; ``/select`` answers must be identical on
  both processes.
* **Read-only standby** — writes against the follower answer 503 while
  it follows.
* **Failover without ack loss** — the primary is killed with
  ``SIGKILL``; ``POST /admin/promote`` turns the follower into a
  writable primary and every delta the dead primary acknowledged must
  be present, with new writes continuing the global sequence numbering.
* **Replicated acks are locally durable** — the promoted follower is
  restarted from its own ``--data-dir`` and still holds the full
  population.

Run from the repository root::

    PYTHONPATH=src python scripts/replication_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

N_SEED_DELTAS = 5
N_STREAM_DELTAS = 5


def fail(message: str) -> None:
    print(f"replication-smoke: FAIL — {message}", file=sys.stderr)
    raise SystemExit(1)


def request(port, path, body=None, expect_status=200, timeout=15):
    url = f"http://127.0.0.1:{port}{path}"
    req = urllib.request.Request(
        url, data=body, method="POST" if body is not None else "GET"
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            status, payload = response.status, response.read()
    except urllib.error.HTTPError as exc:
        status, payload = exc.code, exc.read()
    if status != expect_status:
        fail(f"{path}: expected status {expect_status}, got {status}")
    return json.loads(payload)


def boot(args, env):
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = server.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", line)
    if not match:
        server.kill()
        fail(f"could not parse bound port from {line!r}")
    port = int(match.group(1))
    deadline = time.time() + 30
    while True:
        try:
            request(port, "/health")
            return server, port
        except (SystemExit, OSError):
            if time.time() > deadline:
                server.kill()
                fail("server never became healthy")
            time.sleep(0.2)


def stop(server, sig=signal.SIGINT):
    server.send_signal(sig)
    try:
        server.wait(timeout=15)
    except subprocess.TimeoutExpired:
        server.kill()
        server.wait()


def delta_body(i):
    return json.dumps(
        {"upserts": {f"rep{i:04d}": {"avgRating Mexican": 0.8}}}
    ).encode()


def wait_for_lag_zero(port, want_seq, timeout=30):
    deadline = time.time() + timeout
    while time.time() < deadline:
        replication = request(port, "/metrics").get("replication") or {}
        if (
            replication.get("lag_seq") == 0
            and replication.get("applied_seq") == want_seq
            and replication.get("state") == "streaming"
        ):
            return replication
        time.sleep(0.1)
    fail(
        f"follower never caught up to seq {want_seq} "
        f"(last replication doc: {replication})"
    )


def main() -> None:
    sys.path.insert(0, SRC)
    from repro.datasets import example_repository
    from repro.datasets.io import save_profiles

    with tempfile.TemporaryDirectory() as tmp:
        profiles = os.path.join(tmp, "profiles.json")
        save_profiles(example_repository(), profiles)
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
        primary_dir = os.path.join(tmp, "primary")
        follower_dir = os.path.join(tmp, "follower")

        primary, pport = boot(
            ["--profiles", profiles, "--budget", "2",
             "--data-dir", primary_dir],
            env,
        )
        follower = None
        try:
            for i in range(N_SEED_DELTAS):
                ack = request(pport, "/profiles/delta", delta_body(i))
                if not ack.get("durable"):
                    fail(f"primary did not durably ack delta {i}: {ack}")

            follower, fport = boot(
                ["--follow", f"http://127.0.0.1:{pport}",
                 "--data-dir", follower_dir,
                 "--poll-interval", "0.1"],
                env,
            )
            wait_for_lag_zero(fport, N_SEED_DELTAS)
            print("replication-smoke: bootstrap + catch-up OK")

            for i in range(N_SEED_DELTAS, N_SEED_DELTAS + N_STREAM_DELTAS):
                request(pport, "/profiles/delta", delta_body(i))
            total = N_SEED_DELTAS + N_STREAM_DELTAS
            replication = wait_for_lag_zero(fport, total)
            print(
                f"replication-smoke: streamed "
                f"{replication['applied_records']} records, lag 0 OK"
            )

            select_body = json.dumps({"configuration": "cli"}).encode()
            want = request(pport, "/select", select_body)
            got = request(fport, "/select", select_body)
            if got["selected"] != want["selected"] or (
                got["score"] != want["score"]
            ):
                fail(
                    f"follower selection diverged: {got['selected']} "
                    f"({got['score']}) != {want['selected']} "
                    f"({want['score']})"
                )
            print("replication-smoke: primary/follower /select parity OK")

            rejected = request(
                fport, "/profiles/delta", delta_body(999),
                expect_status=503,
            )
            if "read-only" not in rejected.get("error", ""):
                fail(f"follower 503 without read-only error: {rejected}")
            print("replication-smoke: read-only follower 503 OK")

            # The failover: kill the primary dead, promote the standby.
            primary.send_signal(signal.SIGKILL)
            primary.wait()
            promoted = request(fport, "/admin/promote", b"{}")
            if promoted.get("read_only") is not False or (
                not promoted.get("promoted")
            ):
                fail(f"promotion did not enable writes: {promoted}")
            if promoted.get("wal_seq") != total:
                fail(
                    f"promoted at wal_seq {promoted.get('wal_seq')}, "
                    f"expected {total}"
                )
            health = request(fport, "/health")
            if health["users"] != 5 + total:  # example corpus + deltas
                fail(
                    f"promoted follower lost acks: {health['users']} "
                    f"users, expected {5 + total}"
                )
            ack = request(fport, "/profiles/delta", delta_body(1000))
            if not ack.get("durable") or ack.get("wal_seq") != total + 1:
                fail(
                    f"promoted follower write not durable or "
                    f"mis-numbered: {ack}"
                )
            print(
                f"replication-smoke: promote after SIGKILL OK "
                f"(took over at seq {total}, first own write seq "
                f"{ack['wal_seq']})"
            )
        finally:
            if follower is not None:
                stop(follower)
            if primary.poll() is None:
                stop(primary)

        # Replicated acks must also be durable on the follower's own
        # disk: cold-boot it from its data directory, no primary around.
        reopened, rport = boot(
            ["--budget", "2", "--data-dir", follower_dir], env
        )
        try:
            health = request(rport, "/health")
            expected = 5 + N_SEED_DELTAS + N_STREAM_DELTAS + 1
            if health["users"] != expected:
                fail(
                    f"follower data dir recovered {health['users']} "
                    f"users, expected {expected}"
                )
        finally:
            stop(reopened)
        print("replication-smoke: follower-local durability OK")
    print("replication-smoke: OK")


if __name__ == "__main__":
    main()
