"""End-to-end smoke test of the durable ingestion path.

Boots ``repro serve --data-dir`` as a real subprocess and checks the
two crash-safety promises over actual HTTP and actual process death:

* **Restart-identical selection** — deltas are ingested (some folded
  into a snapshot via ``POST /admin/snapshot``, some left in the WAL),
  the server is stopped, and a second server is booted from the same
  data directory *without* ``--profiles``.  ``/select`` must return the
  exact same users and score; any divergence is a recovery bug.
* **Acked deltas survive SIGKILL** — a writer thread streams deltas
  while the server is killed with ``SIGKILL`` (no shutdown hook, no
  snapshot).  Every delta that was acknowledged with ``durable: true``
  must be present after a cold reopen; the repository may additionally
  contain deltas that hit the WAL but whose ack was lost in flight —
  durability-before-ack allows that, never the reverse.

Run from the repository root::

    PYTHONPATH=src python scripts/ingest_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def fail(message: str) -> None:
    print(f"ingest-smoke: FAIL — {message}", file=sys.stderr)
    raise SystemExit(1)


def request(port, path, body=None, expect_status=200, timeout=15):
    url = f"http://127.0.0.1:{port}{path}"
    req = urllib.request.Request(
        url, data=body, method="POST" if body is not None else "GET"
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            status, payload = response.status, response.read()
    except urllib.error.HTTPError as exc:
        status, payload = exc.code, exc.read()
    if status != expect_status:
        fail(f"{path}: expected status {expect_status}, got {status}")
    return json.loads(payload)


def boot(args, env):
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = server.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", line)
    if not match:
        server.kill()
        fail(f"could not parse bound port from {line!r}")
    port = int(match.group(1))
    deadline = time.time() + 30
    while True:
        try:
            request(port, "/health")
            return server, port
        except (SystemExit, OSError):
            if time.time() > deadline:
                server.kill()
                fail("server never became healthy")
            time.sleep(0.2)


def delta_body(i):
    return json.dumps(
        {"upserts": {f"smoke{i:04d}": {"avgRating Mexican": 0.9}}}
    ).encode()


def stop(server, sig=signal.SIGINT):
    server.send_signal(sig)
    try:
        server.wait(timeout=15)
    except subprocess.TimeoutExpired:
        server.kill()
        server.wait()


def check_restart_identity(tmp, env, profiles):
    data_dir = os.path.join(tmp, "data-restart")
    args = ["--budget", "2", "--data-dir", data_dir]
    server, port = boot(["--profiles", profiles, *args], env)
    try:
        for i in range(3):
            ack = request(port, "/profiles/delta", delta_body(i))
            if not ack.get("durable") or ack.get("wal_seq") != i + 1:
                fail(f"delta {i} not durably acknowledged: {ack}")
        # Warm the artifact cache, then fold the first deltas into a
        # snapshot; the remaining ones must come back via WAL replay.
        select_body = json.dumps({"configuration": "cli"}).encode()
        request(port, "/select", select_body)
        request(port, "/admin/snapshot", b"{}")
        for i in range(3, 6):
            request(port, "/profiles/delta", delta_body(i))
        want = request(port, "/select", select_body)
        metrics = request(port, "/metrics")
        if metrics["storage"]["wal_seq"] != 6:
            fail(f"unexpected wal_seq {metrics['storage']['wal_seq']}")
    finally:
        stop(server)

    # Second boot: no --profiles, state comes from the data directory.
    server, port = boot(args, env)
    try:
        got = request(port, "/select", select_body)
        if got["selected"] != want["selected"]:
            fail(
                f"post-restart selection diverged: "
                f"{got['selected']} != {want['selected']}"
            )
        if got["score"] != want["score"]:
            fail(f"post-restart score {got['score']} != {want['score']}")
        health = request(port, "/health")
        if health["users"] != 11:  # 5 example users + 6 upserts
            fail(f"post-restart corpus size {health['users']}")
    finally:
        stop(server)
    print("ingest-smoke: restart-identical selection OK")


def check_sigkill_durability(tmp, env, profiles):
    data_dir = os.path.join(tmp, "data-kill")
    args = ["--budget", "2", "--data-dir", data_dir]
    server, port = boot(["--profiles", profiles, *args], env)

    acked = []

    def spam():
        for i in range(10_000):
            try:
                ack = request(port, "/profiles/delta", delta_body(i))
            except (SystemExit, OSError):
                return  # in-flight request lost to the kill: allowed
            if ack.get("durable"):
                acked.append(ack["wal_seq"])

    writer = threading.Thread(target=spam, daemon=True)
    writer.start()
    while not acked:  # make sure the kill lands mid-stream, not before
        time.sleep(0.01)
    time.sleep(0.3)
    server.send_signal(signal.SIGKILL)
    server.wait()
    writer.join(timeout=30)
    if not acked:
        fail("no delta was acknowledged before the kill")

    server, port = boot(args, env)
    try:
        metrics = request(port, "/metrics")
        storage = metrics["storage"]
        if storage["wal_seq"] < max(acked):
            fail(
                f"acked delta lost: recovered wal_seq {storage['wal_seq']} "
                f"< acked {max(acked)}"
            )
        health = request(port, "/health")
        if health["users"] < 5 + len(acked):
            fail(
                f"recovered corpus has {health['users']} users, "
                f"expected >= {5 + len(acked)}"
            )
    finally:
        stop(server)
    print(
        f"ingest-smoke: SIGKILL durability OK "
        f"({len(acked)} acked deltas survived, "
        f"last seq {max(acked)}, recovered wal_seq {storage['wal_seq']})"
    )


def main() -> None:
    sys.path.insert(0, SRC)
    from repro.datasets import example_repository
    from repro.datasets.io import save_profiles

    with tempfile.TemporaryDirectory() as tmp:
        profiles = os.path.join(tmp, "profiles.json")
        save_profiles(example_repository(), profiles)
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
        check_restart_identity(tmp, env, profiles)
        check_sigkill_durability(tmp, env, profiles)
    print("ingest-smoke: OK")


if __name__ == "__main__":
    main()
