"""Quickstart: select a diverse user subset from the paper's Table 2.

Runs the running example end to end: build the five-user repository,
bucket properties exactly as Example 3.8 does, select two users with LBS
weights + Single coverage, and print the explanations.

    python examples/quickstart.py
"""

from repro import build_instance, build_simple_groups, explain_selection, greedy_select
from repro.datasets import example_grouping_config, example_repository
from repro.service import render_text


def main() -> None:
    repository = example_repository()
    print(f"Population: {', '.join(repository.user_ids)}")

    # Offline grouping module: bucket every property's scores.
    groups = build_simple_groups(repository, example_grouping_config())
    print(f"Groups computed: {len(groups)} (simple property-bucket groups)")

    # Diversification instance: LBS weights, Single coverage (defaults).
    instance = build_instance(repository, budget=2, groups=groups)

    # Greedy Algorithm 1.
    result = greedy_select(repository, instance)
    print(f"Selected: {result.selected} with total score {result.score}")
    assert set(result.selected) == {"Alice", "Eve"}, "paper's Example 3.8"

    # Explanations (paper §5) rendered like the prototype's UI page.
    explanation = explain_selection(
        result, distribution_properties=("avgRating Mexican",)
    )
    print(render_text(result, explanation))


if __name__ == "__main__":
    main()
