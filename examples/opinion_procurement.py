"""Simulated opinion procurement on held-out destinations (paper §8.4).

A traveler wants diverse "tips" on destinations: select 8 reviewers per
destination from profiles that *exclude* the destination's own data, then
check how diverse their actual (ground-truth) reviews are — comparing
Podium with the Random, Clustering and Distance baselines on the four
opinion metrics.

    python examples/opinion_procurement.py
"""

from repro.baselines import (
    ClusteringSelector,
    DistanceSelector,
    PodiumSelector,
    RandomSelector,
)
from repro.core import GroupingConfig
from repro.datasets import generate, tripadvisor_config, tripadvisor_derive_config
from repro.procurement import ProcurementConfig, run_procurement


def main() -> None:
    dataset = generate(tripadvisor_config(n_users=300), seed=9)
    print(f"Ground truth: {dataset}")

    config = ProcurementConfig(
        budget=8,
        derive=tripadvisor_derive_config(),
        grouping=GroupingConfig(min_support=2),
        min_reviews_per_destination=15,
        max_destinations=12,
    )
    selectors = [
        PodiumSelector(),
        RandomSelector(),
        ClusteringSelector(),
        DistanceSelector(),
    ]
    reports = run_procurement(dataset, selectors, config, seed=1)

    header = (
        f"{'algorithm':12s} {'topic+sent':>11s} {'rating-sim':>11s} "
        f"{'variance':>9s}"
    )
    print("\nOpinion diversity, averaged over "
          f"{next(iter(reports.values())).destinations} destinations:")
    print(header)
    print("-" * len(header))
    for name, report in reports.items():
        print(
            f"{name:12s} {report.topic_sentiment_coverage:11.3f} "
            f"{report.rating_distribution_similarity:11.3f} "
            f"{report.rating_variance:9.3f}"
        )

    podium = reports["Podium"]
    best_tsc = max(r.topic_sentiment_coverage for r in reports.values())
    print(
        f"\nPodium topic+sentiment coverage: {podium.topic_sentiment_coverage:.3f} "
        f"(best observed: {best_tsc:.3f})"
    )


if __name__ == "__main__":
    main()
