"""Rotating opinion panels via noisy group weights (paper §10 extension).

A website manager procures usability feedback every week and should not
poll the same eight users forever.  The §10 future-work idea — adding
noise to group weights — yields a different near-optimal panel per week
while keeping coverage high.  This example measures the rotation pool
and the score retained relative to the deterministic selection.

    python examples/rotating_panels.py
"""

from repro import (
    GroupingConfig,
    build_instance,
    build_simple_groups,
    greedy_select,
    subset_score,
)
from repro.core import randomized_select, selection_pool
from repro.datasets import build_repository, generate, yelp_config, yelp_derive_config

BUDGET = 8
WEEKS = 10
SIGMA = 0.4


def main() -> None:
    dataset = generate(yelp_config(n_users=500), seed=33)
    repository = build_repository(dataset, yelp_derive_config())
    groups = build_simple_groups(repository, GroupingConfig(min_support=3))
    instance = build_instance(repository, BUDGET, groups=groups)

    baseline = greedy_select(repository, instance)
    print(f"Deterministic panel ({BUDGET} users): {baseline.selected}")
    print(f"Deterministic score: {baseline.score}")

    print(f"\n{WEEKS} weekly panels with weight noise sigma={SIGMA}:")
    for week in range(WEEKS):
        result = randomized_select(
            repository, instance, sigma=SIGMA, seed=week
        )
        retained = subset_score(instance, result.selected) / baseline.score
        print(
            f"  week {week}: {', '.join(result.selected[:4])}, ... "
            f"(retains {retained:.1%} of the deterministic score)"
        )

    pool = selection_pool(
        repository, instance, sigma=SIGMA, seeds=range(WEEKS)
    )
    print(
        f"\nRotation pool: {len(pool)} distinct users served across "
        f"{WEEKS} weeks ({WEEKS * BUDGET} seats)"
    )
    regulars = [user for user, count in pool.items() if count == WEEKS]
    print(f"Ever-present members: {regulars or 'none'}")
    assert len(pool) > BUDGET, "noise should rotate in fresh users"


if __name__ == "__main__":
    main()
