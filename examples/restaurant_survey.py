"""Restaurant market survey with customization (paper §6 scenario).

A new restaurant owner wants a preliminary customer survey: panelists
must be familiar with Mexican food, and residence locations should be as
diverse as possible.  This is Example 6.2's feedback, scaled up to a
synthetic TripAdvisor-like population:

* must-have: every bucket of ``avgRating Mexican`` (any rating counts —
  the user just has to have rated Mexican food);
* priority coverage: all ``livesIn <city>`` groups;
* standard coverage: everything else.

    python examples/restaurant_survey.py
"""

from repro import (
    CustomizationFeedback,
    GroupingConfig,
    build_instance,
    build_simple_groups,
    custom_select,
    greedy_select,
)
from repro.datasets import (
    build_repository,
    catalog,
    generate,
    tripadvisor_config,
    tripadvisor_derive_config,
)

BUDGET = 8


def main() -> None:
    dataset = generate(tripadvisor_config(n_users=400), seed=42)
    repository = build_repository(dataset, tripadvisor_derive_config())
    print(f"Repository: {repository}")

    groups = build_simple_groups(repository, GroupingConfig(min_support=3))
    instance = build_instance(repository, BUDGET, groups=groups)
    print(f"Instance: {len(groups)} groups, budget {BUDGET}")

    # Baseline: uncustomized selection.
    base = greedy_select(repository, instance)
    print(f"\nWithout customization: {base.selected}")

    # Example 6.2's feedback, over the real group set.  The paper's
    # running example uses Mexican cuisine; on synthetic data we take the
    # most-rated cuisine so the scenario is always non-trivial.
    leaf_labels = {
        f"avgRating {cuisine}" for cuisine in catalog.leaf_cuisines()
    }
    cuisine_property = max(
        (
            label
            for label in repository.property_labels
            if label in leaf_labels and groups.buckets_of_property(label)
        ),
        key=repository.support,
    )
    print(f"Survey cuisine property: {cuisine_property}")
    mexican_buckets = frozenset(
        g.key for g in groups.buckets_of_property(cuisine_property)
    )
    lives_in = frozenset(
        g.key
        for g in groups
        if g.key.property_label.startswith("livesIn ")
        and g.key.bucket_label == "true"
    )
    feedback = CustomizationFeedback(
        must_have=mexican_buckets, priority=lives_in
    )
    custom = custom_select(repository, instance, feedback)

    print(
        f"\nWith customization (must have rated the cuisine, diversify on "
        f"residence):\n  selected: {custom.selected}"
    )
    print(
        f"  eligible users after must-have filter: "
        f"{custom.refined_pool_size} of {len(repository)}"
    )
    print(
        f"  priority (livesIn) score: {custom.priority_score}, "
        f"standard score: {custom.standard_score}"
    )

    cities = sorted(
        {
            key.property_label.removeprefix("livesIn ")
            for user in custom.selected
            for key in groups.groups_of(user)
            if key in lives_in
        }
    )
    print(f"  cities represented: {', '.join(cities)}")

    rated_mexican = [
        user
        for user in custom.selected
        if groups.groups_of(user) & mexican_buckets
    ]
    assert len(rated_mexican) == len(custom.selected), (
        "every panelist must have rated the survey cuisine"
    )
    print("  all selected panelists have rated the survey cuisine [ok]")


if __name__ == "__main__":
    main()
