"""Citizens' assembly by sortition: constrained selection end to end.

Democratic lotteries (OpenDLP-style sortition) pick an assembly that
mirrors the population on hard demographic quotas while still being
*diverse* in what its members care about.  That is exactly the
constrained-selection subsystem: demographic floors and ceilings on top
of the coverage-greedy objective.

This example builds a synthetic city of 400 citizens with age band,
gender and region attributes plus civic-interest signals, starts the
Podium HTTP service in-process, and procures a 12-seat assembly with

* a floor of 2 per age band (no band unheard),
* a floor of 5 per gender (near gender balance),
* a ceiling of 2 on the over-represented centre region,

then verifies every quota from the response's constraint report.

    python examples/sortition.py
"""

import json
import random
import threading
import urllib.request
from wsgiref.simple_server import make_server

from repro.service import (
    DiversificationConfiguration,
    PodiumService,
    make_wsgi_app,
)

PORT = 8809
SEATS = 12

AGE_BANDS = ("18-29", "30-44", "45-64", "65+")
GENDERS = ("female", "male")
REGIONS = ("north", "south", "east", "west", "centre")
INTERESTS = (
    "transit", "housing", "greenSpace", "schools", "nightlife",
    "floodDefence", "localBusiness", "cycling",
)

#: The assembly's quota sheet: (property, bucket, bound) triples in the
#: service's JSON constraint format.
FLOORS = [[f"ageBand {band}", "true", 2] for band in AGE_BANDS] + [
    [f"gender {g}", "true", 5] for g in GENDERS
]
CEILINGS = [["region centre", "true", 2]]


def build_population(n_citizens: int = 400, seed: int = 7) -> dict:
    """Synthesize the city roster as a Podium profile document."""
    rng = random.Random(seed)
    users = []
    for i in range(n_citizens):
        properties = {
            f"ageBand {rng.choice(AGE_BANDS)}": 1.0,
            f"gender {rng.choice(GENDERS)}": 1.0,
            # The centre is deliberately over-represented — the quota
            # sheet's ceiling has to push back against the data.
            f"region {rng.choice(REGIONS + ('centre', 'centre'))}": 1.0,
        }
        for interest in rng.sample(INTERESTS, k=rng.randint(2, 5)):
            properties[f"caresAbout {interest}"] = round(
                rng.uniform(0.1, 1.0), 2
            )
        users.append(
            {"id": f"citizen-{i:03d}", "properties": properties}
        )
    return {"format": "podium-profiles-v1", "users": users}


def _request(method: str, path: str, body: dict | None = None) -> dict:
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{PORT}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def main() -> None:
    service = PodiumService()
    server = make_server("127.0.0.1", PORT, make_wsgi_app(service))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"Service up on :{PORT}")

    try:
        # 1. Load the roster over HTTP.
        loaded = _request("POST", "/profiles", build_population())
        print(f"Loaded roster: {loaded['loaded_users']} citizens")

        # 2. Register the assembly configuration.
        config = DiversificationConfiguration(
            name="assembly",
            description="12-seat citizens' assembly",
            budget=SEATS,
            coverage_scheme="Prop",
        ).to_dict()
        _request("POST", "/configurations", config)

        # 3. The unconstrained panel — pure coverage, no quotas.
        plain = _request(
            "POST",
            "/select",
            {"configuration": "assembly", "explain": False},
        )
        print(
            f"Unconstrained panel (score {plain['score']:.0f}): "
            f"{', '.join(plain['selected'])}"
        )

        # 4. The sortition draw under the quota sheet.
        drawn = _request(
            "POST",
            "/select",
            {
                "configuration": "assembly",
                "explain": False,
                "constraints": {"floors": FLOORS, "ceilings": CEILINGS},
            },
        )
        report = drawn["constraints"]
        print(
            f"Assembly under quotas (score {drawn['score']:.0f}, "
            f"{drawn['score'] / plain['score']:.0%} of unconstrained): "
            f"{', '.join(drawn['selected'])}"
        )
        for bound in report["floors"]:
            print(
                f"  floor  {bound['property']:<16} >= {bound['bound']}: "
                f"achieved {bound['achieved']}"
            )
        for bound in report["ceilings"]:
            print(
                f"  ceiling {bound['property']:<15} <= {bound['bound']}: "
                f"achieved {bound['achieved']}"
            )
        unsatisfied = [
            bound
            for bound in report["floors"] + report["ceilings"]
            if not bound["satisfied"]
        ]
        assert report["satisfied"] and not unsatisfied, unsatisfied
        assert len(drawn["selected"]) == SEATS
        print("Every quota satisfied.")
    finally:
        server.shutdown()
        thread.join(timeout=5)
        print("Service stopped.")


if __name__ == "__main__":
    main()
