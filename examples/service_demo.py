"""Drive the Podium prototype service end to end (paper §7, Fig. 1).

Starts the WSGI service in-process, loads a synthetic Yelp-like profile
document over HTTP, registers a "Summer Pavilion"-style configuration
restricted to cuisine properties, and runs selection requests with and
without customization feedback — the same flow the AngularJS UI drives.

    python examples/service_demo.py
"""

import json
import threading
import urllib.request
from wsgiref.simple_server import make_server

from repro.datasets import (
    build_repository,
    generate,
    profiles_to_dict,
    yelp_config,
    yelp_derive_config,
)
from repro.service import (
    DiversificationConfiguration,
    PodiumService,
    make_wsgi_app,
)

PORT = 8808


def _request(method: str, path: str, body: dict | None = None) -> dict:
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{PORT}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def main() -> None:
    service = PodiumService()
    server = make_server("127.0.0.1", PORT, make_wsgi_app(service))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"Service up on :{PORT}")

    try:
        # 1. Load profiles over HTTP (the JSON input format of §7).
        dataset = generate(yelp_config(n_users=250), seed=21)
        repository = build_repository(dataset, yelp_derive_config())
        loaded = _request("POST", "/profiles", profiles_to_dict(repository))
        print(f"Loaded profiles: {loaded}")

        # 2. Register a configuration restricted to cuisine ratings.
        config = DiversificationConfiguration(
            name="summer-pavilion",
            description="Cuisine-rating properties only",
            property_prefixes=("avgRating",),
            budget=6,
        ).to_dict()
        print(f"Registered: {_request('POST', '/configurations', config)['name']}")

        # 3. Plain selection with explanations.
        selection = _request(
            "POST",
            "/select",
            {"configuration": "summer-pavilion"},
        )
        middle = selection["explanation"]["middle_pane"]
        print(
            f"Selected {selection['selected']} — top-weight group coverage "
            f"{middle['top_coverage_percent']}%"
        )

        # 4. Customized re-selection: exclude the heaviest group.
        groups = _request("GET", "/groups?configuration=summer-pavilion")
        heaviest = groups[0]
        feedback = {"must_not": [[heaviest["property"], heaviest["bucket"]]]}
        refined = _request(
            "POST",
            "/select",
            {
                "configuration": "summer-pavilion",
                "feedback": feedback,
                "explain": False,
            },
        )
        print(
            f"After excluding '{heaviest['label']}': {refined['selected']} "
            f"(pool shrank to {refined['refined_pool_size']})"
        )
    finally:
        server.shutdown()
        thread.join(timeout=5)
        print("Service stopped.")


if __name__ == "__main__":
    main()
