"""Taxonomies, inference rules and rule mining for profile enrichment."""

from .columnar import enrich_columns
from .mining import ImplicationRule, MinedImplication, mine_implications, mine_rule
from .rules import (
    FunctionalPropertyRule,
    GeneralizationRule,
    InferenceRule,
    RuleEngine,
    category_property,
    parse_category,
)
from .tree import Taxonomy

__all__ = [
    "enrich_columns",
    "ImplicationRule",
    "MinedImplication",
    "mine_implications",
    "mine_rule",
    "FunctionalPropertyRule",
    "GeneralizationRule",
    "InferenceRule",
    "RuleEngine",
    "category_property",
    "parse_category",
    "Taxonomy",
]
