"""Lightweight association-rule mining over Boolean properties.

Paper §3.1 notes inference rules "can be pre-specified as in RDF
languages or derived via rule mining techniques [AMIE+]".  This module
implements the derived path: mine high-confidence implications
``p ⇒ q`` between Boolean properties and convert them into inference
rules the :class:`~repro.taxonomy.rules.RuleEngine` can apply.

The miner is a deliberately small AMIE-style horn-rule search restricted
to unary atoms (single-property bodies and heads), which is the shape
profile enrichment needs — e.g. ``livesIn Brooklyn ⇒ livesIn NYC-area``.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..core.buckets import is_boolean
from ..core.profiles import UserProfile, UserRepository
from .rules import InferenceRule

import numpy as np


@dataclass(frozen=True)
class MinedImplication:
    """A mined rule ``antecedent ⇒ consequent`` with its quality stats.

    ``support`` counts users satisfying both sides; ``confidence`` is
    ``support / |antecedent|`` (PCA-style confidence is unnecessary here
    because both atoms are observed Booleans).
    """

    antecedent: str
    consequent: str
    support: int
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.antecedent} => {self.consequent} "
            f"(support={self.support}, confidence={self.confidence:.2f})"
        )


class ImplicationRule(InferenceRule):
    """Inference rule wrapping a set of mined implications."""

    def __init__(self, implications: list[MinedImplication]) -> None:
        self._by_antecedent: dict[str, list[MinedImplication]] = {}
        for imp in implications:
            self._by_antecedent.setdefault(imp.antecedent, []).append(imp)

    @property
    def implications(self) -> list[MinedImplication]:
        return [i for group in self._by_antecedent.values() for i in group]

    def infer(
        self, profile: UserProfile, support: Mapping[str, int]
    ) -> dict[str, float]:
        inferred: dict[str, float] = {}
        for label, score in profile.scores.items():
            if score != 1.0:
                continue
            for imp in self._by_antecedent.get(label, ()):
                if imp.consequent not in profile:
                    inferred[imp.consequent] = 1.0
        return inferred


def _boolean_properties(repository: UserRepository) -> list[str]:
    booleans = []
    for label in repository.property_labels:
        _, scores = repository.scores_for(label)
        if is_boolean(np.asarray(scores)):
            booleans.append(label)
    return booleans


def mine_implications(
    repository: UserRepository,
    min_support: int = 3,
    min_confidence: float = 0.95,
    max_rules: int | None = None,
) -> list[MinedImplication]:
    """Mine ``p ⇒ q`` implications between Boolean properties.

    Only users *asserting* a property (score 1) count toward either side;
    open-world absences are neither positive nor negative evidence.
    Results are sorted by (confidence, support) descending and truncated
    to ``max_rules`` when given.
    """
    booleans = _boolean_properties(repository)
    positives: dict[str, frozenset[str]] = {}
    for label in booleans:
        holders = frozenset(
            user_id
            for user_id, score in repository.users_with(label).items()
            if score == 1.0
        )
        if len(holders) >= min_support:
            positives[label] = holders

    mined: list[MinedImplication] = []
    labels = sorted(positives)
    for p in labels:
        holders_p = positives[p]
        for q in labels:
            if p == q:
                continue
            both = len(holders_p & positives[q])
            if both < min_support:
                continue
            confidence = both / len(holders_p)
            if confidence >= min_confidence:
                mined.append(MinedImplication(p, q, both, confidence))

    mined.sort(key=lambda m: (-m.confidence, -m.support, m.antecedent, m.consequent))
    return mined[:max_rules] if max_rules is not None else mined


def mine_rule(
    repository: UserRepository,
    min_support: int = 3,
    min_confidence: float = 0.95,
    max_rules: int | None = None,
) -> ImplicationRule:
    """Convenience: mine implications and wrap them as an inference rule."""
    return ImplicationRule(
        mine_implications(repository, min_support, min_confidence, max_rules)
    )
