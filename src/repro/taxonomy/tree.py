"""Category taxonomies used to enrich user profiles (paper §3.1).

A taxonomy is a DAG of categories — e.g. ``Mexican → Latin → AnyCuisine``
— backed by :mod:`networkx`.  Generalization rules walk it upward to
derive properties like ``avgRating Latin`` from ``avgRating Mexican``
(Example 3.2).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import networkx as nx

from ..core.errors import TaxonomyError


class Taxonomy:
    """A rooted-DAG taxonomy of category names.

    Edges point from child (more specific) to parent (more general); a
    category may have several parents (multi-inheritance is common in
    cuisine taxonomies, e.g. Tex-Mex under both Mexican and American).
    """

    def __init__(self, edges: Iterable[tuple[str, str]] = ()) -> None:
        self._graph = nx.DiGraph()
        for child, parent in edges:
            self.add_edge(child, parent)

    def add_category(self, name: str) -> None:
        """Register a category with no parents yet."""
        self._graph.add_node(str(name))

    def add_edge(self, child: str, parent: str) -> None:
        """Declare ``child`` to be a kind of ``parent``."""
        child, parent = str(child), str(parent)
        if child == parent:
            raise TaxonomyError(f"self-loop on category {child!r}")
        self._graph.add_edge(child, parent)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(child, parent)
            raise TaxonomyError(
                f"edge {child!r} -> {parent!r} would create a cycle"
            )

    def __contains__(self, name: object) -> bool:
        return name in self._graph

    def __iter__(self) -> Iterator[str]:
        return iter(self._graph.nodes)

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def parents(self, name: str) -> set[str]:
        """Direct parents of ``name``."""
        self._require(name)
        return set(self._graph.successors(name))

    def children(self, name: str) -> set[str]:
        """Direct children of ``name``."""
        self._require(name)
        return set(self._graph.predecessors(name))

    def ancestors(self, name: str) -> set[str]:
        """Every strictly more general category reachable from ``name``."""
        self._require(name)
        return set(nx.descendants(self._graph, name))

    def descendants(self, name: str) -> set[str]:
        """Every strictly more specific category below ``name``."""
        self._require(name)
        return set(nx.ancestors(self._graph, name))

    def roots(self) -> set[str]:
        """Categories with no parent (the most general ones)."""
        return {n for n in self._graph.nodes if self._graph.out_degree(n) == 0}

    def leaves(self) -> set[str]:
        """Categories with no child (the most specific ones)."""
        return {n for n in self._graph.nodes if self._graph.in_degree(n) == 0}

    def depth(self, name: str) -> int:
        """Longest child→parent path from ``name`` to a root."""
        self._require(name)
        best = 0
        for root in self.roots():
            if root == name:
                continue
            if nx.has_path(self._graph, name, root):
                best = max(
                    best,
                    max(
                        len(p) - 1
                        for p in nx.all_simple_paths(self._graph, name, root)
                    ),
                )
        return best

    def topological_levels(self) -> list[list[str]]:
        """Categories grouped leaves-first; each level only depends on
        earlier ones, which is the order generalization rules fire in."""
        return [sorted(level) for level in nx.topological_generations(self._graph)]

    def _require(self, name: str) -> None:
        if name not in self._graph:
            raise TaxonomyError(f"unknown category {name!r}")

    def __repr__(self) -> str:
        return (
            f"Taxonomy(categories={len(self)}, "
            f"edges={self._graph.number_of_edges()})"
        )
