"""Columnar profile enrichment — vectorized twin of :class:`RuleEngine`.

:meth:`RuleEngine.enrich` walks one Python dict per profile per rule; at
the columnar tier that is the last O(|U|) interpreter loop in the
ingestion path.  :func:`enrich_columns` applies the same rule list to a
:class:`~repro.core.columnar.ColumnarProfiles` as array passes: one
boolean presence mask and one float64 score vector per *touched* label
(labels no rule reads or writes are never densified).

Parity is exact, not approximate:

* **Support weights** come from the fixed pre-enrichment support map,
  exactly like the engine's (support is computed once on the original
  repository, never from staged inferences).
* **Aggregation order** mirrors the engine bit-for-bit: per parent the
  present children are accumulated left-to-right in ``sorted(children)``
  order, so the float64 rounding of ``support-mean``/``mean`` matches the
  dict path's ``sum()`` term for term; ``max`` replicates Python's
  keep-first-maximum semantics.
* **Staging** matches ``merged.setdefault``: rules fire in order over
  shared mutable state, generalization levels fire leaves-first, and an
  inference never overwrites a present value — explicit data stays
  authoritative.

Only the two shipped rule families are vectorizable; custom
:class:`InferenceRule` subclasses must take the dict path, which remains
the parity oracle (``tests/taxonomy/test_columnar_rules.py``).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..core.columnar import ColumnarProfiles
from ..core.errors import TaxonomyError
from .rules import (
    FunctionalPropertyRule,
    GeneralizationRule,
    InferenceRule,
    category_property,
)


class _ColumnState:
    """Mutable per-label ``(presence, score)`` vectors, densified lazily.

    The base columns are pre-sorted by property once so initializing a
    label's state is a contiguous slice, not a scan.  State persists
    across rules: a label inferred by rule *k* is staged input to rule
    *k + 1*, mirroring the engine's merged-profile threading.
    """

    def __init__(self, profiles: ColumnarProfiles) -> None:
        self.n = profiles.n_users
        self._pos = {
            label: j for j, label in enumerate(profiles.property_labels)
        }
        counts = np.bincount(
            profiles.prop_col, minlength=len(profiles.property_labels)
        )
        self.support = {
            label: int(counts[j]) for label, j in self._pos.items()
        }
        order = np.argsort(profiles.prop_col, kind="stable")
        self._indptr = np.zeros(len(self._pos) + 1, dtype=np.int64)
        np.cumsum(counts, out=self._indptr[1:])
        self._users = profiles.user_col[order]
        self._scores = profiles.score_col[order]
        self._presence: dict[str, np.ndarray] = {}
        self._values: dict[str, np.ndarray] = {}
        #: (rows, label, values) of every inference, in firing order.
        self.inferred: list[tuple[np.ndarray, str, np.ndarray]] = []

    def get(self, label: str) -> tuple[np.ndarray, np.ndarray]:
        mask = self._presence.get(label)
        if mask is None:
            mask = np.zeros(self.n, dtype=bool)
            values = np.zeros(self.n, dtype=np.float64)
            j = self._pos.get(label)
            if j is not None:
                lo, hi = int(self._indptr[j]), int(self._indptr[j + 1])
                rows = self._users[lo:hi]
                mask[rows] = True
                values[rows] = self._scores[lo:hi]
            self._presence[label] = mask
            self._values[label] = values
        return mask, self._values[label]

    def infer(
        self, label: str, rows_mask: np.ndarray, values: np.ndarray
    ) -> None:
        """Record ``label = values`` for ``rows_mask`` users (all absent)."""
        mask, present_values = self.get(label)
        self._presence[label] = mask | rows_mask
        self._values[label] = np.where(rows_mask, values, present_values)
        self.inferred.append(
            (np.flatnonzero(rows_mask), label, values[rows_mask])
        )


def _apply_generalization(state: _ColumnState, rule: GeneralizationRule) -> None:
    template = rule.template
    for level in rule.taxonomy.topological_levels():
        for parent in level:
            children = sorted(rule.taxonomy.children(parent))
            if not children:
                continue
            parent_mask, _ = state.get(category_property(template, parent))
            child_states = [
                state.get(category_property(template, c)) for c in children
            ]
            any_child = np.zeros(state.n, dtype=bool)
            for mask, _ in child_states:
                any_child |= mask
            fire = any_child & ~parent_mask
            if not fire.any():
                continue
            if rule.aggregate == "max":
                # Python's max keeps the first of equal values; replicate
                # with a strict-greater update over sorted children.
                acc = np.zeros(state.n, dtype=np.float64)
                seen = np.zeros(state.n, dtype=bool)
                for mask, values in child_states:
                    take = mask & (~seen | (values > acc))
                    acc = np.where(take, values, acc)
                    seen |= mask
                inferred = acc
            elif rule.aggregate == "mean":
                acc = np.zeros(state.n, dtype=np.float64)
                count = np.zeros(state.n, dtype=np.int64)
                for mask, values in child_states:
                    acc = np.where(mask, acc + values, acc)
                    count += mask
                inferred = acc / np.maximum(count, 1)
            elif rule.aggregate == "support-mean":
                acc = np.zeros(state.n, dtype=np.float64)
                total = np.zeros(state.n, dtype=np.int64)
                for child, (mask, values) in zip(children, child_states):
                    weight = max(
                        state.support.get(
                            category_property(template, child), 1
                        ),
                        1,
                    )
                    acc = np.where(mask, acc + values * weight, acc)
                    total = np.where(mask, total + weight, total)
                inferred = acc / np.maximum(total, 1)
            else:
                raise TaxonomyError(f"unknown aggregate {rule.aggregate!r}")
            state.infer(category_property(template, parent), fire, inferred)


def _apply_functional(state: _ColumnState, rule: FunctionalPropertyRule) -> None:
    # Snapshot presence/assertion before any update: inferences within
    # one rule do not feed back into that rule's own reading.
    masks = []
    count = np.zeros(state.n, dtype=np.int64)
    held = np.full(state.n, -1, dtype=np.int64)
    for i, value in enumerate(rule.domain):
        mask, scores = state.get(category_property(rule.template, value))
        asserted = mask & (scores == 1.0)
        masks.append(mask.copy())
        count += asserted
        held = np.where(asserted, i, held)
    single = count == 1
    zeros = np.zeros(state.n, dtype=np.float64)
    for i, value in enumerate(rule.domain):
        fire = single & (held != i) & ~masks[i]
        if fire.any():
            state.infer(category_property(rule.template, value), fire, zeros)


def enrich_columns(
    profiles: ColumnarProfiles, rules: Iterable[InferenceRule]
) -> ColumnarProfiles:
    """Vectorized :meth:`RuleEngine.enrich` over triple columns.

    Returns a new :class:`ColumnarProfiles` whose per-user score sets
    equal (bit-for-bit) those of ``RuleEngine(rules).enrich`` applied to
    the equivalent dict repository.  Requires the entry columns to carry
    each ``(user, property)`` pair at most once — true of every columnar
    producer in this repo.
    """
    state = _ColumnState(profiles)
    for rule in rules:
        if isinstance(rule, GeneralizationRule):
            _apply_generalization(state, rule)
        elif isinstance(rule, FunctionalPropertyRule):
            _apply_functional(state, rule)
        else:
            raise TaxonomyError(
                f"columnar enrichment supports GeneralizationRule and "
                f"FunctionalPropertyRule; {type(rule).__name__} must take "
                f"the dict-based RuleEngine path"
            )
    if not state.inferred:
        return profiles

    labels = list(profiles.property_labels)
    position = {label: j for j, label in enumerate(labels)}
    user_parts = [profiles.user_col]
    prop_parts = [profiles.prop_col]
    score_parts = [profiles.score_col]
    for rows, label, values in state.inferred:
        j = position.get(label)
        if j is None:
            j = position[label] = len(labels)
            labels.append(label)
        user_parts.append(rows)
        prop_parts.append(np.full(len(rows), j, dtype=np.int64))
        score_parts.append(values)
    return ColumnarProfiles(
        user_ids=profiles.user_ids,
        property_labels=tuple(labels),
        user_col=np.concatenate(user_parts),
        prop_col=np.concatenate(prop_parts),
        score_col=np.concatenate(score_parts),
    )
