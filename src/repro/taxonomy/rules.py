"""Inference rules for profile enrichment (paper §3.1, Example 3.2).

Profiles should be "as complete as possible" before grouping; the paper
pre-processes them by applying inference rules on Boolean properties or
the raw data behind derived ones.  Two rule families are implemented:

* :class:`GeneralizationRule` — taxonomy-driven: from ``avgRating
  Mexican`` derive ``avgRating Latin`` because Mexican ⊑ Latin.  Parent
  scores are support-weighted means of the child scores present in the
  profile, so a user who rates many Mexican and few Spanish restaurants
  gets a Latin score dominated by the Mexican one.
* :class:`FunctionalPropertyRule` — from ``livesIn Tokyo = 1`` and the
  knowledge that ``livesIn`` is a function, infer ``livesIn X = 0`` for
  every other city in the domain.

A :class:`RuleEngine` applies a rule list to a repository; generalization
rules fire leaves-first so multi-level taxonomies propagate in one pass.
Everything not inferred stays under the open-world assumption — rules
only ever *add* properties.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from ..core.profiles import UserProfile, UserRepository
from .tree import Taxonomy


def category_property(template: str, category: str) -> str:
    """Compose a property label like ``avgRating Mexican``."""
    return f"{template} {category}"


def parse_category(template: str, label: str) -> str | None:
    """Inverse of :func:`category_property`; ``None`` when not matching."""
    prefix = template + " "
    if label.startswith(prefix):
        return label[len(prefix):]
    return None


class InferenceRule(ABC):
    """A rule mapping one profile to a set of inferred properties."""

    @abstractmethod
    def infer(
        self, profile: UserProfile, support: Mapping[str, int]
    ) -> dict[str, float]:
        """Return ``{property: score}`` to add to ``profile``.

        ``support`` maps existing property labels to their population
        support ``|p|`` (used by weighted aggregation).  Properties the
        profile already has must not be returned; the engine skips them
        anyway to keep explicit data authoritative.
        """


@dataclass(frozen=True)
class GeneralizationRule(InferenceRule):
    """Derive parent-category scores from child-category scores.

    Parameters
    ----------
    template:
        The property family, e.g. ``"avgRating"`` or ``"visitFreq"``.
    taxonomy:
        Category DAG to generalize along.
    aggregate:
        ``"support-mean"`` weights each child score by its population
        support; ``"mean"`` is the plain average; ``"max"`` takes the
        strongest child signal (useful for Boolean families, where any
        true child makes the parent true).
    """

    template: str
    taxonomy: Taxonomy
    aggregate: str = "support-mean"

    def infer(
        self, profile: UserProfile, support: Mapping[str, int]
    ) -> dict[str, float]:
        by_category = {
            category: score
            for label, score in profile.scores.items()
            if (category := parse_category(self.template, label)) is not None
        }
        inferred: dict[str, float] = {}
        # Fire leaves-first so grandparents see freshly inferred parents.
        for level in self.taxonomy.topological_levels():
            for parent in level:
                if parent in by_category:
                    continue
                children = self.taxonomy.children(parent) & set(by_category)
                if not children:
                    continue
                score = self._aggregate(
                    {c: by_category[c] for c in sorted(children)}, support
                )
                by_category[parent] = score
                inferred[category_property(self.template, parent)] = score
        return inferred

    def _aggregate(
        self, child_scores: dict[str, float], support: Mapping[str, int]
    ) -> float:
        if self.aggregate == "max":
            return max(child_scores.values())
        if self.aggregate == "mean":
            return sum(child_scores.values()) / len(child_scores)
        if self.aggregate == "support-mean":
            weights = {
                c: max(
                    support.get(category_property(self.template, c), 1), 1
                )
                for c in child_scores
            }
            total = sum(weights.values())
            return sum(
                child_scores[c] * weights[c] for c in child_scores
            ) / total
        raise ValueError(f"unknown aggregate {self.aggregate!r}")


@dataclass(frozen=True)
class FunctionalPropertyRule(InferenceRule):
    """Close a functional Boolean family: one true value falsifies the rest.

    ``domain`` lists the possible values (e.g. every city the repository
    knows about); when the profile asserts one of them with score 1, every
    other value is inferred false (score 0), as in Example 3.2 for
    ``livesIn``.
    """

    template: str
    domain: tuple[str, ...]

    def infer(
        self, profile: UserProfile, support: Mapping[str, int]
    ) -> dict[str, float]:
        asserted = [
            value
            for value in self.domain
            if profile.scores.get(category_property(self.template, value)) == 1.0
        ]
        if len(asserted) != 1:
            # Zero assertions: open world, nothing to infer.  Multiple
            # assertions: contradictory input, refuse to guess.
            return {}
        (held,) = asserted
        return {
            category_property(self.template, value): 0.0
            for value in self.domain
            if value != held
            and category_property(self.template, value) not in profile
        }


class RuleEngine:
    """Apply inference rules over a whole repository.

    Explicit (raw) properties always win: a rule never overwrites a score
    already present in the profile.
    """

    def __init__(self, rules: Iterable[InferenceRule]) -> None:
        self._rules = list(rules)

    @property
    def rules(self) -> list[InferenceRule]:
        return list(self._rules)

    def enrich_profile(
        self, profile: UserProfile, support: Mapping[str, int]
    ) -> UserProfile:
        """Return ``profile`` with every rule's inferences added."""
        merged = dict(profile.scores)
        for rule in self._rules:
            staged = UserProfile(profile.user_id, merged)
            for label, score in rule.infer(staged, support).items():
                merged.setdefault(label, score)
        return UserProfile(profile.user_id, merged)

    def enrich(self, repository: UserRepository) -> UserRepository:
        """Return a new repository with all profiles enriched."""
        support = {
            label: repository.support(label)
            for label in repository.property_labels
        }
        return UserRepository(
            self.enrich_profile(profile, support) for profile in repository
        )
