"""Reader–writer locking for the threaded serving path.

The service caches ``(GroupSet, DiversificationInstance, InstanceIndex)``
artifacts per configuration and swaps the whole repository on profile
(re)loads.  Selections are pure reads over those structures, so many may
run concurrently; a repository swap or delta application must instead see
no in-flight readers, or a selection could observe a half-invalidated
cache.  :class:`ReadWriteLock` provides exactly that discipline:

* any number of readers hold the lock together;
* a writer holds it exclusively;
* writers are preferred — once a writer is waiting, new readers queue
  behind it, so heavy read traffic cannot starve updates.

The lock is deliberately not re-entrant: service entry points acquire it
once and call only unlocked internals (the ``_``-prefixed methods in
:mod:`repro.service.app`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """A writer-preferring readers–writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        """Acquire the lock in shared (reader) mode."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Acquire the lock in exclusive (writer) mode."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()
