"""Visualization payloads mirroring the Podium UI (paper §7, Fig. 2).

The original prototype renders an AngularJS explanation page with three
panes; this module produces the same content as JSON-ready dictionaries
(for the HTTP service) and as plain text (for terminal use in examples):

* **left pane** — selected users with the top-weight groups each covers;
* **middle pane** — the percentage of top-weight groups covered, plus the
  weighted group list flagged covered / uncovered;
* **right pane** — per-property score-distribution comparison between the
  whole population and the selected subset.
"""

from __future__ import annotations

from typing import Any

from ..core.explanations import SelectionExplanation
from ..core.greedy import SelectionResult


def explanation_payload(
    explanation: SelectionExplanation,
    per_user_top: int = 5,
    group_list_limit: int = 50,
) -> dict[str, Any]:
    """Serialize a :class:`SelectionExplanation` into the Fig. 2 panes."""
    left = [
        {
            "user": ue.user_id,
            "top_groups": [
                {"label": g.label, "weight": float(g.weight)}
                for g in ue.top(per_user_top)
            ],
            "group_count": len(ue.groups),
        }
        for ue in explanation.user_explanations
    ]
    middle_groups = [
        {
            "label": sge.label,
            "required": sge.required,
            "actual": sge.actual,
            "covered": sge.covered,
        }
        for sge in explanation.subset_group_explanations[:group_list_limit]
    ]
    right = [
        {
            "property": dist.property_label,
            "buckets": list(dist.bucket_labels),
            "population": [round(x, 4) for x in dist.population],
            "subset": [round(x, 4) for x in dist.subset],
        }
        for dist in explanation.distributions
    ]
    return {
        "left_pane": left,
        "middle_pane": {
            "top_coverage_percent": round(
                100.0 * explanation.top_coverage_fraction, 1
            ),
            "groups": middle_groups,
        },
        "right_pane": right,
    }


def render_html(
    result: SelectionResult,
    explanation: SelectionExplanation,
    title: str = "Podium — selection explanation",
    per_user_top: int = 5,
    group_list_limit: int = 50,
) -> str:
    """Self-contained HTML rendering of the Fig. 2 explanation page.

    Three panes, as in the prototype UI: selected users with their
    top-weight groups (left), the covered-groups list with the top-weight
    coverage percentage (middle), and population-vs-subset distribution
    bars per requested property (right).  No external assets — the page
    is a single static file suitable for emailing to a client.
    """
    from html import escape

    payload = explanation_payload(
        explanation,
        per_user_top=per_user_top,
        group_list_limit=group_list_limit,
    )
    parts: list[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        "<style>",
        "body{font-family:sans-serif;margin:1.5em;color:#222}",
        ".panes{display:flex;gap:2em;align-items:flex-start}",
        ".pane{flex:1;min-width:18em}",
        ".covered{color:#1a7f37}.missing{color:#b42318}",
        ".bar{display:inline-block;height:0.8em;background:#4a7dbd}",
        ".bar.subset{background:#d98e04}",
        "td,th{padding:0.15em 0.6em;text-align:left}",
        "</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        f"<p>Selected <b>{len(result.selected)}</b> users, "
        f"total score <b>{float(result.score):,.0f}</b>.</p>",
        "<div class='panes'>",
    ]

    parts.append("<div class='pane'><h2>Selected users</h2><ul>")
    for entry in payload["left_pane"]:
        tops = ", ".join(escape(g["label"]) for g in entry["top_groups"])
        parts.append(
            f"<li><b>{escape(entry['user'])}</b>: {tops} "
            f"<i>({entry['group_count']} groups)</i></li>"
        )
    parts.append("</ul></div>")

    middle = payload["middle_pane"]
    parts.append(
        "<div class='pane'><h2>Group coverage "
        f"({middle['top_coverage_percent']}% of top-weight groups)</h2>"
        "<table><tr><th>group</th><th>required</th><th>actual</th></tr>"
    )
    for group in middle["groups"]:
        css = "covered" if group["covered"] else "missing"
        parts.append(
            f"<tr class='{css}'><td>{escape(group['label'])}</td>"
            f"<td>{group['required']}</td><td>{group['actual']}</td></tr>"
        )
    parts.append("</table></div>")

    parts.append("<div class='pane'><h2>Distributions</h2>")
    for dist in payload["right_pane"]:
        parts.append(f"<h3>{escape(dist['property'])}</h3><table>")
        for label, pop, sub in zip(
            dist["buckets"], dist["population"], dist["subset"]
        ):
            parts.append(
                f"<tr><td>{escape(label)}</td>"
                f"<td><span class='bar' style='width:{pop * 150:.0f}px'>"
                f"</span> {pop:.1%}</td>"
                f"<td><span class='bar subset' "
                f"style='width:{sub * 150:.0f}px'></span> {sub:.1%}</td>"
                "</tr>"
            )
        parts.append("</table>")
    parts.append("</div></div></body></html>")
    return "\n".join(parts)


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_text(
    result: SelectionResult,
    explanation: SelectionExplanation,
    per_user_top: int = 3,
    group_list_limit: int = 15,
) -> str:
    """Terminal rendering of the explanation page (used by the examples)."""
    lines: list[str] = []
    lines.append("=" * 72)
    lines.append(
        f"Selected {len(result.selected)} users, total score "
        f"{float(result.score):,.0f}"
    )
    lines.append("=" * 72)

    lines.append("-- Selected users (top covered groups) " + "-" * 32)
    for ue in explanation.user_explanations:
        tops = ", ".join(g.label for g in ue.top(per_user_top))
        lines.append(f"  {ue.user_id}: {tops}  (+{len(ue.groups)} groups)")

    percent = 100.0 * explanation.top_coverage_fraction
    lines.append(f"-- Coverage of top-weight groups: {percent:.1f}% " + "-" * 20)
    for sge in explanation.subset_group_explanations[:group_list_limit]:
        flag = "COVERED " if sge.covered else "MISSING "
        lines.append(
            f"  [{flag}] {sge.label}  (required {sge.required}, "
            f"got {sge.actual})"
        )

    if explanation.distributions:
        lines.append("-- Population vs subset distributions " + "-" * 33)
        for dist in explanation.distributions:
            lines.append(f"  {dist.property_label}:")
            for label, pop, sub in zip(
                dist.bucket_labels, dist.population, dist.subset
            ):
                lines.append(
                    f"    {label:12s} pop {_bar(pop)} {pop:5.1%}   "
                    f"subset {_bar(sub)} {sub:5.1%}"
                )
    return "\n".join(lines)


def render_metrics_text(snapshot: dict[str, Any]) -> str:
    """Terminal rendering of a :meth:`ServiceMetrics.snapshot` document.

    Printed by ``repro serve`` when the server shuts down, so a demo run
    ends with a readable traffic/cache/timing summary.
    """
    lines: list[str] = []
    lines.append("=" * 72)
    lines.append(
        f"Service metrics — {snapshot.get('request_count', 0)} requests, "
        f"{snapshot.get('error_count', 0)} errors, "
        f"uptime {snapshot.get('uptime_seconds', 0.0):.1f}s"
    )
    lines.append("=" * 72)
    requests = snapshot.get("requests", {})
    if requests:
        lines.append("-- Requests per route " + "-" * 50)
        for route in sorted(requests):
            entry = requests[route]
            lines.append(
                f"  {route:28s} count {entry.get('count', 0):6d}   "
                f"errors {entry.get('errors', 0):6d}"
            )
    cache = snapshot.get("cache", {})
    if cache:
        hits = cache.get("instance_hits", 0)
        misses = cache.get("instance_misses", 0)
        total = hits + misses
        ratio = hits / total if total else 0.0
        lines.append(
            f"-- Artifact cache: {hits} hits / {misses} misses "
            f"({ratio:.1%} hit rate) " + "-" * 10
        )
    stages = snapshot.get("stages", {})
    if stages:
        lines.append("-- Stage timings " + "-" * 55)
        for name in sorted(stages):
            stage = stages[name]
            count = stage.get("count", 0)
            total_s = stage.get("total_seconds", 0.0)
            mean_ms = 1000.0 * total_s / count if count else 0.0
            lines.append(
                f"  {name:14s} count {count:6d}   "
                f"total {total_s:8.3f}s   mean {mean_ms:8.2f}ms   "
                f"max {1000.0 * stage.get('max_seconds', 0.0):8.2f}ms"
            )
    return "\n".join(lines)
