"""Diversification configurations (paper §7).

"Podium also allows an administrator to feed in an *initial set of
diversification configurations* with associated textual descriptions" —
e.g. the "Summer Pavilion" configuration of Fig. 2, which only considers
properties related to one restaurant.  A configuration names a property
filter, the weight/coverage schemes, the bucketing strategy and a default
budget; the selection module resolves it into a concrete diversification
instance at request time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.errors import ServiceError
from ..core.groups import GroupingConfig
from ..core.weights import (
    COVERAGE_SCHEMES,
    WEIGHT_SCHEMES,
    coverage_scheme,
    weight_scheme,
)


@dataclass(frozen=True)
class DiversificationConfiguration:
    """A named, administrator-provided selection preset."""

    name: str
    description: str = ""
    property_prefixes: tuple[str, ...] | None = None
    weight_scheme: str = "LBS"
    coverage_scheme: str = "Single"
    budget: int = 8
    buckets_per_property: int = 3
    bucketing_strategy: str = "jenks"
    min_support: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("configuration name cannot be empty")
        if self.weight_scheme not in WEIGHT_SCHEMES:
            raise ServiceError(
                f"unknown weight scheme {self.weight_scheme!r}"
            )
        if self.coverage_scheme not in COVERAGE_SCHEMES:
            raise ServiceError(
                f"unknown coverage scheme {self.coverage_scheme!r}"
            )
        if self.budget < 1:
            raise ServiceError(f"budget must be >= 1, got {self.budget}")

    def grouping_config(self) -> GroupingConfig:
        return GroupingConfig(
            buckets_per_property=self.buckets_per_property,
            strategy=self.bucketing_strategy,
            min_support=self.min_support,
        )

    def schemes(self):
        """Instantiate the (weight, coverage) scheme pair."""
        return (
            weight_scheme(self.weight_scheme),
            coverage_scheme(self.coverage_scheme),
        )

    def matches_property(self, label: str) -> bool:
        """Whether ``label`` passes this configuration's property filter."""
        if self.property_prefixes is None:
            return True
        return any(label.startswith(p) for p in self.property_prefixes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "property_prefixes": (
                list(self.property_prefixes)
                if self.property_prefixes is not None
                else None
            ),
            "weight_scheme": self.weight_scheme,
            "coverage_scheme": self.coverage_scheme,
            "budget": self.budget,
            "buckets_per_property": self.buckets_per_property,
            "bucketing_strategy": self.bucketing_strategy,
            "min_support": self.min_support,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DiversificationConfiguration":
        try:
            prefixes = data.get("property_prefixes")
            return cls(
                name=str(data["name"]),
                description=str(data.get("description", "")),
                property_prefixes=(
                    tuple(prefixes) if prefixes is not None else None
                ),
                weight_scheme=str(data.get("weight_scheme", "LBS")),
                coverage_scheme=str(data.get("coverage_scheme", "Single")),
                budget=int(data.get("budget", 8)),
                buckets_per_property=int(data.get("buckets_per_property", 3)),
                bucketing_strategy=str(data.get("bucketing_strategy", "jenks")),
                min_support=int(data.get("min_support", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed configuration: {exc}") from exc


class ConfigurationStore:
    """In-memory registry of named configurations."""

    def __init__(
        self, configurations: tuple[DiversificationConfiguration, ...] = ()
    ) -> None:
        self._configs: dict[str, DiversificationConfiguration] = {}
        self._version = 0
        for config in configurations:
            self.put(config)

    @property
    def version(self) -> int:
        """Bumped on every :meth:`put`; cache layers key on it."""
        return self._version

    def put(self, config: DiversificationConfiguration) -> None:
        """Insert or replace a configuration under its name."""
        self._configs[config.name] = config
        self._version += 1

    def get(self, name: str) -> DiversificationConfiguration:
        try:
            return self._configs[name]
        except KeyError:
            raise ServiceError(f"unknown configuration {name!r}") from None

    def names(self) -> list[str]:
        return list(self._configs)

    def __len__(self) -> int:
        return len(self._configs)

    def __contains__(self, name: object) -> bool:
        return name in self._configs


def default_configuration(budget: int = 8) -> DiversificationConfiguration:
    """The paper's default experimental setup: LBS + Single, B = 8."""
    return DiversificationConfiguration(
        name="default",
        description="All properties, LBS weights, single coverage",
        budget=budget,
    )
