"""Request metrics and structured logging for the serving path.

The production serving loop (threaded WSGI adapter + cached selection
artifacts) reports its behaviour through one :class:`ServiceMetrics`
object:

* **per-route counters** — request and error counts keyed by
  ``"METHOD /path"``;
* **cache counters** — hits/misses of the per-configuration
  ``(GroupSet, instance, index)`` artifact cache;
* **stage timings** — cumulative/max seconds per pipeline stage
  (``grouping``, ``instance``, ``selection``, ``explanation``), so a slow
  layer is visible without a profiler.

All mutators take an internal lock: the WSGI adapter serves concurrent
requests from a thread pool, and counter increments must not be lost.
:meth:`snapshot` returns a plain JSON-ready dict — the body of
``GET /metrics``.

:func:`request_log_record` builds the one-line JSON document the adapter
logs per request (route, status, duration, stage breakdown), keeping log
parsing trivial for any structured-log shipper.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any


class StageTimer:
    """Accumulates named stage durations for one request.

    Used as ``with timer.stage("selection"): ...``; re-entering a stage
    adds to its total, so e.g. two selection passes in one request are
    reported as one stage.
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    def stage(self, name: str) -> "_StageContext":
        return _StageContext(self, name)

    def record(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds


class _StageContext:
    def __init__(self, timer: StageTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_StageContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.record(self._name, time.perf_counter() - self._start)


class ServiceMetrics:
    """Thread-safe request/cache/stage counters behind ``GET /metrics``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: dict[str, dict[str, int]] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._stages: dict[str, dict[str, float]] = {}
        self._ingest = {
            "deltas": 0,
            "upserts": 0,
            "removals": 0,
            "total_seconds": 0.0,
            "max_seconds": 0.0,
            "wal_seconds": 0.0,
        }
        self._constraints = {
            "fair": 0,
            "clustered": 0,
            "satisfied": 0,
            "violated": 0,
            "infeasible": 0,
        }
        self._started = time.time()

    # -- observation -------------------------------------------------------

    def observe_request(
        self,
        route: str,
        status: int,
        seconds: float,
        stages: dict[str, float] | None = None,
    ) -> None:
        """Record one served request and its per-stage breakdown."""
        with self._lock:
            entry = self._requests.setdefault(
                route, {"count": 0, "errors": 0}
            )
            entry["count"] += 1
            if status >= 400:
                entry["errors"] += 1
            self._observe_stage("request", seconds)
            for name, stage_seconds in (stages or {}).items():
                self._observe_stage(name, stage_seconds)

    def observe_ingest(
        self,
        upserts: int,
        removals: int,
        seconds: float,
        wal_seconds: float = 0.0,
    ) -> None:
        """Record one applied profile delta on the durable ingest path.

        ``seconds`` is the full durability-to-visibility lag (WAL append
        + incremental apply + cache refresh); ``wal_seconds`` isolates
        the disk portion so fsync cost is visible on ``/metrics``.
        """
        with self._lock:
            self._ingest["deltas"] += 1
            self._ingest["upserts"] += upserts
            self._ingest["removals"] += removals
            self._ingest["total_seconds"] += seconds
            self._ingest["max_seconds"] = max(
                self._ingest["max_seconds"], seconds
            )
            self._ingest["wal_seconds"] += wal_seconds

    def observe_constraints(
        self, mode: str, satisfied: bool | None
    ) -> None:
        """Record one constrained selection request.

        ``mode`` is ``"fair"`` or ``"clustered"``; ``satisfied`` is the
        result's bound-satisfaction verdict, or ``None`` when the
        request was diagnosed infeasible (no selection produced).
        """
        with self._lock:
            if mode in self._constraints:
                self._constraints[mode] += 1
            if satisfied is None:
                self._constraints["infeasible"] += 1
            elif satisfied:
                self._constraints["satisfied"] += 1
            else:
                self._constraints["violated"] += 1

    def observe_cache(self, hit: bool) -> None:
        """Record an artifact-cache lookup outcome."""
        with self._lock:
            if hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1

    def observe_stage(self, name: str, seconds: float) -> None:
        """Record one standalone pipeline stage outside a request.

        The per-request stages flow in through :meth:`observe_request`;
        this hook is for stages that happen on the boot/restore path —
        e.g. ``artifact_open`` when a checkpoint index is memory-mapped
        instead of rebuilt — so ``GET /metrics`` can show open-vs-build
        cost side by side (``stages.artifact_open`` versus
        ``stages.grouping`` + ``stages.instance``).
        """
        with self._lock:
            self._observe_stage(name, seconds)

    def _observe_stage(self, name: str, seconds: float) -> None:
        stage = self._stages.setdefault(
            name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
        )
        stage["count"] += 1
        stage["total_seconds"] += seconds
        stage["max_seconds"] = max(stage["max_seconds"], seconds)

    # -- reporting ---------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        with self._lock:
            return self._cache_hits

    @property
    def cache_misses(self) -> int:
        with self._lock:
            return self._cache_misses

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every counter (the ``/metrics`` body)."""
        with self._lock:
            requests = {
                route: dict(entry) for route, entry in self._requests.items()
            }
            stages = {
                name: {
                    "count": int(stage["count"]),
                    "total_seconds": round(stage["total_seconds"], 6),
                    "max_seconds": round(stage["max_seconds"], 6),
                }
                for name, stage in self._stages.items()
            }
            deltas = self._ingest["deltas"]
            return {
                "uptime_seconds": round(time.time() - self._started, 3),
                "requests": requests,
                "request_count": sum(e["count"] for e in requests.values()),
                "error_count": sum(e["errors"] for e in requests.values()),
                "cache": {
                    "instance_hits": self._cache_hits,
                    "instance_misses": self._cache_misses,
                },
                "ingest": {
                    "deltas": deltas,
                    "upserts": self._ingest["upserts"],
                    "removals": self._ingest["removals"],
                    "total_seconds": round(self._ingest["total_seconds"], 6),
                    "max_lag_seconds": round(self._ingest["max_seconds"], 6),
                    "mean_lag_seconds": round(
                        self._ingest["total_seconds"] / deltas, 6
                    )
                    if deltas
                    else 0.0,
                    "wal_seconds": round(self._ingest["wal_seconds"], 6),
                },
                "constraints": dict(self._constraints),
                "stages": stages,
            }


# Shared-memory counter layout for multi-process serving: every worker
# mirrors these per-process counters into a shared slot so the parent can
# report per-worker request distribution without an RPC round-trip to
# each child (see :mod:`repro.service.workers`).
WORKER_COUNTER_FIELDS = (
    "requests",
    "errors",
    "selects",
    "forwarded_writes",
    "cache_hits",
    "cache_misses",
    "syncs",
    "sync_failures",
)


def aggregate_worker_rows(
    rows: list[dict[str, Any]],
) -> dict[str, int]:
    """Sum per-worker counter rows into pool-wide totals.

    Ignores non-counter keys (``slot``, ``pid``) so rows can carry
    identity next to the counters.
    """
    return {
        field: sum(int(row.get(field, 0)) for row in rows)
        for field in WORKER_COUNTER_FIELDS
    }


def request_log_record(
    route: str,
    status: int,
    seconds: float,
    stages: dict[str, float] | None = None,
    error: str | None = None,
) -> str:
    """One-line JSON log document for a served request."""
    record: dict[str, Any] = {
        "route": route,
        "status": status,
        "duration_ms": round(seconds * 1000.0, 3),
    }
    if stages:
        record["stages_ms"] = {
            name: round(value * 1000.0, 3) for name, value in stages.items()
        }
    if error:
        record["error"] = error
    return json.dumps(record, sort_keys=True)
