"""WAL shipping: a warm standby that tails a primary's log over HTTP.

A follower boots with ``repro serve --follow http://primary:port``: it
performs one full state transfer (``GET /admin/state`` — profiles,
configurations and the primary's WAL position), then a background
thread polls ``GET /admin/wal?from_seq=<applied>`` and replays every
shipped delta through the service's *existing* incremental-update path
— the same :func:`~repro.core.updates.apply_delta_to_repository` +
``reassign_groups`` machinery a recovery replay uses — so the standby's
serving state is byte-identical to the primary's at the same sequence
number.  While following, the service is read-only (writes answer 503);
``POST /admin/promote`` stops the tail and enables writes, turning the
standby into a primary with every replicated ack intact.

Sequence alignment
------------------
The primary's WAL sequence numbers are globally contiguous (numbering
survives compaction, snapshots and restarts), so a follower running its
own ``--data-dir`` bootstraps its store at the primary's position
(``reset(repo, base_seq=primary_wal_seq)``) and then logs each shipped
delta into its *own* WAL — which assigns exactly the shipped sequence
number.  Any divergence between shipped and locally-assigned sequence
is a protocol violation and forces a full resync.

Resync triggers
---------------
* the primary reports ``resync`` (the records the follower needs were
  compacted away, or the follower is *ahead* — divergent histories);
* the primary's reset epoch changed (``load_repository`` wholesale
  replacement keeps sequence numbering, so an epoch counter is the only
  signal that history was rewritten);
* a shipped record fails to apply or mis-numbers locally.

Lag is exported under ``replication`` in ``GET /metrics``: ``lag_seq``
is the primary tip minus the applied position, ``lag_seconds`` the time
since the follower was last caught up.
"""

from __future__ import annotations

import json
import logging
import threading
import time
import urllib.error
import urllib.request
from typing import Any

from ..core.errors import ServiceError
from ..core.updates import profile_delta_from_dict
from .config import DiversificationConfiguration

logger = logging.getLogger("repro.service.replication")

_KIND_DELTA = "delta"


class WalFollower:
    """Background WAL tailer replicating a primary into a local service.

    ``service`` is duck-typed (a :class:`~repro.service.app.
    PodiumService`); the follower only uses its public replication
    surface: ``replace_configurations``, ``load_repository(...,
    base_seq=)``, ``apply_profile_delta`` / ``apply_replicated_delta``
    and ``store``.
    """

    def __init__(
        self,
        service: Any,
        primary_url: str,
        poll_interval: float = 0.5,
        timeout: float = 5.0,
    ) -> None:
        self.service = service
        self.primary_url = primary_url.rstrip("/")
        self.poll_interval = float(poll_interval)
        self.timeout = float(timeout)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        # Replication cursor + gauges (mutated by the tail thread, read
        # by /metrics): guarded by _lock.
        self.applied_seq = 0
        self.primary_seq = 0
        self.primary_epoch = 0
        self.applied_records = 0
        self.resyncs = 0
        self.poll_errors = 0
        self.last_contact_unix: float | None = None
        self.last_caught_up_unix: float | None = None
        self.last_error: str | None = None
        self.state = "idle"  # syncing | streaming | promoted | stopped

    # -- HTTP ---------------------------------------------------------------

    def _get(self, path: str) -> dict[str, Any]:
        request = urllib.request.Request(
            self.primary_url + path, method="GET"
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            return json.loads(resp.read().decode())

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bootstrap from the primary, then tail its WAL in the background.

        The initial state transfer is synchronous and raises on an
        unreachable primary, so the operator learns immediately instead
        of serving an empty standby.
        """
        self.resync()
        self._thread = threading.Thread(
            target=self._run, name="wal-follower", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.timeout + self.poll_interval)
        with self._lock:
            if self.state != "promoted":
                self.state = "stopped"

    def promote(self) -> None:
        """Stop following and hand the service over to local writes.

        Best effort final drain: one last poll narrows the failover
        window when the primary is still reachable; a dead primary just
        means taking over at the last replicated sequence — exactly the
        durability the primary acknowledged and shipped.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.timeout + self.poll_interval)
        try:
            self._poll_once()
        except Exception as exc:  # noqa: BLE001 — primary may be dead
            logger.info("promote: final drain skipped (%s)", exc)
        with self._lock:
            self.state = "promoted"

    # -- replication --------------------------------------------------------

    def resync(self) -> None:
        """Full state transfer: adopt the primary's profiles + configs.

        An empty primary (no profiles loaded yet) answers 400 on
        ``/admin/state``; the follower then simply starts streaming
        from sequence zero.
        """
        with self._lock:
            self.state = "syncing"
        try:
            doc = self._get("/admin/state")
        except urllib.error.HTTPError as exc:
            if exc.code != 400:
                raise
            doc = None  # primary holds no profiles yet
        if doc is not None:
            from ..datasets.io import profiles_from_dict

            configs = [
                DiversificationConfiguration.from_dict(c)
                for c in doc.get("configurations", [])
            ]
            base_seq = int(doc.get("wal_seq", 0))
            self.service.replace_configurations(configs)
            self.service.load_repository(
                profiles_from_dict(doc["profiles"]), base_seq=base_seq
            )
        with self._lock:
            if doc is not None:
                self.applied_seq = int(doc.get("wal_seq", 0))
                self.primary_seq = self.applied_seq
                self.primary_epoch = int(doc.get("reset_epoch", 0))
            else:
                self.applied_seq = 0
                self.primary_seq = 0
                self.primary_epoch = 0
            self.resyncs += 1
            self.last_contact_unix = time.time()
            self.last_caught_up_unix = time.time()
            self.state = "streaming"

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self._poll_once()
                with self._lock:
                    self.last_error = None
            except Exception as exc:  # noqa: BLE001 — keep tailing
                with self._lock:
                    self.poll_errors += 1
                    self.last_error = f"{type(exc).__name__}: {exc}"
                logger.warning("WAL poll failed: %s", exc)

    def _poll_once(self) -> None:
        with self._lock:
            cursor = self.applied_seq
            known_epoch = self.primary_epoch
        doc = self._get(f"/admin/wal?from_seq={cursor}&limit=256")
        now = time.time()
        epoch = int(doc.get("reset_epoch", 0))
        with self._lock:
            self.last_contact_unix = now
            self.primary_seq = int(doc.get("last_seq", 0))
        if epoch != known_epoch or doc.get("resync"):
            # History rewritten (epoch reset) or the needed records were
            # compacted away: only a full transfer can reconverge.
            self.resync()
            return
        for record in doc.get("records", ()):
            applied = self._apply_shipped(
                int(record["seq"]), record.get("payload") or {}
            )
            if not applied:
                return  # resynced mid-batch: the rest of it is stale
        with self._lock:
            if self.applied_seq >= self.primary_seq:
                self.last_caught_up_unix = time.time()

    def _apply_shipped(self, seq: int, payload: dict[str, Any]) -> bool:
        with self._lock:
            expected = self.applied_seq + 1
        if seq != expected or payload.get("kind") != _KIND_DELTA:
            logger.warning(
                "shipped record seq=%s kind=%r (expected seq %s): "
                "resyncing",
                seq,
                payload.get("kind"),
                expected,
            )
            self.resync()
            return False
        delta = profile_delta_from_dict(payload.get("delta") or {})
        if getattr(self.service, "store", None) is not None:
            # Own durable store: log into the local WAL (which assigns
            # the next contiguous sequence) and apply through the live
            # incremental path — an acked replica survives its own crash.
            response = self.service.apply_profile_delta(delta)
            local_seq = int(response.get("wal_seq", -1))
            if local_seq != seq:
                raise ServiceError(
                    f"replication sequence skew: primary shipped seq "
                    f"{seq}, local WAL assigned {local_seq}"
                )
        else:
            # Stateless standby: apply in memory only.
            self.service.apply_replicated_delta(delta)
        with self._lock:
            self.applied_seq = seq
            self.applied_records += 1
        return True

    # -- observability ------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The ``replication`` section of ``GET /metrics``."""
        with self._lock:
            lag_seq = max(0, self.primary_seq - self.applied_seq)
            if lag_seq == 0:
                lag_seconds = 0.0
            elif self.last_caught_up_unix is not None:
                lag_seconds = time.time() - self.last_caught_up_unix
            else:
                lag_seconds = None
            return {
                "role": "follower" if self.state != "promoted" else (
                    "primary"
                ),
                "state": self.state,
                "primary": self.primary_url,
                "applied_seq": self.applied_seq,
                "primary_seq": self.primary_seq,
                "primary_epoch": self.primary_epoch,
                "lag_seq": lag_seq,
                "lag_seconds": lag_seconds,
                "applied_records": self.applied_records,
                "resyncs": self.resyncs,
                "poll_errors": self.poll_errors,
                "poll_interval_seconds": self.poll_interval,
                "last_contact_unix": self.last_contact_unix,
                "last_error": self.last_error,
            }
