"""Pre-fork multi-process serving for the Podium service.

``repro serve --workers N`` escapes the GIL for the read-heavy serving
path: the parent process recovers the repository (snapshot + WAL),
**warms** every configuration's ``(GroupSet, instance, CSR index)``
triple, then forks ``N`` worker processes.  The warmed numpy payloads —
plus memory-mapped snapshot indexes — are inherited copy-on-write, so
``N`` workers share one physical copy of the serving artifacts instead
of each paying a private build.

Topology
--------

.. code-block:: text

    parent (writer + supervisor)             worker 0..N-1 (readers)
    ├─ DurableRepositoryStore (WAL+snap)     ├─ no store (fd released)
    ├─ WriteCoordinator                      ├─ PooledWSGIServer
    │   applies writes, publishes to ring    │   SO_REUSEPORT socket
    ├─ ControlServer (unix socket) ◄────────►├─ WorkerRuntime
    │   ops: write / sync / cluster          │   forwards writes, syncs
    └─ SharedPoolState (shm counters)        └─ _SharedSlotMetrics

**Reads** (``/select``, ``/groups``, ``/health``, ...) are answered
entirely inside a worker.  The kernel balances connections across the
workers' ``SO_REUSEPORT`` listening sockets; where the option is
unavailable (or ``REPRO_NO_REUSEPORT=1``), the workers share one
inherited listening socket and compete on ``accept``.

**Writes** (``POST /profiles``, ``/profiles/delta``, ``/configurations``,
``/admin/snapshot``, ``/admin/compact``) are forwarded over a unix
control socket to the single writer — the parent — which WAL-appends and
applies them through exactly the single-process code path
(:func:`repro.service.app._dispatch`), appends the operation to an
in-process replication ring, and bumps a shared-memory **version**
counter.  Durability-before-acknowledgment is therefore identical to
single-process serving: the client's 200 means the delta is fsynced.

**Invalidation** is a per-request compare of two integers: each worker
checks the shared ``(epoch, version)`` pair before answering a read.
When behind, it asks the writer for the ring entries it missed and
replays them through
:meth:`~repro.service.app.PodiumService.apply_replicated_delta` — the
same deterministic incremental machinery the writer used — so every
process converges to byte-identical serving state.  Wholesale changes
(``POST /profiles``) bump the **epoch** instead, forcing a full state
transfer on next contact.

Worker lifetime is tied to the parent three ways: SIGTERM on graceful
shutdown, ``PR_SET_PDEATHSIG`` (Linux), and a lifeline pipe whose EOF —
delivered even after ``SIGKILL`` of the parent — tells the worker to
drain and exit.  The supervisor reaps and respawns crashed workers,
forking under the write lock so the clone is always a consistent
snapshot.
"""

from __future__ import annotations

import ctypes
import io
import json
import logging
import os
import select as _select
import signal
import socket
import struct
import tempfile
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.sharedctypes import RawArray, RawValue
from socketserver import ThreadingMixIn
from typing import Any, Callable
from wsgiref.simple_server import WSGIServer

from ..core.errors import PodiumError
from ..datasets.io import profiles_from_dict
from .app import (
    _JSON,
    _QuietHandler,
    _STATUS_LINES,
    PodiumService,
    _dispatch,
    make_wsgi_app,
    parse_profile_delta,
)
from .config import DiversificationConfiguration
from .metrics import (
    WORKER_COUNTER_FIELDS,
    ServiceMetrics,
    StageTimer,
    aggregate_worker_rows,
    request_log_record,
)

logger = logging.getLogger("repro.service.workers")

#: Mutating routes a worker must not answer itself: single-writer
#: replication routes them to the parent over the control socket.
FORWARDED_ROUTES = frozenset(
    {
        ("POST", "/profiles"),
        ("POST", "/profiles/delta"),
        ("POST", "/configurations"),
        ("POST", "/admin/snapshot"),
        ("POST", "/admin/compact"),
    }
)

_FRAME_HEADER = struct.Struct(">I")
_MAX_FRAME = 512 * 1024 * 1024  # corrupt-length guard, not a quota
_FIELD_INDEX = {name: i for i, name in enumerate(WORKER_COUNTER_FIELDS)}


# ---------------------------------------------------------------------------
# Shared memory
# ---------------------------------------------------------------------------


class SharedPoolState:
    """Fork-shared pool state: invalidation counters + per-worker slots.

    Allocated *before* the workers fork, so every process addresses the
    same ``multiprocessing`` shared-memory pages.  ``version`` counts
    published incremental operations (deltas, configuration puts);
    ``epoch`` counts wholesale replacements.  A worker whose local pair
    lags either counter syncs with the writer before answering a read.

    The writer is the only mutator of ``version``/``epoch`` (a plain
    store is enough — no cross-process atomics needed); each worker is
    the only mutator of its own counter slot.
    """

    def __init__(self, slots: int) -> None:
        self.slots = slots
        self.version = RawValue(ctypes.c_uint64, 0)
        self.epoch = RawValue(ctypes.c_uint64, 0)
        self._counters = RawArray(
            ctypes.c_int64, slots * len(WORKER_COUNTER_FIELDS)
        )
        self._pids = RawArray(ctypes.c_int64, slots)

    def add_counter(self, slot: int, name: str, n: int = 1) -> None:
        self._counters[
            slot * len(WORKER_COUNTER_FIELDS) + _FIELD_INDEX[name]
        ] += n

    def set_pid(self, slot: int, pid: int) -> None:
        self._pids[slot] = pid

    def reset_slot(self, slot: int) -> None:
        base = slot * len(WORKER_COUNTER_FIELDS)
        for i in range(len(WORKER_COUNTER_FIELDS)):
            self._counters[base + i] = 0
        self._pids[slot] = 0

    def counter_row(self, slot: int) -> dict[str, int]:
        base = slot * len(WORKER_COUNTER_FIELDS)
        row: dict[str, int] = {
            "slot": slot,
            "pid": int(self._pids[slot]),
        }
        for i, name in enumerate(WORKER_COUNTER_FIELDS):
            row[name] = int(self._counters[base + i])
        return row

    def rows(self) -> list[dict[str, int]]:
        return [
            self.counter_row(slot)
            for slot in range(self.slots)
            if self._pids[slot]
        ]


# ---------------------------------------------------------------------------
# Replication ring
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChangeEntry:
    version: int
    kind: str  # "delta" | "config"
    payload: dict[str, Any]


class ChangeLog:
    """Bounded in-memory ring of published write operations.

    Workers that fall behind by more entries than the ring holds (or
    that straddle an epoch bump) get a full state transfer instead of
    deltas; ``since`` returning ``None`` signals that.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self._capacity = capacity
        self._entries: list[ChangeEntry] = []
        self._dropped = 0  # highest version evicted from the ring
        self._lock = threading.Lock()

    def append(self, entry: ChangeEntry) -> None:
        with self._lock:
            self._entries.append(entry)
            while len(self._entries) > self._capacity:
                self._dropped = self._entries.pop(0).version

    def clear(self) -> None:
        """Invalidate every buffered entry (epoch bump)."""
        with self._lock:
            if self._entries:
                self._dropped = self._entries[-1].version
                self._entries.clear()

    def since(
        self, after_version: int, upto_version: int
    ) -> list[ChangeEntry] | None:
        """Entries in ``(after_version, upto_version]``, oldest first.

        ``None`` when ``after_version`` predates the ring's history and
        the caller needs a full resync.
        """
        with self._lock:
            if after_version < self._dropped:
                return None
            return [
                e
                for e in self._entries
                if after_version < e.version <= upto_version
            ]


# ---------------------------------------------------------------------------
# Control-socket framing (length-prefixed JSON)
# ---------------------------------------------------------------------------


def send_frame(sock: socket.socket, document: dict[str, Any]) -> None:
    """Write one length-prefixed JSON frame to the control socket."""
    blob = json.dumps(document).encode()
    sock.sendall(_FRAME_HEADER.pack(len(blob)) + blob)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a clean EOF between frames."""
    header = _recv_exact(sock, _FRAME_HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise OSError(f"control frame of {length} bytes exceeds limit")
    blob = _recv_exact(sock, length, allow_eof=False)
    assert blob is not None
    return json.loads(blob.decode())


def _recv_exact(
    sock: socket.socket, n: int, allow_eof: bool
) -> bytes | None:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == n:
                return None
            raise OSError("control connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# Writer side (parent process)
# ---------------------------------------------------------------------------


class WriteCoordinator:
    """Serializes every pool mutation through the parent's service.

    ``handle_write`` replays a forwarded HTTP write through the *same*
    route dispatch the single-process server uses — identical
    validation, durability and response bodies — then publishes the
    operation and bumps the shared version counter, all under one mutex
    so ring order always equals apply order.
    """

    def __init__(
        self,
        service: PodiumService,
        shared: SharedPoolState,
        changelog: ChangeLog,
        reuseport: bool,
    ) -> None:
        self.service = service
        self.shared = shared
        self.changelog = changelog
        self.reuseport = reuseport
        self.mutex = threading.Lock()

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        try:
            if op == "write":
                status, payload = self.handle_write(
                    str(request.get("method", "POST")),
                    str(request.get("path", "")),
                    str(request.get("body", "")).encode(),
                )
                return {"status": status, "payload": payload}
            if op == "sync":
                return self.handle_sync(
                    int(request.get("epoch", 0)),
                    int(request.get("version", 0)),
                )
            if op == "cluster":
                return self.cluster_document()
        except Exception as exc:  # noqa: BLE001 — keep the channel alive
            logger.exception("control op %r failed", op)
            return {"error": f"{type(exc).__name__}: {exc}"}
        return {"error": f"unknown control op {op!r}"}

    def handle_write(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, Any]:
        if (method, path) not in FORWARDED_ROUTES:
            return 404, {"error": f"no forwardable route {method} {path}"}
        with self.mutex:
            environ = {
                "REQUEST_METHOD": method,
                "PATH_INFO": path,
                "CONTENT_LENGTH": str(len(body)),
                "wsgi.input": io.BytesIO(body),
            }
            try:
                status, payload, _ = _dispatch(
                    self.service, method, path, environ, StageTimer()
                )
            except PodiumError as exc:
                return 400, {"error": str(exc)}
            except (KeyError, TypeError, ValueError) as exc:
                return 400, {"error": f"malformed request: {exc}"}
            if status < 400:
                self._publish(path, body)
            return status, payload

    def _publish(self, path: str, body: bytes) -> None:
        """Make an applied write visible to the pool (mutex held)."""
        if path == "/profiles":
            # Wholesale replacement: deltas buffered against the old
            # population are meaningless — new epoch, full transfers.
            self.changelog.clear()
            self.shared.epoch.value += 1
            return
        if path in ("/admin/snapshot", "/admin/compact"):
            return  # storage-only; serving state unchanged
        kind = "delta" if path == "/profiles/delta" else "config"
        version = int(self.shared.version.value) + 1
        self.changelog.append(
            ChangeEntry(version, kind, json.loads(body.decode() or "{}"))
        )
        self.shared.version.value = version

    def handle_sync(self, epoch: int, version: int) -> dict[str, Any]:
        shared_epoch = int(self.shared.epoch.value)
        shared_version = int(self.shared.version.value)
        if epoch == shared_epoch:
            entries = self.changelog.since(version, shared_version)
            if entries is not None:
                return {
                    "mode": "deltas",
                    "epoch": shared_epoch,
                    "entries": [
                        {
                            "version": e.version,
                            "kind": e.kind,
                            "payload": e.payload,
                        }
                        for e in entries
                    ],
                }
        # Full transfer: under the write mutex so no publish lands
        # between reading the counters and snapshotting the state.
        with self.mutex:
            state = self.service.replication_snapshot()
            return {
                "mode": "full",
                "epoch": int(self.shared.epoch.value),
                "version": int(self.shared.version.value),
                **state,
            }

    def cluster_document(self) -> dict[str, Any]:
        rows = self.shared.rows()
        document: dict[str, Any] = {
            "workers": self.shared.slots,
            "live_workers": len(rows),
            "reuseport": self.reuseport,
            "writer": {
                "pid": os.getpid(),
                "epoch": int(self.shared.epoch.value),
                "version": int(self.shared.version.value),
            },
            "per_worker": rows,
            "totals": aggregate_worker_rows(rows),
        }
        store = self.service.store
        document["storage"] = store.stats() if store is not None else None
        return document


class ControlServer:
    """Threaded unix-socket server answering worker RPCs in the parent."""

    def __init__(
        self, sock: socket.socket, coordinator: WriteCoordinator
    ) -> None:
        self._sock = sock
        self._coordinator = coordinator
        self._thread = threading.Thread(
            target=self._accept_loop, name="pool-control", daemon=True
        )
        self._thread.start()

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed: shutdown
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                request = recv_frame(conn)
                if request is None:
                    return
                send_frame(conn, self._coordinator.handle(request))
        except OSError:
            pass  # worker went away mid-exchange
        finally:
            conn.close()

    def close(self) -> None:
        self._sock.close()


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _SharedSlotMetrics(ServiceMetrics):
    """Per-process metrics that mirror headline counters into shared memory.

    The worker keeps full in-process metrics (so its own ``/metrics``
    still has per-route and stage detail) while the parent — and any
    worker answering ``/metrics`` — reads the cross-process distribution
    from the shared slots without an extra RPC per worker.
    """

    def __init__(self, shared: SharedPoolState, slot: int) -> None:
        super().__init__()
        self._shared = shared
        self._slot = slot

    def _bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._shared.add_counter(self._slot, name, n)

    def observe_request(
        self,
        route: str,
        status: int,
        seconds: float,
        stages: dict[str, float] | None = None,
    ) -> None:
        super().observe_request(route, status, seconds, stages)
        self._bump("requests")
        if status >= 400:
            self._bump("errors")
        if route == "POST /select":
            self._bump("selects")

    def observe_cache(self, hit: bool) -> None:
        super().observe_cache(hit)
        self._bump("cache_hits" if hit else "cache_misses")


class WorkerRuntime:
    """One worker's view of the pool: freshness, forwarding, cluster RPC.

    ``rpc`` is injectable so tests can drive the invalidation protocol
    against an in-process coordinator without forking.
    """

    def __init__(
        self,
        service: PodiumService,
        shared: SharedPoolState,
        slot: int,
        rpc: Callable[[dict[str, Any]], dict[str, Any]],
        epoch: int | None = None,
        version: int | None = None,
    ) -> None:
        self.service = service
        self.shared = shared
        self.slot = slot
        self._rpc = rpc
        self._refresh_lock = threading.Lock()
        self._count_lock = threading.Lock()
        # (epoch, version) the handed-over state corresponds to.  A
        # forked worker receives the pair the *parent* read at fork time
        # (under the write mutex) — reading the shared counters here
        # instead could skip operations published between fork and
        # construction.  ``None`` (in-process tests) reads them now.
        self.epoch = (
            int(shared.epoch.value) if epoch is None else int(epoch)
        )
        self.version = (
            int(shared.version.value) if version is None else int(version)
        )

    def _count(self, name: str, n: int = 1) -> None:
        with self._count_lock:
            self.shared.add_counter(self.slot, name, n)

    def is_stale(self) -> bool:
        return (
            self.epoch != int(self.shared.epoch.value)
            or self.version < int(self.shared.version.value)
        )

    def ensure_fresh(self) -> bool:
        """Catch up with the writer if the shared counters moved.

        Returns ``True`` when a sync ran.  Raises on RPC failure —
        callers decide whether to serve stale (reads) or fail (tests).
        """
        if not self.is_stale():
            return False
        with self._refresh_lock:
            if not self.is_stale():
                return True  # another request thread caught us up
            reply = self._rpc(
                {"op": "sync", "epoch": self.epoch, "version": self.version}
            )
            if "error" in reply:
                raise OSError(f"sync rejected: {reply['error']}")
            self._count("syncs")
            if reply.get("mode") == "full":
                self._adopt_full(reply)
            else:
                self._replay(reply.get("entries", ()))
            return True

    def _adopt_full(self, reply: dict[str, Any]) -> None:
        configs = [
            DiversificationConfiguration.from_dict(doc)
            for doc in reply.get("configurations", ())
        ]
        self.service.replace_configurations(configs)
        self.service.load_repository(
            profiles_from_dict(reply.get("profiles") or {})
        )
        self.epoch = int(reply["epoch"])
        self.version = int(reply["version"])

    def _replay(self, entries: Any) -> None:
        for entry in entries:
            kind = entry.get("kind")
            if kind == "delta":
                self.service.apply_replicated_delta(
                    parse_profile_delta(entry.get("payload") or {})
                )
            elif kind == "config":
                self.service.put_configuration(
                    DiversificationConfiguration.from_dict(
                        entry.get("payload") or {}
                    )
                )
            else:
                raise OSError(f"unknown replication entry kind {kind!r}")
            self.version = int(entry["version"])

    def forward(self, method: str, path: str, body: bytes) -> tuple[int, Any]:
        """Route a mutating request to the writer; returns (status, payload)."""
        reply = self._rpc(
            {
                "op": "write",
                "method": method,
                "path": path,
                "body": body.decode("utf-8", "replace"),
            }
        )
        if "error" in reply:
            raise OSError(f"writer error: {reply['error']}")
        self._count("forwarded_writes")
        return int(reply["status"]), reply["payload"]

    def cluster_document(self) -> dict[str, Any]:
        reply = self._rpc({"op": "cluster"})
        reply["answered_by_slot"] = self.slot
        return reply

    def note_sync_failure(self) -> None:
        self._count("sync_failures")


def unix_rpc(control_path: str, timeout: float = 60.0) -> Callable:
    """Build the one-shot-connection RPC callable for a real worker."""

    def rpc(request: dict[str, Any]) -> dict[str, Any]:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout)
            sock.connect(control_path)
            send_frame(sock, request)
            reply = recv_frame(sock)
        if reply is None:
            raise OSError("control channel closed before reply")
        return reply

    return rpc


def make_worker_app(service: PodiumService, runtime: WorkerRuntime) -> Callable:
    """Wrap the standard WSGI app with forwarding + freshness checks.

    Reads check the shared invalidation counters first and lazily catch
    up; if the writer is unreachable the worker *serves stale* (counted
    in ``sync_failures``) rather than failing reads.  Writes are
    forwarded to the writer; if it is unreachable they fail with 503 —
    never applied locally, so the single-writer durability contract
    holds.
    """
    inner = make_wsgi_app(service)

    def app(environ: dict[str, Any], start_response: Callable) -> list[bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        if (method, path) in FORWARDED_ROUTES:
            return _forward_request(
                service, runtime, method, path, environ, start_response
            )
        try:
            runtime.ensure_fresh()
        except (OSError, ValueError, KeyError) as exc:
            runtime.note_sync_failure()
            logger.warning("serving stale state; sync failed: %s", exc)
        return inner(environ, start_response)

    return app


def _forward_request(
    service: PodiumService,
    runtime: WorkerRuntime,
    method: str,
    path: str,
    environ: dict[str, Any],
    start_response: Callable,
) -> list[bytes]:
    started = time.perf_counter()
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        length = 0
    body = environ["wsgi.input"].read(length) if length else b""
    error: str | None = None
    try:
        status, payload = runtime.forward(method, path, body)
    except (OSError, ValueError, KeyError) as exc:
        status = 503
        payload = {"error": f"writer unavailable: {exc}"}
        error = str(exc)
    seconds = time.perf_counter() - started
    route = f"{method} {path}"
    service.metrics.observe_request(
        route, status, seconds, {"forward": seconds}
    )
    logger.info(request_log_record(route, status, seconds, None, error))
    blob = json.dumps(payload).encode()
    start_response(
        _STATUS_LINES.get(status, f"{status} Error"),
        [("Content-Type", _JSON), ("Content-Length", str(len(blob)))],
    )
    return [blob]


class PooledWSGIServer(ThreadingMixIn, WSGIServer):
    """Threaded WSGI server adopting a pre-bound (possibly shared) socket.

    Unlike the single-process server, in-flight request threads are
    *joined* on close (``daemon_threads = False``) so a SIGTERM drains
    cleanly instead of killing responses mid-write.
    """

    daemon_threads = False
    block_on_close = True

    def __init__(
        self, sock: socket.socket, app: Callable, handler_class=_QuietHandler
    ) -> None:
        host, port = sock.getsockname()[:2]
        super().__init__(
            (host, port), handler_class, bind_and_activate=False
        )
        self.socket.close()  # replace the placeholder socket
        self.socket = sock
        self.server_name = host
        self.server_port = port
        self.setup_environ()
        self.set_app(app)


# ---------------------------------------------------------------------------
# Listening sockets
# ---------------------------------------------------------------------------


def reuseport_available() -> bool:
    """Whether per-worker ``SO_REUSEPORT`` listeners can be used here."""
    return (
        hasattr(socket, "SO_REUSEPORT")
        and os.environ.get("REPRO_NO_REUSEPORT") != "1"
    )


def _new_tcp_socket(reuseport: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if reuseport:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    return sock


def create_pool_listener(
    host: str, port: int
) -> tuple[socket.socket, bool]:
    """Reserve the pool's address; returns ``(socket, reuseport)``.

    With ``SO_REUSEPORT`` the parent binds but **never listens** — a
    bound-only socket receives no connections, it merely pins the
    (possibly ephemeral) port so each worker can bind its own listening
    socket to the same address and let the kernel balance accepts.
    Without it, the parent binds *and* listens one socket that all
    workers inherit and share.
    """
    reuseport = reuseport_available()
    sock = _new_tcp_socket(reuseport)
    try:
        sock.bind((host, port))
    except OSError:
        sock.close()
        raise
    if not reuseport:
        sock.listen(128)
    return sock, reuseport


def worker_listener(
    parent_sock: socket.socket, reuseport: bool
) -> socket.socket:
    """The socket a worker actually accepts on (call *after* fork)."""
    if reuseport:
        host, port = parent_sock.getsockname()[:2]
        sock = _new_tcp_socket(reuseport=True)
        sock.bind((host, port))
        sock.listen(128)
    else:
        sock = parent_sock
    # Non-blocking accept: with a shared listener, several workers can
    # wake for one connection; the losers' accept must not block the
    # serve loop (socketserver treats BlockingIOError as "no request").
    sock.setblocking(False)
    return sock


# ---------------------------------------------------------------------------
# Worker process main
# ---------------------------------------------------------------------------


def _set_pdeathsig() -> None:
    """Best-effort ``PR_SET_PDEATHSIG(SIGTERM)`` (Linux only)."""
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGTERM, 0, 0, 0)  # PR_SET_PDEATHSIG == 1
    except (OSError, AttributeError):
        pass


def _watch_lifeline(fd: int, httpd: WSGIServer, grace: float = 10.0) -> None:
    """Exit when the parent's pipe end closes (survives parent SIGKILL)."""
    try:
        os.read(fd, 1)  # blocks until EOF; the parent never writes
    except OSError:
        pass
    threading.Thread(target=httpd.shutdown, daemon=True).start()
    time.sleep(grace)
    os._exit(1)


def run_worker(
    service: PodiumService,
    shared: SharedPoolState,
    slot: int,
    parent_sock: socket.socket,
    reuseport: bool,
    control_path: str,
    lifeline_read_fd: int,
    ready_write_fd: int,
    baseline_epoch: int,
    baseline_version: int,
) -> None:
    """Worker process body; never returns (exits via ``os._exit``).

    Runs in the forked child: releases inherited store descriptors,
    re-arms locks, binds/adopts its listening socket, signals readiness
    to the parent, then serves until SIGTERM/SIGINT or lifeline EOF —
    draining in-flight requests before exiting.
    """
    exit_code = 1
    try:
        _set_pdeathsig()
        store = service.store
        if store is not None:
            # The parent owns the WAL; the child only had it by fork.
            store.release_after_fork()
            service.store = None
        service.reset_concurrency_after_fork()
        service.metrics = _SharedSlotMetrics(shared, slot)
        runtime = WorkerRuntime(
            service,
            shared,
            slot,
            unix_rpc(control_path),
            epoch=baseline_epoch,
            version=baseline_version,
        )
        service.cluster_stats_provider = runtime.cluster_document

        listener = worker_listener(parent_sock, reuseport)
        httpd = PooledWSGIServer(listener, make_worker_app(service, runtime))

        def _graceful(signum: int, frame: Any) -> None:
            # shutdown() blocks until the serve loop stops; never call
            # it from the loop's own thread (signal handlers run there).
            threading.Thread(target=httpd.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
        threading.Thread(
            target=_watch_lifeline,
            args=(lifeline_read_fd, httpd),
            daemon=True,
        ).start()

        shared.set_pid(slot, os.getpid())
        os.write(ready_write_fd, b"r")
        os.close(ready_write_fd)

        httpd.serve_forever(poll_interval=0.1)
        httpd.server_close()  # joins in-flight request threads (drain)
        exit_code = 0
    except Exception:  # noqa: BLE001 — last-resort worker log
        logger.exception("worker slot %d crashed", slot)
    finally:
        # Skip interpreter finalization: atexit hooks and GC finalizers
        # belong to the parent's world (store handles, temp dirs).
        os._exit(exit_code)


# ---------------------------------------------------------------------------
# Parent: pool supervisor
# ---------------------------------------------------------------------------


@dataclass
class _Child:
    pid: int
    lifeline_write_fd: int
    spawned_at: float = field(default_factory=time.monotonic)


class WorkerPool:
    """Fork, supervise, and gracefully stop the serving workers."""

    def __init__(
        self,
        service: PodiumService,
        host: str = "127.0.0.1",
        port: int = 8808,
        workers: int = 2,
        respawn_limit: int = 16,
        shutdown_grace: float = 15.0,
    ) -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least one worker")
        self.service = service
        self.workers = workers
        self.respawn_limit = respawn_limit
        self.shutdown_grace = shutdown_grace
        self._requested = (host, port)
        self._children: dict[int, _Child] = {}
        self._respawns = 0
        self._stop = threading.Event()
        self.host = host
        self.port = port
        self.reuseport = False
        self._sock: socket.socket | None = None
        self._control_dir: str | None = None
        self._control: ControlServer | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        host, port = self._requested
        warmed = self.service.warm_artifacts()
        if warmed:
            logger.info("pre-fork warm built artifacts for %s", warmed)

        self._sock, self.reuseport = create_pool_listener(host, port)
        self.host, self.port = self._sock.getsockname()[:2]

        self.shared = SharedPoolState(self.workers)
        self.changelog = ChangeLog()
        self.coordinator = WriteCoordinator(
            self.service, self.shared, self.changelog, self.reuseport
        )
        self._control_dir = tempfile.mkdtemp(prefix="repro-pool-")
        self.control_path = os.path.join(self._control_dir, "control.sock")
        control_sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        control_sock.bind(self.control_path)
        control_sock.listen(64)
        self._control_sock = control_sock

        ready_fds = [self._spawn(slot) for slot in range(self.workers)]
        self._await_ready(ready_fds)
        # Accept worker RPCs only once every worker is up: nothing can
        # connect earlier, and the fork loop stays single-threaded.
        self._control = ControlServer(control_sock, self.coordinator)

    def _spawn(self, slot: int) -> int:
        """Fork one worker; returns the parent's readiness-pipe read fd."""
        self.shared.reset_slot(slot)
        lifeline_r, lifeline_w = os.pipe()
        ready_r, ready_w = os.pipe()
        # Descriptors of *other* children this child must not inherit
        # open — a held sibling lifeline would mask the parent's death.
        sibling_fds = [
            c.lifeline_write_fd for c in self._children.values()
        ]
        # Captured pre-fork: on respawn the caller holds the write
        # mutex, so these are exactly the state the child inherits.
        baseline_epoch = int(self.shared.epoch.value)
        baseline_version = int(self.shared.version.value)
        pid = os.fork()
        if pid == 0:
            try:
                os.close(lifeline_w)
                os.close(ready_r)
                for fd in sibling_fds:
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                try:
                    self._control_sock.close()
                except OSError:
                    pass
                run_worker(
                    self.service,
                    self.shared,
                    slot,
                    self._sock,  # type: ignore[arg-type]
                    self.reuseport,
                    self.control_path,
                    lifeline_r,
                    ready_w,
                    baseline_epoch,
                    baseline_version,
                )
            finally:
                os._exit(1)  # run_worker never returns; belt and braces
        os.close(lifeline_r)
        os.close(ready_w)
        self._children[slot] = _Child(pid, lifeline_w)
        return ready_r

    def _await_ready(self, ready_fds: list[int], timeout: float = 60.0) -> None:
        deadline = time.monotonic() + timeout
        pending = list(ready_fds)
        try:
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"{len(pending)} worker(s) not ready after "
                        f"{timeout:.0f}s"
                    )
                readable, _, _ = _select.select(pending, [], [], remaining)
                for fd in readable:
                    if os.read(fd, 1) == b"":
                        raise RuntimeError("worker died before readiness")
                    pending.remove(fd)
        finally:
            for fd in ready_fds:
                try:
                    os.close(fd)
                except OSError:
                    pass

    def run(self) -> dict[str, Any]:
        """Supervise until SIGTERM/SIGINT; then drain, snapshot, report."""
        previous = {
            sig: signal.signal(sig, lambda *_: self._stop.set())
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            while not self._stop.is_set():
                self._reap_and_respawn()
                self._stop.wait(0.2)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        return self.shutdown()

    def _reap_and_respawn(self) -> None:
        for slot, child in list(self._children.items()):
            try:
                pid, status = os.waitpid(child.pid, os.WNOHANG)
            except ChildProcessError:
                pid, status = child.pid, -1
            if pid == 0:
                continue
            logger.warning(
                "worker slot %d (pid %d) exited with status %s",
                slot,
                child.pid,
                status,
            )
            self._close_lifeline(child)
            del self._children[slot]
            self.shared.reset_slot(slot)
            if self._respawns >= self.respawn_limit:
                logger.error(
                    "respawn limit (%d) reached; slot %d stays down",
                    self.respawn_limit,
                    slot,
                )
                continue
            self._respawns += 1
            # Fork under the write locks: no request or write can be
            # mid-mutation, so the child clones a consistent snapshot
            # (its own lock objects are re-armed in run_worker).
            with self.coordinator.mutex:
                with self.service._lock.write():  # noqa: SLF001
                    ready_fd = self._spawn(slot)
            self._await_ready([ready_fd])

    @staticmethod
    def _close_lifeline(child: _Child) -> None:
        try:
            os.close(child.lifeline_write_fd)
        except OSError:
            pass

    def shutdown(self) -> dict[str, Any]:
        """SIGTERM + drain every worker, then write one parent snapshot."""
        for child in self._children.values():
            try:
                os.kill(child.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + self.shutdown_grace
        while self._children and time.monotonic() < deadline:
            for slot, child in list(self._children.items()):
                try:
                    pid, _ = os.waitpid(child.pid, os.WNOHANG)
                except ChildProcessError:
                    pid = child.pid
                if pid:
                    self._close_lifeline(child)
                    del self._children[slot]
            if self._children:
                time.sleep(0.05)
        for slot, child in list(self._children.items()):
            logger.error(
                "worker slot %d did not drain in %.0fs; killing",
                slot,
                self.shutdown_grace,
            )
            try:
                os.kill(child.pid, signal.SIGKILL)
                os.waitpid(child.pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
            self._close_lifeline(child)
            del self._children[slot]

        if self._control is not None:
            self._control.close()
        if self._sock is not None:
            self._sock.close()
        if self._control_dir is not None:
            try:
                os.unlink(self.control_path)
                os.rmdir(self._control_dir)
            except OSError:
                pass

        summary = self.service.metrics_snapshot()
        summary["cluster"] = self.coordinator.cluster_document()
        if self.service.store is not None:
            # One snapshot, from the one process that owns the store —
            # the next boot replays an empty WAL suffix.
            self.service.snapshot_store()
            summary["storage"] = self.service.store.stats()
        return summary


def serve_pool(
    service: PodiumService,
    host: str = "127.0.0.1",
    port: int = 8808,
    workers: int = 2,
) -> dict[str, Any]:
    """Run the pre-fork pool until interrupted; return final metrics."""
    pool = WorkerPool(service, host=host, port=port, workers=workers)
    pool.start()
    mode = "SO_REUSEPORT" if pool.reuseport else "shared accept"
    print(
        f"Podium service listening on http://{pool.host}:{pool.port} "
        f"({workers} workers, {mode}, writer pid {os.getpid()}; "
        f"request stats at /metrics)",
        flush=True,
    )
    summary = pool.run()
    print("shutting down")
    if service.store is not None:
        print("snapshot written")
    return summary
