"""Prototype service: configurations, selection API, visualization."""

from .app import PodiumService, make_wsgi_app, parse_feedback, serve
from .config import (
    ConfigurationStore,
    DiversificationConfiguration,
    default_configuration,
)
from .viz import explanation_payload, render_html, render_text

__all__ = [
    "PodiumService",
    "make_wsgi_app",
    "parse_feedback",
    "serve",
    "ConfigurationStore",
    "DiversificationConfiguration",
    "default_configuration",
    "explanation_payload",
    "render_html",
    "render_text",
]
