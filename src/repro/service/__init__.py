"""Production service: configurations, cached selection API, metrics."""

from .app import (
    PodiumService,
    ThreadingWSGIServer,
    make_http_server,
    make_wsgi_app,
    parse_constraints,
    parse_feedback,
    parse_profile_delta,
    serve,
)
from .concurrency import ReadWriteLock
from .config import (
    ConfigurationStore,
    DiversificationConfiguration,
    default_configuration,
)
from .replication import WalFollower
from .metrics import (
    WORKER_COUNTER_FIELDS,
    ServiceMetrics,
    StageTimer,
    aggregate_worker_rows,
    request_log_record,
)
from .workers import (
    ChangeLog,
    SharedPoolState,
    WorkerPool,
    WorkerRuntime,
    WriteCoordinator,
    make_worker_app,
    serve_pool,
)
from .viz import (
    explanation_payload,
    render_html,
    render_metrics_text,
    render_text,
)

__all__ = [
    "PodiumService",
    "ThreadingWSGIServer",
    "make_http_server",
    "make_wsgi_app",
    "parse_constraints",
    "parse_feedback",
    "parse_profile_delta",
    "serve",
    "ReadWriteLock",
    "ConfigurationStore",
    "DiversificationConfiguration",
    "default_configuration",
    "ServiceMetrics",
    "StageTimer",
    "WalFollower",
    "WORKER_COUNTER_FIELDS",
    "aggregate_worker_rows",
    "request_log_record",
    "ChangeLog",
    "SharedPoolState",
    "WorkerPool",
    "WorkerRuntime",
    "WriteCoordinator",
    "make_worker_app",
    "serve_pool",
    "explanation_payload",
    "render_html",
    "render_metrics_text",
    "render_text",
]
