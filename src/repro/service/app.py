"""The Podium prototype service (paper §7, Fig. 1).

The original system is a Flask app; offline we provide the same
architecture on the standard library: a :class:`PodiumService` facade
wiring the Grouping Module (offline bucketing + weights per
configuration), the Selection Module (greedy / customized selection) and
the Visualization module (explanation payloads), plus a plain WSGI
adapter exposing it over HTTP.

Routes
------
``GET  /health``          — liveness + corpus stats
``GET  /configurations``  — list stored configurations
``POST /configurations``  — add a configuration (JSON body)
``POST /profiles``        — load a profile document (JSON body)
``GET  /groups``          — group explanations for ``?configuration=``
``POST /select``          — run a selection request (JSON body)
``GET  /explain.html``    — the Fig. 2 explanation page as static HTML
                            (``?configuration=`` and ``&budget=`` optional)

A selection request body::

    {"configuration": "default", "budget": 5,
     "feedback": {"must_have": [["avgRating Mexican", "high"]],
                  "must_not": [], "priority": [], "standard": null},
     "distribution_properties": ["avgRating Mexican"]}
"""

from __future__ import annotations

import json
from typing import Any, Callable
from wsgiref.simple_server import make_server

from ..core.customization import CustomizationFeedback, custom_select
from ..core.errors import PodiumError, ServiceError
from ..core.explanations import explain_selection
from ..core.greedy import greedy_select
from ..core.groups import GroupKey, GroupSet, build_simple_groups
from ..core.instance import DiversificationInstance, build_instance
from ..core.profiles import UserRepository
from .config import (
    ConfigurationStore,
    DiversificationConfiguration,
    default_configuration,
)
from .viz import explanation_payload


def _parse_group_keys(pairs: Any, field: str) -> frozenset[GroupKey]:
    if pairs is None:
        return frozenset()
    try:
        return frozenset(
            GroupKey(str(prop), str(bucket)) for prop, bucket in pairs
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(
            f"feedback field {field!r} must be a list of "
            f"[property, bucket] pairs: {exc}"
        ) from exc


def parse_feedback(data: dict[str, Any] | None) -> CustomizationFeedback:
    """Parse the JSON feedback object into a :class:`CustomizationFeedback`."""
    if not data:
        return CustomizationFeedback.none()
    standard = data.get("standard")
    return CustomizationFeedback(
        must_have=_parse_group_keys(data.get("must_have"), "must_have"),
        must_not=_parse_group_keys(data.get("must_not"), "must_not"),
        priority=_parse_group_keys(data.get("priority"), "priority"),
        standard=(
            _parse_group_keys(standard, "standard")
            if standard is not None
            else None
        ),
    )


class PodiumService:
    """Facade over the grouping, selection and visualization modules."""

    def __init__(
        self,
        repository: UserRepository | None = None,
        configurations: ConfigurationStore | None = None,
    ) -> None:
        self._repository = repository
        self._configurations = configurations or ConfigurationStore(
            (default_configuration(),)
        )
        self._group_cache: dict[str, GroupSet] = {}

    # -- repository management -------------------------------------------

    @property
    def repository(self) -> UserRepository:
        if self._repository is None:
            raise ServiceError("no profiles loaded")
        return self._repository

    def load_repository(self, repository: UserRepository) -> None:
        """Swap the user repository; invalidates all cached groupings."""
        self._repository = repository
        self._group_cache.clear()

    @property
    def configurations(self) -> ConfigurationStore:
        return self._configurations

    # -- grouping module (offline step of Fig. 1) -------------------------

    def groups_for(self, config_name: str) -> GroupSet:
        """Bucketing + group materialization, cached per configuration."""
        if config_name not in self._group_cache:
            config = self._configurations.get(config_name)
            repository = self.repository
            if config.property_prefixes is not None:
                repository = UserRepository(
                    profile.restricted_to(
                        label
                        for label in profile.properties
                        if config.matches_property(label)
                    )
                    for profile in repository
                )
            self._group_cache[config_name] = build_simple_groups(
                repository, config.grouping_config()
            )
        return self._group_cache[config_name]

    def instance_for(
        self, config_name: str, budget: int | None = None
    ) -> DiversificationInstance:
        """Resolve a configuration into a diversification instance."""
        config = self._configurations.get(config_name)
        weight, coverage = config.schemes()
        return build_instance(
            self.repository,
            budget or config.budget,
            groups=self.groups_for(config_name),
            weight_scheme=weight,
            coverage_scheme=coverage,
        )

    # -- selection module --------------------------------------------------

    def select(
        self,
        config_name: str = "default",
        budget: int | None = None,
        feedback: CustomizationFeedback | None = None,
        distribution_properties: tuple[str, ...] = (),
        explain: bool = True,
    ) -> dict[str, Any]:
        """Run a selection request and return the response document."""
        instance = self.instance_for(config_name, budget)
        if feedback is None or feedback == CustomizationFeedback.none():
            result = greedy_select(self.repository, instance, budget)
            response: dict[str, Any] = {
                "configuration": config_name,
                "selected": list(result.selected),
                "score": float(result.score),
            }
        else:
            custom = custom_select(
                self.repository, instance, feedback, budget
            )
            result = custom.result
            response = {
                "configuration": config_name,
                "selected": list(custom.selected),
                "score": float(result.score),
                "priority_score": float(custom.priority_score),
                "standard_score": float(custom.standard_score),
                "refined_pool_size": custom.refined_pool_size,
            }
        if explain:
            explanation = explain_selection(
                result, distribution_properties=distribution_properties
            )
            response["explanation"] = explanation_payload(explanation)
        return response

    def explanation_page(
        self, config_name: str = "default", budget: int | None = None
    ) -> str:
        """Render the Fig. 2 explanation page for a fresh selection."""
        from .viz import render_html

        instance = self.instance_for(config_name, budget)
        result = greedy_select(self.repository, instance, budget)
        # Show distributions for the three heaviest properties.
        heaviest: list[str] = []
        for key in sorted(
            instance.groups.keys, key=lambda k: (-float(instance.wei[k]), str(k))
        ):
            if key.property_label not in heaviest:
                heaviest.append(key.property_label)
            if len(heaviest) == 3:
                break
        explanation = explain_selection(
            result, distribution_properties=tuple(heaviest)
        )
        return render_html(
            result,
            explanation,
            title=f"Podium — {config_name} selection",
        )

    def group_listing(self, config_name: str = "default") -> list[dict[str, Any]]:
        """Group explanations ordered by decreasing weight (Fig. 2 list)."""
        instance = self.instance_for(config_name)
        ordered = sorted(
            instance.groups,
            key=lambda g: (-float(instance.wei[g.key]), str(g.key)),
        )
        return [
            {
                "property": g.key.property_label,
                "bucket": g.key.bucket_label,
                "label": g.label,
                "weight": float(instance.wei[g.key]),
                "coverage": instance.cov[g.key],
                "size": g.size,
            }
            for g in ordered
        ]


# ---------------------------------------------------------------------------
# WSGI adapter
# ---------------------------------------------------------------------------

_JSON = "application/json"


def _response(
    start_response: Callable, status: str, payload: dict[str, Any] | list
) -> list[bytes]:
    body = json.dumps(payload).encode()
    start_response(
        status,
        [("Content-Type", _JSON), ("Content-Length", str(len(body)))],
    )
    return [body]


def _read_json(environ: dict[str, Any]) -> dict[str, Any]:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        length = 0
    raw = environ["wsgi.input"].read(length) if length else b"{}"
    try:
        document = json.loads(raw.decode() or "{}")
    except json.JSONDecodeError as exc:
        raise ServiceError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ServiceError("request body must be a JSON object")
    return document


def _query(environ: dict[str, Any]) -> dict[str, str]:
    from urllib.parse import parse_qsl

    return dict(parse_qsl(environ.get("QUERY_STRING", "")))


def make_wsgi_app(service: PodiumService) -> Callable:
    """Build the WSGI callable exposing ``service`` over HTTP."""

    def app(environ: dict[str, Any], start_response: Callable) -> list[bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        try:
            if method == "GET" and path == "/health":
                users = (
                    len(service.repository)
                    if service._repository is not None
                    else 0
                )
                return _response(
                    start_response,
                    "200 OK",
                    {
                        "status": "ok",
                        "users": users,
                        "configurations": service.configurations.names(),
                    },
                )
            if method == "GET" and path == "/configurations":
                return _response(
                    start_response,
                    "200 OK",
                    [
                        service.configurations.get(name).to_dict()
                        for name in service.configurations.names()
                    ],
                )
            if method == "POST" and path == "/configurations":
                config = DiversificationConfiguration.from_dict(
                    _read_json(environ)
                )
                service.configurations.put(config)
                return _response(
                    start_response, "201 Created", config.to_dict()
                )
            if method == "POST" and path == "/profiles":
                from ..datasets.io import profiles_from_dict

                service.load_repository(
                    profiles_from_dict(_read_json(environ))
                )
                return _response(
                    start_response,
                    "200 OK",
                    {"loaded_users": len(service.repository)},
                )
            if method == "GET" and path == "/explain.html":
                query = _query(environ)
                html = service.explanation_page(
                    query.get("configuration", "default"),
                    int(query["budget"]) if "budget" in query else None,
                ).encode()
                start_response(
                    "200 OK",
                    [
                        ("Content-Type", "text/html; charset=utf-8"),
                        ("Content-Length", str(len(html))),
                    ],
                )
                return [html]
            if method == "GET" and path == "/groups":
                name = _query(environ).get("configuration", "default")
                return _response(
                    start_response, "200 OK", service.group_listing(name)
                )
            if method == "POST" and path == "/select":
                body = _read_json(environ)
                response = service.select(
                    config_name=str(body.get("configuration", "default")),
                    budget=(
                        int(body["budget"]) if "budget" in body else None
                    ),
                    feedback=parse_feedback(body.get("feedback")),
                    distribution_properties=tuple(
                        body.get("distribution_properties", ())
                    ),
                    explain=bool(body.get("explain", True)),
                )
                return _response(start_response, "200 OK", response)
            return _response(
                start_response,
                "404 Not Found",
                {"error": f"no route {method} {path}"},
            )
        except PodiumError as exc:
            return _response(
                start_response, "400 Bad Request", {"error": str(exc)}
            )

    return app


def serve(service: PodiumService, host: str = "127.0.0.1", port: int = 8808):
    """Run the service with wsgiref (development server, Fig. 1 demo)."""
    httpd = make_server(host, port, make_wsgi_app(service))
    print(f"Podium service listening on http://{host}:{port}")
    httpd.serve_forever()
