"""The Podium production service (paper §7, Fig. 1).

The original system is a Flask app; offline we provide the same
architecture on the standard library: a :class:`PodiumService` facade
wiring the Grouping Module (offline bucketing + weights per
configuration), the Selection Module (greedy / customized selection) and
the Visualization module (explanation payloads), plus a plain WSGI
adapter exposing it over HTTP.

Unlike the prototype, the serving path is built for sustained traffic:

* **Artifact cache** — every configuration's ``(GroupSet,
  DiversificationInstance, InstanceIndex)`` triple is built once and
  reused across requests, keyed on the repository generation, the
  configuration object and ``GroupSet.version``; repeated ``/select``
  calls against an unchanged repository perform zero instance rebuilds.
* **Vectorized selection** — plain selections run
  :func:`~repro.core.greedy.select_from_index` over the cached sparse
  index, and customized selections use the matrix customization path
  (CSR-mask refinement + integer-rescaled derived index).
* **Incremental updates** — ``POST /profiles/delta`` applies a
  :class:`~repro.core.updates.ProfileDelta` through the §9 incremental
  machinery (frozen buckets, re-assigned members, re-materialized
  weights) instead of a full reload + regroup.
* **Concurrency** — requests are served by a
  :class:`ThreadingWSGIServer`; a writer-preferring
  :class:`~repro.service.concurrency.ReadWriteLock` lets selections run
  concurrently while repository/cache swaps are exclusive, so in-flight
  requests always see a consistent snapshot.
* **Observability** — per-request structured JSON logs and a
  ``GET /metrics`` endpoint (request/error counts per route, cache
  hit/miss counters, per-stage timings).

Routes
------
``GET  /health``          — liveness + corpus stats
``GET  /metrics``         — request metrics, cache counters, timings
``GET  /configurations``  — list stored configurations
``POST /configurations``  — add a configuration (JSON body)
``POST /profiles``        — load a profile document (JSON body)
``POST /profiles/delta``  — apply an incremental profile delta
``GET  /groups``          — group explanations for ``?configuration=``
``POST /select``          — run a selection request (JSON body)
``GET  /explain.html``    — the Fig. 2 explanation page as static HTML
                            (``?configuration=`` and ``&budget=`` optional)

A selection request body::

    {"configuration": "default", "budget": 5,
     "feedback": {"must_have": [["avgRating Mexican", "high"]],
                  "must_not": [], "priority": [], "standard": null},
     "distribution_properties": ["avgRating Mexican"]}

A constrained selection body (mutually exclusive with ``feedback`` and
``maintained``; floors/ceilings are hard per-group bounds, ``clusters``
switches to cluster-budgeted mode)::

    {"configuration": "default", "budget": 12,
     "constraints": {"floors": [["gender", "f", 5]],
                     "ceilings": [["region", "north", 3]]}}

A profile delta body::

    {"upserts": {"Alice": {"avgRating Mexican": 0.9}},
     "removals": ["Bob"]}
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass, field
from socketserver import ThreadingMixIn
from typing import Any, Callable
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from ..constraints import (
    ClusterSpec,
    ConstraintSpec,
    constrained_select,
    partition_rows,
)
from ..core.customization import CustomizationFeedback, custom_select
from ..core.errors import (
    InfeasibleConstraintError,
    InvalidBudgetError,
    PodiumError,
    ServiceError,
)
from ..core.explanations import explain_selection
from ..core.greedy import SelectionResult, greedy_select, select_from_index
from ..core.groups import GroupKey, GroupSet, build_simple_groups
from ..core.index import InstanceIndex, attach_index, instance_index
from ..core.instance import DiversificationInstance
from ..core.profiles import UserProfile, UserRepository
from ..core.updates import (
    ProfileDelta,
    apply_delta_to_repository,
    reassign_groups,
    rebuild_instance,
)
from ..core.persistence import index_source_path
from ..storage import (
    DurableRepositoryStore,
    SnapshotArtifact,
    StreamingMaintainer,
)
from .concurrency import ReadWriteLock
from .config import (
    ConfigurationStore,
    DiversificationConfiguration,
    default_configuration,
)
from .metrics import ServiceMetrics, StageTimer, request_log_record
from .viz import explanation_payload

logger = logging.getLogger("repro.service")


def _parse_group_keys(pairs: Any, field_name: str) -> frozenset[GroupKey]:
    if pairs is None:
        return frozenset()
    try:
        return frozenset(
            GroupKey(str(prop), str(bucket)) for prop, bucket in pairs
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(
            f"feedback field {field_name!r} must be a list of "
            f"[property, bucket] pairs: {exc}"
        ) from exc


def parse_feedback(data: dict[str, Any] | None) -> CustomizationFeedback:
    """Parse the JSON feedback object into a :class:`CustomizationFeedback`."""
    if not data:
        return CustomizationFeedback.none()
    standard = data.get("standard")
    return CustomizationFeedback(
        must_have=_parse_group_keys(data.get("must_have"), "must_have"),
        must_not=_parse_group_keys(data.get("must_not"), "must_not"),
        priority=_parse_group_keys(data.get("priority"), "priority"),
        standard=(
            _parse_group_keys(standard, "standard")
            if standard is not None
            else None
        ),
    )


def parse_constraints(data: Any) -> ConstraintSpec | None:
    """Parse the ``/select`` body's ``constraints`` block at the JSON edge.

    ``None``/absent means unconstrained.  Malformed blocks raise
    :class:`~repro.core.errors.InvalidConstraintError`, which the WSGI
    boundary maps to a 400 like every other :class:`PodiumError` — a
    bad constraint never reaches the solver.
    """
    if data is None:
        return None
    spec = ConstraintSpec.from_dict(data)
    return None if spec.is_empty else spec


def parse_profile_delta(document: dict[str, Any]) -> ProfileDelta:
    """Parse the ``/profiles/delta`` JSON body into a :class:`ProfileDelta`."""
    upserts_raw = document.get("upserts") or {}
    if not isinstance(upserts_raw, dict):
        raise ServiceError(
            "delta field 'upserts' must map user ids to {property: score}"
        )
    upserts = []
    for user_id, scores in upserts_raw.items():
        if not isinstance(scores, dict):
            raise ServiceError(
                f"upsert for user {user_id!r} must be a "
                f"{{property: score}} object"
            )
        upserts.append(UserProfile(str(user_id), scores))
    removals_raw = document.get("removals") or []
    if not isinstance(removals_raw, list):
        raise ServiceError("delta field 'removals' must be a list of user ids")
    return ProfileDelta(
        upserts=tuple(upserts),
        removals=frozenset(str(u) for u in removals_raw),
    )


@dataclass
class _ConfigArtifacts:
    """Cached serving artifacts of one configuration.

    An entry is valid while the repository generation it was built at is
    current, the configuration object is still the stored one (re-putting
    a configuration replaces the object) and the group set has not been
    mutated in place (``GroupSet.version``).  ``instances`` maps the
    effective budget to its built instance; the instance's sparse index
    is pre-warmed at build time and cached on the instance itself.
    """

    config: DiversificationConfiguration
    generation: int
    groups: GroupSet
    groups_version: int
    instances: dict[int, DiversificationInstance] = field(
        default_factory=dict
    )
    #: Cluster partitions memoized per (budget, ClusterSpec) — the spec
    #: object is hashable by value, so two requests declaring the same
    #: clustering share one partition computation.  Entry lifetime is
    #: the cache entry's own (generation / config / groups-version).
    partitions: dict[tuple[int, ClusterSpec], list] = field(
        default_factory=dict
    )


class PodiumService:
    """Facade over the grouping, selection and visualization modules.

    Thread-safe: public entry points take a reader–writer lock — reads
    (selections, listings, metrics) run concurrently, mutations
    (profile loads, deltas, configuration changes) are exclusive and
    invalidate or refresh the artifact cache.
    """

    def __init__(
        self,
        repository: UserRepository | None = None,
        configurations: ConfigurationStore | None = None,
        metrics: ServiceMetrics | None = None,
        store: DurableRepositoryStore | None = None,
        swap_margin: float = 0.1,
        staleness_fraction: float = 0.25,
    ) -> None:
        self._repository = repository
        self._configurations = configurations or ConfigurationStore(
            (default_configuration(),)
        )
        self._cache: dict[str, _ConfigArtifacts] = {}
        self._generation = 0
        self._lock = ReadWriteLock()
        # Builds happen under the shared (read) lock: double-checked
        # against this mutex so concurrent cold starts build once.
        self._build_lock = threading.Lock()
        self.metrics = metrics or ServiceMetrics()
        self.store = store
        self._swap_margin = swap_margin
        self._staleness_fraction = staleness_fraction
        # Multi-process serving: a worker process sets this to a callable
        # returning the pool-wide counter document, which
        # :meth:`metrics_snapshot` merges into ``GET /metrics`` so the
        # route reports the whole pool, not one worker's slice.
        self.cluster_stats_provider: Callable[[], dict[str, Any]] | None = (
            None
        )
        # WAL-shipping standby: the CLI attaches a WalFollower and flips
        # read_only; write routes answer 503 until POST /admin/promote.
        self.read_only = False
        self.follower: Any | None = None
        # Streaming maintainers keyed by (configuration, budget); built
        # lazily on the first maintained selection, repaired on every
        # ingested delta instead of re-solving from scratch.
        self._maintainers: dict[tuple[str, int], StreamingMaintainer] = {}
        if store is not None and repository is None and len(store.repository):
            # Recovered boot: the store already replayed snapshot + WAL.
            self._repository = store.repository

    # -- repository management -------------------------------------------

    @property
    def repository(self) -> UserRepository:
        if self._repository is None:
            raise ServiceError("no profiles loaded")
        return self._repository

    def load_repository(
        self, repository: UserRepository, base_seq: int | None = None
    ) -> None:
        """Swap the user repository; invalidates all cached artifacts.

        With a durable store attached this starts a new epoch: the
        wholesale replacement is snapshotted immediately and the WAL is
        truncated (its deltas describe the discarded population).
        ``base_seq`` aligns the store's sequence numbering with a
        replication primary's WAL position during follower bootstrap.
        """
        with self._lock.write():
            self._repository = repository
            self._generation += 1
            self._cache.clear()
            self._maintainers.clear()
            if self.store is not None:
                self.store.reset(repository, base_seq=base_seq)

    def restore_artifacts(self) -> list[str]:
        """Seed the artifact cache from the store's recovered snapshot.

        Called once at boot, *after* configurations are registered: each
        recovered (config, groups, index) triple is adopted only when its
        stored configuration dict matches the currently registered one —
        a changed configuration must rebuild from scratch, not serve
        stale buckets.  Restoring the frozen group sets is what makes a
        restarted process answer ``/select`` identically: a fresh
        regroup could legally draw different bucket boundaries than the
        incremental reassignment path did before the restart.
        """
        if self.store is None:
            return []
        restored: list[str] = []
        with self._lock.write():
            for name, artifact in self.store.artifacts.items():
                if name not in self._configurations:
                    continue
                config = self._configurations.get(name)
                if artifact.config != config.to_dict():
                    continue
                started = time.perf_counter()
                entry = _ConfigArtifacts(
                    config=config,
                    generation=self._generation,
                    groups=artifact.groups,
                    groups_version=artifact.groups.version,
                )
                if artifact.index is not None:
                    weight, coverage = config.schemes()
                    instance = rebuild_instance(
                        artifact.groups,
                        self._repository_or_raise(),
                        config.budget,
                        weight,
                        coverage,
                    )
                    attach_index(instance, artifact.index)
                    entry.instances[config.budget] = instance
                self._cache[name] = entry
                restored.append(name)
                # Adoption of a checkpoint artifact stands in for the
                # grouping+instance build a cold boot would pay; recorded
                # as its own stage so /metrics shows open-vs-build cost
                # (stages.artifact_open next to stages.grouping /
                # stages.instance).  Mapped opens (open_index_npz) are
                # split from eager heap loads.
                stage = (
                    "artifact_open"
                    if index_source_path(artifact.index) is not None
                    else "artifact_open_eager"
                )
                self.metrics.observe_stage(
                    stage, time.perf_counter() - started
                )
        return sorted(restored)

    def apply_profile_delta(self, delta: ProfileDelta) -> dict[str, Any]:
        """Apply a batch of upserts/removals incrementally (paper §9).

        Instead of a full reload + regroup, cached group sets are kept
        with frozen bucket boundaries: touched users are re-assigned to
        the existing buckets and weights/coverage re-materialized, so the
        expensive offline bucketing step is skipped for every cached
        configuration.
        """
        started = time.perf_counter()
        wal_seconds = 0.0
        with self._lock.write():
            if self._repository is None:
                raise ServiceError("no profiles loaded")
            if self.store is not None:
                # Durability before acknowledgment: the delta reaches the
                # write-ahead log (validated, fsynced) before any
                # in-memory state changes; a crash from here on replays
                # it on the next boot.
                wal_started = time.perf_counter()
                seq = self.store.log_delta(delta)
                wal_seconds = time.perf_counter() - wal_started
            response = self._apply_delta_locked(delta)
            if self.store is not None:
                self.store.adopt(
                    self._repository, self._export_artifacts()
                )
                response["wal_seq"] = seq
                response["durable"] = True
            self.metrics.observe_ingest(
                len(delta.upserts),
                len(delta.removals),
                time.perf_counter() - started,
                wal_seconds,
            )
            return response

    def apply_replicated_delta(self, delta: ProfileDelta) -> dict[str, Any]:
        """Apply a delta that another process already made durable.

        The follower path of multi-process serving: the writer process
        WAL-appended and applied the delta, then published it on the
        pool's replication ring; each worker replays it here through the
        *same* incremental machinery (:meth:`_apply_delta_locked`), so
        every process converges to byte-identical serving state without
        touching the store.
        """
        started = time.perf_counter()
        with self._lock.write():
            if self._repository is None:
                raise ServiceError("no profiles loaded")
            response = self._apply_delta_locked(delta)
            self.metrics.observe_ingest(
                len(delta.upserts),
                len(delta.removals),
                time.perf_counter() - started,
            )
            return response

    def _apply_delta_locked(self, delta: ProfileDelta) -> dict[str, Any]:
        """Apply a delta to the repository + caches (write lock held)."""
        repository = apply_delta_to_repository(self._repository, delta)
        self._repository = repository
        self._generation += 1
        refreshed: list[str] = []
        for name, entry in list(self._cache.items()):
            current = (
                self._configurations.get(name)
                if name in self._configurations
                else None
            )
            if (
                current is None
                or entry.config is not current
                or entry.groups_version != entry.groups.version
            ):
                del self._cache[name]
                continue
            groups = reassign_groups(entry.groups, repository, delta)
            weight, coverage = entry.config.schemes()
            instances: dict[int, DiversificationInstance] = {}
            for budget in entry.instances:
                instance = rebuild_instance(
                    groups, repository, budget, weight, coverage
                )
                instance_index(instance)
                instances[budget] = instance
            self._cache[name] = _ConfigArtifacts(
                config=current,
                generation=self._generation,
                groups=groups,
                groups_version=groups.version,
                instances=instances,
            )
            refreshed.append(name)
        # Repair maintained selections against the refreshed indexes
        # instead of re-solving; maintainers of dropped cache entries
        # go with them.
        touched = len(delta.touched)
        for key in list(self._maintainers):
            name, budget = key
            entry = self._cache.get(name)
            if entry is None or budget not in entry.instances:
                del self._maintainers[key]
                continue
            self._maintainers[key].refresh(
                instance_index(entry.instances[budget]), touched
            )
        return {
            "users": len(repository),
            "upserts": len(delta.upserts),
            "removals": len(delta.removals),
            "generation": self._generation,
            "refreshed_configurations": sorted(refreshed),
        }

    @property
    def configurations(self) -> ConfigurationStore:
        return self._configurations

    # -- multi-process serving hooks ---------------------------------------

    def replication_snapshot(self) -> dict[str, Any]:
        """Full serving state for a worker that cannot catch up by deltas.

        Ships the repository document plus every registered
        configuration; the receiving worker rebuilds groups/instances
        itself, which is deterministic given identical inputs — so a
        fully-resynced worker answers ``/select`` exactly like the
        writer.
        """
        from ..datasets.io import profiles_to_dict

        with self._lock.read():
            document = {
                "profiles": profiles_to_dict(self._repository_or_raise()),
                "configurations": [
                    self._configurations.get(name).to_dict()
                    for name in self._configurations.names()
                ],
                "wal_seq": 0,
                "reset_epoch": 0,
            }
            if self.store is not None:
                # WAL-shipping bootstrap: the follower resumes tailing
                # from exactly this position, in this epoch.  The key is
                # "reset_epoch", not "epoch" — the pool writer's
                # handle_sync merges this document under its own epoch
                # counter and must not be clobbered.
                document["wal_seq"] = self.store.last_seq
                document["reset_epoch"] = self.store.reset_epoch
            return document

    def wal_records_since(
        self, from_seq: int, limit: int = 256
    ) -> dict[str, Any]:
        """The ``GET /admin/wal`` document a follower tails.

        Ships records with ``seq > from_seq`` plus the log tip and the
        reset-epoch counter; ``resync`` tells the follower a contiguous
        continuation is impossible (records compacted away, or the
        follower is ahead of this primary) and a full state transfer is
        needed.
        """
        store = self._store_or_raise()
        if limit < 1:
            raise ServiceError(f"limit must be >= 1, got {limit}")
        records, last_seq, resync = store.records_since(
            from_seq, limit=limit
        )
        return {
            "from_seq": from_seq,
            "last_seq": last_seq,
            "resync": resync,
            "reset_epoch": store.reset_epoch,
            "records": [
                {"seq": r.seq, "payload": r.payload} for r in records
            ],
        }

    def promote(self) -> dict[str, Any]:
        """Take over as primary: stop tailing, enable writes.

        Idempotent — promoting a service that never followed anything
        just reports its current role.
        """
        follower = self.follower
        was_follower = follower is not None and self.read_only
        if follower is not None:
            follower.promote()
        self.read_only = False
        document: dict[str, Any] = {
            "read_only": False,
            "promoted": was_follower,
        }
        if self.store is not None:
            document["wal_seq"] = self.store.last_seq
        if follower is not None:
            document["replication"] = follower.stats()
        return document

    def reset_concurrency_after_fork(self) -> None:
        """Re-arm the service's locks in a freshly forked worker.

        A fork clones lock state but not the threads holding it: a lock
        acquired by a parent thread at fork time would stay locked
        forever in the child.  The pool forks while holding the write
        lock (so the cloned state is a consistent snapshot), then the
        child replaces every lock before serving.
        """
        self._lock = ReadWriteLock()
        self._build_lock = threading.Lock()

    # -- durable storage ---------------------------------------------------

    def _export_artifacts(self) -> dict[str, SnapshotArtifact]:
        """Freeze the cached serving artifacts for the store.

        Each configuration contributes its frozen group set plus, when
        the default-budget instance has been built and is vectorizable,
        its cached CSR index — so a recovered process can serve the
        first ``/select`` without re-encoding anything.
        """
        exported: dict[str, SnapshotArtifact] = {}
        for name, entry in self._cache.items():
            index = None
            instance = entry.instances.get(entry.config.budget)
            if instance is not None:
                built = instance_index(instance)
                if built.vectorizable:
                    index = built
            exported[name] = SnapshotArtifact(
                config=entry.config.to_dict(),
                groups=entry.groups,
                index=index,
            )
        return exported

    def _store_or_raise(self) -> DurableRepositoryStore:
        if self.store is None:
            raise ServiceError(
                "no data directory configured; start the service with "
                "--data-dir to enable durable storage"
            )
        return self.store

    def snapshot_store(self) -> dict[str, Any]:
        """Write a snapshot of the current serving state (admin route)."""
        store = self._store_or_raise()
        with self._lock.write():
            store.set_artifacts(self._export_artifacts())
            path = store.snapshot()
            stats = store.stats()
        stats["snapshot_path"] = str(path)
        return stats

    def compact_store(self) -> dict[str, Any]:
        """Snapshot then truncate the WAL (admin route)."""
        store = self._store_or_raise()
        with self._lock.write():
            store.set_artifacts(self._export_artifacts())
            path = store.compact()
            stats = store.stats()
        stats["snapshot_path"] = str(path)
        return stats

    def put_configuration(
        self, config: DiversificationConfiguration
    ) -> None:
        """Insert or replace a configuration, dropping its stale artifacts."""
        with self._lock.write():
            self._configurations.put(config)
            self._cache.pop(config.name, None)

    def replace_configurations(
        self, configs: list[DiversificationConfiguration]
    ) -> None:
        """Replace the whole configuration registry (full resync).

        Used by pool workers adopting the writer's state wholesale: the
        registry is rebuilt and every cached artifact dropped, so the
        next request regroups against exactly the writer's
        configurations.
        """
        with self._lock.write():
            self._configurations = ConfigurationStore(tuple(configs))
            self._cache.clear()
            self._maintainers.clear()

    def warm_artifacts(self) -> list[str]:
        """Build every configuration's default-budget serving artifacts.

        The pre-fork warm step of multi-process serving: the parent
        builds each ``(GroupSet, instance, CSR index)`` triple once, then
        forks — workers inherit the warmed cache copy-on-write, so no
        worker ever pays a cold build and the numpy payloads stay shared
        physical pages until a delta diverges them.
        """
        warmed: list[str] = []
        with self._lock.read():
            if self._repository is None:
                return warmed
            for name in self._configurations.names():
                timer = StageTimer()
                entry = self._artifacts(name, timer)
                self._instance(entry, entry.config.budget, timer)
                warmed.append(name)
        return sorted(warmed)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Public corpus/cache statistics (used by ``/health``, ``/metrics``)."""
        with self._lock.read():
            return self._stats()

    def _stats(self) -> dict[str, Any]:
        return {
            "users": len(self._repository) if self._repository else 0,
            "configurations": self._configurations.names(),
            "cached_configurations": sorted(self._cache),
            "generation": self._generation,
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """The ``GET /metrics`` document: counters + service stats."""
        snapshot = self.metrics.snapshot()
        snapshot["service"] = self.stats()
        if self.store is not None:
            snapshot["storage"] = self.store.stats()
        if self.follower is not None:
            snapshot["replication"] = self.follower.stats()
        elif self.read_only:
            snapshot["replication"] = {"role": "follower", "state": "idle"}
        with self._lock.read():
            if self._maintainers:
                snapshot["maintainers"] = {
                    f"{name}@{budget}": maintainer.stats()
                    for (name, budget), maintainer in (
                        self._maintainers.items()
                    )
                }
        if self.cluster_stats_provider is not None:
            # Pool worker: merge the pool-wide view so ``GET /metrics``
            # answered by any worker reports the whole pool — aggregated
            # per-worker counters plus the writer's storage gauges
            # (workers hold no store of their own).
            try:
                cluster = self.cluster_stats_provider()
            except Exception as exc:  # noqa: BLE001 — metrics must serve
                cluster = {"error": f"{type(exc).__name__}: {exc}"}
            storage = cluster.pop("storage", None)
            if storage is not None and "storage" not in snapshot:
                snapshot["storage"] = storage
            snapshot["cluster"] = cluster
        return snapshot

    # -- grouping module (offline step of Fig. 1) -------------------------

    def groups_for(self, config_name: str) -> GroupSet:
        """Bucketing + group materialization, cached per configuration."""
        with self._lock.read():
            return self._artifacts(config_name, StageTimer()).groups

    def instance_for(
        self, config_name: str, budget: int | None = None
    ) -> DiversificationInstance:
        """Resolve a configuration into a diversification instance."""
        with self._lock.read():
            timer = StageTimer()
            entry = self._artifacts(config_name, timer)
            return self._instance(entry, self._effective_budget(
                entry.config, budget
            ), timer)

    # -- unlocked internals ------------------------------------------------

    def _repository_or_raise(self) -> UserRepository:
        if self._repository is None:
            raise ServiceError("no profiles loaded")
        return self._repository

    @staticmethod
    def _effective_budget(
        config: DiversificationConfiguration, budget: int | None
    ) -> int:
        """Resolve the request budget against the configuration default.

        The comparison is explicitly against ``None``: an explicit
        ``budget=0`` must be rejected, not silently replaced by the
        configuration default.
        """
        effective = config.budget if budget is None else budget
        if effective < 1:
            raise InvalidBudgetError(
                f"budget must be >= 1, got {effective}"
            )
        return effective

    def _entry_valid(
        self,
        entry: _ConfigArtifacts | None,
        config: DiversificationConfiguration,
    ) -> bool:
        return (
            entry is not None
            and entry.config is config
            and entry.generation == self._generation
            and entry.groups_version == entry.groups.version
        )

    def _artifacts(
        self, config_name: str, timer: StageTimer
    ) -> _ConfigArtifacts:
        """Fetch (or build) the cached artifacts of one configuration."""
        config = self._configurations.get(config_name)
        entry = self._cache.get(config_name)
        if self._entry_valid(entry, config):
            return entry
        with self._build_lock:
            entry = self._cache.get(config_name)
            if self._entry_valid(entry, config):
                return entry
            repository = self._repository_or_raise()
            with timer.stage("grouping"):
                if config.property_prefixes is not None:
                    repository = UserRepository(
                        profile.restricted_to(
                            label
                            for label in profile.properties
                            if config.matches_property(label)
                        )
                        for profile in repository
                    )
                groups = build_simple_groups(
                    repository, config.grouping_config()
                )
            entry = _ConfigArtifacts(
                config=config,
                generation=self._generation,
                groups=groups,
                groups_version=groups.version,
            )
            self._cache[config_name] = entry
            return entry

    def _instance(
        self, entry: _ConfigArtifacts, budget: int, timer: StageTimer
    ) -> DiversificationInstance:
        """Fetch (or build + index) the instance for an effective budget."""
        instance = entry.instances.get(budget)
        if instance is not None:
            self.metrics.observe_cache(hit=True)
            return instance
        with self._build_lock:
            instance = entry.instances.get(budget)
            if instance is not None:
                self.metrics.observe_cache(hit=True)
                return instance
            self.metrics.observe_cache(hit=False)
            weight, coverage = entry.config.schemes()
            with timer.stage("instance"):
                # rebuild_instance rather than build_instance: identical
                # on groupings with no empty buckets, but tolerant of
                # recovered/reassigned group sets whose buckets drained
                # (empty groups get the behaviour-neutral floor weight),
                # so fresh boots and recovered boots share one build path.
                instance = rebuild_instance(
                    entry.groups,
                    self._repository_or_raise(),
                    budget,
                    weight,
                    coverage,
                )
                # Pre-warm the sparse index so no request pays the encode.
                instance_index(instance)
            entry.instances[budget] = instance
            return instance

    def _plain_select(
        self,
        instance: DiversificationInstance,
        budget: int,
        timer: StageTimer,
    ) -> SelectionResult:
        """BASE-DIVERSITY through the vectorized backend when possible."""
        repository = self._repository_or_raise()
        with timer.stage("selection"):
            index: InstanceIndex = instance_index(instance)
            if index.vectorizable and index.n_users == len(repository):
                return select_from_index(
                    index, budget, method="matrix", instance=instance
                )
            # Users outside every group (or non-int64 weights) need the
            # repository-wide pool; matrix falls back exactly as needed.
            return greedy_select(
                repository, instance, budget, method="matrix"
            )

    # -- selection module --------------------------------------------------

    def select(
        self,
        config_name: str = "default",
        budget: int | None = None,
        feedback: CustomizationFeedback | None = None,
        distribution_properties: tuple[str, ...] = (),
        explain: bool = True,
        timer: StageTimer | None = None,
        maintained: bool = False,
        constraints: ConstraintSpec | None = None,
    ) -> dict[str, Any]:
        """Run a selection request and return the response document."""
        timer = timer if timer is not None else StageTimer()
        with self._lock.read():
            return self._select(
                config_name,
                budget,
                feedback,
                distribution_properties,
                explain,
                timer,
                maintained,
                constraints,
            )

    def _maintainer(
        self, config_name: str, entry: _ConfigArtifacts, budget: int,
        timer: StageTimer,
    ) -> StreamingMaintainer:
        key = (config_name, budget)
        maintainer = self._maintainers.get(key)
        if maintainer is not None:
            return maintainer
        # Build the index *before* taking the build lock: _instance
        # acquires the same (non-reentrant) lock on a cold cache.
        index = instance_index(self._instance(entry, budget, timer))
        with self._build_lock:
            maintainer = self._maintainers.get(key)
            if maintainer is not None:
                return maintainer
            maintainer = StreamingMaintainer(
                index,
                budget,
                swap_margin=self._swap_margin,
                staleness_fraction=self._staleness_fraction,
            )
            self._maintainers[key] = maintainer
            return maintainer

    def _partition(
        self,
        entry: _ConfigArtifacts,
        budget: int,
        index: InstanceIndex,
        cluster_spec: ClusterSpec,
        timer: StageTimer,
    ) -> list:
        """Fetch (or compute) the memoized partition for a cluster spec."""
        key = (budget, cluster_spec)
        partition = entry.partitions.get(key)
        if partition is not None:
            return partition
        with self._build_lock:
            partition = entry.partitions.get(key)
            if partition is not None:
                return partition
            with timer.stage("partition"):
                partition = partition_rows(index, cluster_spec)
            entry.partitions[key] = partition
            return partition

    def _constrained_select(
        self,
        entry: _ConfigArtifacts,
        instance: DiversificationInstance,
        budget: int,
        spec: ConstraintSpec,
        timer: StageTimer,
    ) -> tuple[SelectionResult, dict[str, Any]]:
        """Run the constrained solver; returns (result, report section)."""
        repository = self._repository_or_raise()
        with timer.stage("selection"):
            index: InstanceIndex = instance_index(instance)
            if not index.vectorizable or index.n_users != len(repository):
                raise ServiceError(
                    "constrained selection requires a vectorizable "
                    "instance covering every user; this configuration's "
                    "weights do not fit the sparse index"
                )
            partition = None
            if spec.clusters is not None:
                partition = self._partition(
                    entry, budget, index, spec.clusters, timer
                )
            try:
                outcome = constrained_select(
                    index, spec, budget, partition=partition
                )
            except InfeasibleConstraintError:
                self.metrics.observe_constraints(spec.mode, None)
                raise
        self.metrics.observe_constraints(spec.mode, outcome.satisfied)
        result = SelectionResult(
            selected=outcome.selected,
            score=outcome.result.score,
            gains=outcome.result.gains,
            instance=instance,
        )
        return result, outcome.to_dict()

    def _select(
        self,
        config_name: str,
        budget: int | None,
        feedback: CustomizationFeedback | None,
        distribution_properties: tuple[str, ...],
        explain: bool,
        timer: StageTimer,
        maintained: bool = False,
        constraints: ConstraintSpec | None = None,
    ) -> dict[str, Any]:
        entry = self._artifacts(config_name, timer)
        effective = self._effective_budget(entry.config, budget)
        if constraints is not None and maintained:
            raise ServiceError(
                "constrained selections are solved fresh per request; "
                "omit 'maintained' or 'constraints'"
            )
        if constraints is not None and feedback is not None and (
            feedback != CustomizationFeedback.none()
        ):
            raise ServiceError(
                "constraints cannot be combined with customization "
                "feedback in one request; express must-have/must-not as "
                "floors/ceilings instead"
            )
        if maintained:
            # Maintained selections serve the streaming-repaired subset
            # (swap/fill/re-solve rules, quality within the bench-pinned
            # ratio of fresh greedy) instead of running the exact greedy.
            if feedback is not None and feedback != (
                CustomizationFeedback.none()
            ):
                raise ServiceError(
                    "maintained selections do not support customization "
                    "feedback; omit 'maintained' or 'feedback'"
                )
            with timer.stage("selection"):
                maintainer = self._maintainer(
                    config_name, entry, effective, timer
                )
                return {
                    "configuration": config_name,
                    "selected": list(maintainer.selection),
                    "score": float(maintainer.score()),
                    "maintained": True,
                    "maintainer": maintainer.stats(),
                }
        instance = self._instance(entry, effective, timer)
        if constraints is not None:
            result, report = self._constrained_select(
                entry, instance, effective, constraints, timer
            )
            response = {
                "configuration": config_name,
                "selected": list(result.selected),
                "score": float(result.score),
                "constraints": report,
            }
        elif feedback is None or feedback == CustomizationFeedback.none():
            result = self._plain_select(instance, effective, timer)
            response: dict[str, Any] = {
                "configuration": config_name,
                "selected": list(result.selected),
                "score": float(result.score),
            }
        else:
            with timer.stage("selection"):
                custom = custom_select(
                    self._repository_or_raise(),
                    instance,
                    feedback,
                    effective,
                    method="matrix",
                )
            result = custom.result
            response = {
                "configuration": config_name,
                "selected": list(custom.selected),
                "score": float(result.score),
                "priority_score": float(custom.priority_score),
                "standard_score": float(custom.standard_score),
                "refined_pool_size": custom.refined_pool_size,
            }
        if explain:
            with timer.stage("explanation"):
                explanation = explain_selection(
                    result, distribution_properties=distribution_properties
                )
                response["explanation"] = explanation_payload(explanation)
        return response

    def explanation_page(
        self,
        config_name: str = "default",
        budget: int | None = None,
        timer: StageTimer | None = None,
    ) -> str:
        """Render the Fig. 2 explanation page for a fresh selection."""
        from .viz import render_html

        timer = timer if timer is not None else StageTimer()
        with self._lock.read():
            entry = self._artifacts(config_name, timer)
            effective = self._effective_budget(entry.config, budget)
            instance = self._instance(entry, effective, timer)
            result = self._plain_select(instance, effective, timer)
            # Show distributions for the three heaviest properties.
            heaviest: list[str] = []
            for key in sorted(
                instance.groups.keys,
                key=lambda k: (-float(instance.wei[k]), str(k)),
            ):
                if key.property_label not in heaviest:
                    heaviest.append(key.property_label)
                if len(heaviest) == 3:
                    break
            with timer.stage("explanation"):
                explanation = explain_selection(
                    result, distribution_properties=tuple(heaviest)
                )
                return render_html(
                    result,
                    explanation,
                    title=f"Podium — {config_name} selection",
                )

    def group_listing(
        self, config_name: str = "default", timer: StageTimer | None = None
    ) -> list[dict[str, Any]]:
        """Group explanations ordered by decreasing weight (Fig. 2 list)."""
        timer = timer if timer is not None else StageTimer()
        with self._lock.read():
            entry = self._artifacts(config_name, timer)
            instance = self._instance(
                entry, self._effective_budget(entry.config, None), timer
            )
        ordered = sorted(
            instance.groups,
            key=lambda g: (-float(instance.wei[g.key]), str(g.key)),
        )
        return [
            {
                "property": g.key.property_label,
                "bucket": g.key.bucket_label,
                "label": g.label,
                "weight": float(instance.wei[g.key]),
                "coverage": instance.cov[g.key],
                "size": g.size,
            }
            for g in ordered
        ]


# ---------------------------------------------------------------------------
# WSGI adapter
# ---------------------------------------------------------------------------

_JSON = "application/json"
_HTML = "text/html; charset=utf-8"

_STATUS_LINES = {
    200: "200 OK",
    201: "201 Created",
    400: "400 Bad Request",
    404: "404 Not Found",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
}


def _read_json(environ: dict[str, Any]) -> dict[str, Any]:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        length = 0
    raw = environ["wsgi.input"].read(length) if length else b"{}"
    try:
        document = json.loads(raw.decode() or "{}")
    except json.JSONDecodeError as exc:
        raise ServiceError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ServiceError("request body must be a JSON object")
    return document


def _query(environ: dict[str, Any]) -> dict[str, str]:
    from urllib.parse import parse_qsl

    return dict(parse_qsl(environ.get("QUERY_STRING", "")))


def _int_field(value: Any, name: str) -> int:
    """Parse an integer request field; malformed input is a 400, not a 500."""
    try:
        if isinstance(value, bool):
            raise TypeError("booleans are not budgets")
        return int(value)
    except (TypeError, ValueError):
        raise ServiceError(
            f"field {name!r} must be an integer, got {value!r}"
        ) from None


#: Mutating routes a read-only follower refuses until promotion.  Local
#: admin durability ops (snapshot/compact) stay allowed: they persist
#: the follower's own replicated state without diverging from the
#: primary's history.
_WRITE_ROUTES = frozenset(
    {
        ("POST", "/profiles"),
        ("POST", "/profiles/delta"),
        ("POST", "/configurations"),
    }
)


def _dispatch(
    service: PodiumService,
    method: str,
    path: str,
    environ: dict[str, Any],
    timer: StageTimer,
) -> tuple[int, Any, str]:
    """Resolve one request to ``(status, payload, content_type)``."""
    if service.read_only and (method, path) in _WRITE_ROUTES:
        return (
            503,
            {
                "error": "read-only: this instance follows a primary's "
                "WAL; write to the primary, or POST /admin/promote to "
                "take over"
            },
            _JSON,
        )
    if method == "GET" and path == "/health":
        return 200, {"status": "ok", **service.stats()}, _JSON
    if method == "GET" and path == "/metrics":
        return 200, service.metrics_snapshot(), _JSON
    if method == "GET" and path == "/configurations":
        return (
            200,
            [
                service.configurations.get(name).to_dict()
                for name in service.configurations.names()
            ],
            _JSON,
        )
    if method == "POST" and path == "/configurations":
        config = DiversificationConfiguration.from_dict(_read_json(environ))
        service.put_configuration(config)
        return 201, config.to_dict(), _JSON
    if method == "POST" and path == "/profiles":
        from ..datasets.io import profiles_from_dict

        service.load_repository(profiles_from_dict(_read_json(environ)))
        return 200, {"loaded_users": len(service.repository)}, _JSON
    if method == "POST" and path == "/profiles/delta":
        delta = parse_profile_delta(_read_json(environ))
        return 200, service.apply_profile_delta(delta), _JSON
    if method == "POST" and path == "/admin/snapshot":
        return 200, service.snapshot_store(), _JSON
    if method == "POST" and path == "/admin/compact":
        return 200, service.compact_store(), _JSON
    if method == "GET" and path == "/admin/wal":
        query = _query(environ)
        return (
            200,
            service.wal_records_since(
                _int_field(query.get("from_seq", 0), "from_seq"),
                _int_field(query.get("limit", 256), "limit"),
            ),
            _JSON,
        )
    if method == "GET" and path == "/admin/state":
        return 200, service.replication_snapshot(), _JSON
    if method == "POST" and path == "/admin/promote":
        return 200, service.promote(), _JSON
    if method == "GET" and path == "/explain.html":
        query = _query(environ)
        html = service.explanation_page(
            query.get("configuration", "default"),
            (
                _int_field(query["budget"], "budget")
                if "budget" in query
                else None
            ),
            timer=timer,
        )
        return 200, html.encode(), _HTML
    if method == "GET" and path == "/groups":
        name = _query(environ).get("configuration", "default")
        return 200, service.group_listing(name, timer=timer), _JSON
    if method == "POST" and path == "/select":
        body = _read_json(environ)
        response = service.select(
            config_name=str(body.get("configuration", "default")),
            budget=(
                _int_field(body["budget"], "budget")
                if "budget" in body
                else None
            ),
            feedback=parse_feedback(body.get("feedback")),
            distribution_properties=tuple(
                str(p) for p in body.get("distribution_properties", ())
            ),
            explain=bool(body.get("explain", True)),
            timer=timer,
            maintained=bool(body.get("maintained", False)),
            constraints=parse_constraints(body.get("constraints")),
        )
        return 200, response, _JSON
    return 404, {"error": f"no route {method} {path}"}, _JSON


def make_wsgi_app(service: PodiumService) -> Callable:
    """Build the WSGI callable exposing ``service`` over HTTP.

    Every response — including malformed input (400) and unexpected
    failures (500) — is JSON; a raw interpreter traceback never reaches
    the client.  Each request is timed, counted in ``service.metrics``
    and logged as a one-line JSON document.
    """

    def app(environ: dict[str, Any], start_response: Callable) -> list[bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        timer = StageTimer()
        started = time.perf_counter()
        error: str | None = None
        matched = True
        try:
            status, payload, content_type = _dispatch(
                service, method, path, environ, timer
            )
            matched = status != 404
        except PodiumError as exc:
            status, payload, content_type = 400, {"error": str(exc)}, _JSON
            error = str(exc)
        except (KeyError, TypeError, ValueError) as exc:
            # Malformed input that slipped past explicit validation.
            status, content_type = 400, _JSON
            payload = {"error": f"malformed request: {exc}"}
            error = str(exc)
        except Exception as exc:  # noqa: BLE001 — the JSON-500 boundary
            logger.exception("unhandled error serving %s %s", method, path)
            status, content_type = 500, _JSON
            payload = {
                "error": f"internal server error: {type(exc).__name__}"
            }
            error = f"{type(exc).__name__}: {exc}"
        seconds = time.perf_counter() - started
        # Unmatched paths share one metrics bucket so arbitrary probes
        # cannot grow the counter map without bound.
        route = f"{method} {path}" if matched else "<unmatched>"
        service.metrics.observe_request(route, status, seconds, timer.seconds)
        logger.info(
            request_log_record(
                f"{method} {path}", status, seconds, timer.seconds, error
            )
        )
        body = payload if isinstance(payload, bytes) else (
            json.dumps(payload).encode()
        )
        start_response(
            _STATUS_LINES[status],
            [
                ("Content-Type", content_type),
                ("Content-Length", str(len(body))),
            ],
        )
        return [body]

    return app


class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """WSGI server handling each request on its own daemon thread."""

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    """Route wsgiref's per-request stderr lines through ``logging``."""

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logging.getLogger("repro.service.http").debug(format, *args)


def make_http_server(
    service: PodiumService, host: str = "127.0.0.1", port: int = 8808
) -> WSGIServer:
    """Build the threaded HTTP server (``port=0`` picks an ephemeral port)."""
    return make_server(
        host,
        port,
        make_wsgi_app(service),
        server_class=ThreadingWSGIServer,
        handler_class=_QuietHandler,
    )


def serve(
    service: PodiumService, host: str = "127.0.0.1", port: int = 8808
) -> dict[str, Any]:
    """Run the threaded service until interrupted; return final metrics."""
    httpd = make_http_server(service, host, port)
    bound_host, bound_port = httpd.server_address[:2]
    print(
        f"Podium service listening on http://{bound_host}:{bound_port} "
        f"(threaded; request stats at /metrics)"
    )
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
        if service.store is not None:
            # Graceful shutdown: fold the applied WAL into a snapshot so
            # the next boot replays nothing.  Crash recovery never
            # depends on this — it is purely a startup-time optimization.
            service.snapshot_store()
            print("snapshot written")
    finally:
        httpd.server_close()
    return service.metrics_snapshot()
