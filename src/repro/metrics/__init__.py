"""Diversity metrics: CD-sim, intrinsic profile metrics, opinion metrics."""

from .cdsim import (
    cd_sim,
    cd_sim_from_counts,
    ks_similarity,
    ks_similarity_from_counts,
    normalize,
)
from .intrinsic import (
    IntrinsicReport,
    distribution_similarity,
    evaluate_intrinsic,
    intersected_property_coverage,
    top_k_coverage,
)
from .opinion import (
    OpinionReport,
    evaluate_opinions,
    rating_distribution_similarity,
    rating_variance,
    topic_sentiment_coverage,
    usefulness,
)

__all__ = [
    "cd_sim",
    "cd_sim_from_counts",
    "ks_similarity",
    "ks_similarity_from_counts",
    "normalize",
    "IntrinsicReport",
    "distribution_similarity",
    "evaluate_intrinsic",
    "intersected_property_coverage",
    "top_k_coverage",
    "OpinionReport",
    "evaluate_opinions",
    "rating_distribution_similarity",
    "rating_variance",
    "topic_sentiment_coverage",
    "usefulness",
]
