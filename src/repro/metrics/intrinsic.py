"""Intrinsic diversity metrics over the selected profiles (paper §8.2).

Four complementary metrics, mirroring the bars of Fig. 3a/3c:

* **Selection total score** — Def. 3.3's objective (what Podium directly
  approximates under LBS + Single).
* **Top-k group coverage** — fraction of the ``k`` largest groups with at
  least one selected representative (paper uses k = 200).
* **Intersected-property coverage** — like top-k but over pairwise
  intersections of simple groups that are at least as large as the k-th
  largest simple group; tests whether simple-group selection implicitly
  covers complex groups.
* **Distribution similarity** — mean CD-sim between population and subset
  bucket distributions, over the properties of the top-20 largest groups.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..core.errors import PodiumError
from ..core.groups import Group
from ..core.index import instance_index
from ..core.instance import DiversificationInstance
from ..core.scoring import subset_score
from .cdsim import cd_sim_from_counts


def _check_method(method: str) -> None:
    if method not in ("vector", "python"):
        raise PodiumError(
            f"method must be 'vector' or 'python', got {method!r}"
        )


def top_k_coverage(
    instance: DiversificationInstance,
    selected: Iterable[str],
    k: int = 200,
    method: str = "vector",
) -> float:
    """Fraction of the ``k`` largest groups with a selected representative.

    ``method="vector"`` answers every membership test from the instance's
    CSR index (one segment-sum over the selection mask); ``"python"`` is
    the original per-group set-intersection loop, kept as the parity
    oracle.
    """
    _check_method(method)
    top = instance.groups.top_k(k)
    if not top:
        return 1.0
    if method == "python":
        selected_set = set(selected)
        covered = sum(1 for g in top if g.members & selected_set)
        return covered / len(top)
    index = instance_index(instance)
    hits = index.selection_hits(selected)
    covered = int(
        np.count_nonzero(hits[[index.group_pos[g.key] for g in top]])
    )
    return covered / len(top)


def _large_simple_groups(
    instance: DiversificationInstance, k: int
) -> tuple[list[Group], int]:
    """Simple groups at least as large as the k-th largest, + threshold."""
    simple = [g for g in instance.groups if g.bucket is not None]
    simple.sort(key=lambda g: (-g.size, str(g.key)))
    if not simple:
        return [], 0
    threshold = simple[min(k, len(simple)) - 1].size
    return [g for g in simple if g.size >= threshold], threshold


def intersected_property_coverage(
    instance: DiversificationInstance,
    selected: Iterable[str],
    k: int = 200,
    max_intersections: int = 20000,
    method: str = "vector",
) -> float:
    """Coverage of large pairwise intersections of simple groups.

    Only intersections between *different properties* count (two buckets
    of one property never overlap), and only those at least as large as
    the k-th largest simple group (the paper's size floor).  The number of
    examined pairs is capped at ``max_intersections``, scanning the pairs
    of the largest groups first — exactly the region where qualifying
    intersections live.

    ``method="vector"`` densifies the candidate groups into membership
    masks once and answers every pair's intersection size — and whether a
    selected user sits in it — with two Gram products, walking the same
    row-major pair order (and examination cap) as the ``"python"`` oracle
    so both return identical values.
    """
    _check_method(method)
    candidates, threshold = _large_simple_groups(instance, k)
    if not candidates or threshold == 0:
        return 1.0
    if method == "vector":
        return _intersected_coverage_vector(
            instance, selected, candidates, threshold, max_intersections
        )
    selected_set = set(selected)

    covered = 0
    total = 0
    examined = 0
    for i in range(len(candidates)):
        if examined >= max_intersections:
            break
        a = candidates[i]
        for j in range(i + 1, len(candidates)):
            if examined >= max_intersections:
                break
            b = candidates[j]
            if a.key.property_label == b.key.property_label:
                continue
            examined += 1
            common = a.members & b.members
            if len(common) < threshold:
                continue
            total += 1
            if common & selected_set:
                covered += 1
    if total == 0:
        return 1.0
    return covered / total


def _intersected_coverage_vector(
    instance: DiversificationInstance,
    selected: Iterable[str],
    candidates: list[Group],
    threshold: int,
    max_intersections: int,
) -> float:
    """Membership-mask evaluation of the intersected-coverage metric.

    ``masks @ masks.T`` gives ``|G_a ∩ G_b|`` for every candidate pair at
    once and ``(masks · sel) @ masks.T`` the number of *selected* members
    of each pairwise intersection; the row-major upper triangle replays
    the oracle's examination order, so applying the pair cap to it keeps
    the examined set identical.
    """
    index = instance_index(instance)
    masks = index.membership_matrix(
        index.group_pos[g.key] for g in candidates
    ).astype(np.float64)
    sel = index.selection_mask(selected).astype(np.float64)
    inter = masks @ masks.T
    sel_inter = (masks * sel) @ masks.T

    labels = np.array([g.key.property_label for g in candidates], dtype=object)
    rows, cols = np.triu_indices(len(candidates), 1)
    examined = np.flatnonzero(labels[rows] != labels[cols])[:max_intersections]
    qualifying = inter[rows[examined], cols[examined]] >= threshold
    total = int(qualifying.sum())
    if total == 0:
        return 1.0
    covered = int(
        (qualifying & (sel_inter[rows[examined], cols[examined]] > 0)).sum()
    )
    return covered / total


def distribution_similarity(
    instance: DiversificationInstance,
    selected: Iterable[str],
    top_groups: int = 20,
    method: str = "vector",
) -> float:
    """Mean bucket-distribution CD-sim over the top groups' properties.

    For each property behind one of the ``top_groups`` largest groups,
    compare the population weight share per bucket with the subset's
    member share per bucket (paper §8.2's group-bucket construction).

    ``method="vector"`` reads every subset bucket count from one
    ``group_hits`` segment sum over the instance's CSR index;
    ``"python"`` intersects membership sets per bucket (parity oracle).
    Both produce identical floats: a group's hit count equals the size
    of its member ∩ selection intersection exactly.
    """
    _check_method(method)
    selected = list(selected)
    properties: list[str] = []
    for group in instance.groups.top_k(top_groups):
        label = group.key.property_label
        if label not in properties:
            properties.append(label)

    if method == "vector":
        index = instance_index(instance)
        hits = index.selection_hits(selected)

        def subset_count(group: Group) -> float:
            return float(int(hits[index.group_pos[group.key]]))

    else:
        selected_set = set(selected)

        def subset_count(group: Group) -> float:
            return float(len(group.members & selected_set))

    similarities: list[float] = []
    for label in properties:
        buckets = instance.groups.buckets_of_property(label)
        if not buckets:
            continue
        buckets.sort(key=lambda g: (g.bucket.lo if g.bucket else 0.0, g.label))
        all_counts = [float(instance.wei[g.key]) for g in buckets]
        sub_counts = [subset_count(g) for g in buckets]
        similarities.append(cd_sim_from_counts(sub_counts, all_counts))
    if not similarities:
        return 1.0
    return sum(similarities) / len(similarities)


@dataclass(frozen=True)
class IntrinsicReport:
    """All intrinsic metrics for one selected subset."""

    total_score: float
    top_k_coverage: float
    intersected_coverage: float
    distribution_similarity: float

    def as_dict(self) -> dict[str, float]:
        return {
            "total_score": self.total_score,
            "top_k_coverage": self.top_k_coverage,
            "intersected_coverage": self.intersected_coverage,
            "distribution_similarity": self.distribution_similarity,
        }


def evaluate_intrinsic(
    instance: DiversificationInstance,
    selected: Iterable[str],
    k: int = 200,
    top_groups: int = 20,
    method: str = "vector",
) -> IntrinsicReport:
    """Compute the full intrinsic report of Fig. 3a/3c for one subset.

    ``method`` selects the coverage-metric implementation (``"vector"``
    mask arithmetic or the ``"python"`` set-loop oracle); both yield
    identical reports.
    """
    selected = list(selected)
    return IntrinsicReport(
        total_score=float(subset_score(instance, selected)),
        top_k_coverage=top_k_coverage(instance, selected, k, method=method),
        intersected_coverage=intersected_property_coverage(
            instance, selected, k, method=method
        ),
        distribution_similarity=distribution_similarity(
            instance, selected, top_groups, method=method
        ),
    )
