"""Opinion-diversity metrics over procured reviews (paper §8.2).

These metrics judge the *ground-truth opinions* of the selected users on
a held-out destination — data the selection algorithms never saw:

* **Topic+Sentiment coverage** — fraction of (topic, sentiment) pairs of
  the destination covered by the subset's reviews; 100% means every
  prevalent topic appears in both a positive and a negative review.
* **Usefulness** — total useful votes of the subset's reviews (Yelp
  only); rewards representative, relatable opinions.
* **Rating distribution similarity** — CD-sim between the subset's and
  the population's star-rating histograms for the destination.
* **Rating variance** — variance of the subset's star ratings.

Every metric is defined per destination; reports average across the
destinations examined (50 for TripAdvisor, 130 for Yelp in §8.4).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..datasets.schema import RATING_MAX, RATING_MIN, Review, ReviewDataset
from .cdsim import cd_sim_from_counts


def _subset_reviews(
    dataset: ReviewDataset, destination: str, selected: set[str]
) -> list[Review]:
    return [
        r for r in dataset.reviews_of(destination) if r.user_id in selected
    ]


def _sentiment_pairs(reviews: Iterable[Review]) -> set[tuple[str, str]]:
    return {
        (mention.topic, mention.sentiment)
        for review in reviews
        for mention in review.mentions
    }


def topic_sentiment_coverage(
    dataset: ReviewDataset,
    destination: str,
    selected: Iterable[str],
    attainable: bool = True,
) -> float:
    """Fraction of (topic, sentiment) pairs covered by the subset.

    With ``attainable=True`` (default) the denominator is the set of
    pairs appearing in *any* review of the destination — pairs nobody
    ever wrote cannot be procured from anyone.  ``attainable=False``
    uses the full ``2 × |topics|`` grid the paper describes.
    """
    selected_set = set(selected)
    sub_pairs = _sentiment_pairs(_subset_reviews(dataset, destination, selected_set))
    if attainable:
        all_pairs = _sentiment_pairs(dataset.reviews_of(destination))
    else:
        topics = dataset.business(destination).topics
        all_pairs = {
            (topic, sentiment)
            for topic in topics
            for sentiment in ("positive", "negative")
        }
    if not all_pairs:
        return 1.0
    return len(sub_pairs & all_pairs) / len(all_pairs)


def usefulness(
    dataset: ReviewDataset, destination: str, selected: Iterable[str]
) -> float:
    """Sum of useful votes over the subset's reviews of the destination."""
    selected_set = set(selected)
    return float(
        sum(
            r.useful_votes
            for r in _subset_reviews(dataset, destination, selected_set)
        )
    )


def _rating_counts(reviews: Iterable[Review]) -> list[int]:
    counts = [0] * (RATING_MAX - RATING_MIN + 1)
    for review in reviews:
        counts[review.rating - RATING_MIN] += 1
    return counts


def rating_distribution_similarity(
    dataset: ReviewDataset, destination: str, selected: Iterable[str]
) -> float:
    """CD-sim of subset-vs-population star-rating distributions (§8.2)."""
    selected_set = set(selected)
    sub = _rating_counts(_subset_reviews(dataset, destination, selected_set))
    all_ = _rating_counts(dataset.reviews_of(destination))
    return cd_sim_from_counts(sub, all_)


def rating_variance(
    dataset: ReviewDataset, destination: str, selected: Iterable[str]
) -> float:
    """Variance of the subset's star ratings for the destination."""
    selected_set = set(selected)
    ratings = [
        r.rating for r in _subset_reviews(dataset, destination, selected_set)
    ]
    if len(ratings) < 2:
        return 0.0
    return float(np.var(ratings))


@dataclass(frozen=True)
class OpinionReport:
    """Opinion metrics averaged over the examined destinations."""

    topic_sentiment_coverage: float
    usefulness: float
    rating_distribution_similarity: float
    rating_variance: float
    destinations: int

    def as_dict(self) -> dict[str, float]:
        return {
            "topic_sentiment_coverage": self.topic_sentiment_coverage,
            "usefulness": self.usefulness,
            "rating_distribution_similarity": self.rating_distribution_similarity,
            "rating_variance": self.rating_variance,
        }


def evaluate_opinions(
    dataset: ReviewDataset,
    selections: dict[str, list[str]],
    attainable_topics: bool = True,
) -> OpinionReport:
    """Average every opinion metric over ``{destination: selected users}``.

    The mapping comes from the procurement simulation, which selects a
    (possibly different) subset per destination from that destination's
    reviewer pool.
    """
    if not selections:
        return OpinionReport(0.0, 0.0, 0.0, 0.0, 0)
    tsc, use, rds, var = [], [], [], []
    for destination, selected in selections.items():
        tsc.append(
            topic_sentiment_coverage(
                dataset, destination, selected, attainable=attainable_topics
            )
        )
        use.append(usefulness(dataset, destination, selected))
        rds.append(rating_distribution_similarity(dataset, destination, selected))
        var.append(rating_variance(dataset, destination, selected))
    n = len(selections)
    return OpinionReport(
        topic_sentiment_coverage=sum(tsc) / n,
        usefulness=sum(use) / n,
        rating_distribution_similarity=sum(rds) / n,
        rating_variance=sum(var) / n,
        destinations=n,
    )
