"""Coverage-oriented distribution similarity — CD-sim (paper Def. 8.1).

Standard goodness-of-fit tests are inadequate for coverage-based
selection because small groups *must* be over-represented to be covered
at all.  CD-sim therefore taxes only under-representation:

``cd-sim(f_subset, f_all) = 1 − (1/k) · Σ_{f_subset(b) < f_all(b)}
(f_all(b) − f_subset(b)) / f_all(b)``

Example 8.2: population ``[0.23, 0.4, 0.37]`` versus selection
``[0.4, 0.5, 0.1]`` scores 0.757 — penalized only for the third bucket.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.errors import PodiumError


def cd_sim(f_subset: Sequence[float], f_all: Sequence[float]) -> float:
    """Compute CD-sim between two aligned distributions over ``k`` values.

    Domain values where ``f_all`` is zero contribute nothing: an empty
    population bucket cannot be under-represented.
    """
    if len(f_subset) != len(f_all):
        raise PodiumError(
            f"distributions must align: {len(f_subset)} vs {len(f_all)}"
        )
    k = len(f_all)
    if k == 0:
        return 1.0
    penalty = 0.0
    for sub, all_ in zip(f_subset, f_all):
        if all_ > 0 and sub < all_:
            penalty += (all_ - sub) / all_
    return 1.0 - penalty / k


def normalize(counts: Sequence[float]) -> list[float]:
    """Turn raw counts into a distribution; all-zero input stays zero."""
    total = float(sum(counts))
    if total <= 0:
        return [0.0] * len(counts)
    return [c / total for c in counts]


def cd_sim_from_counts(
    subset_counts: Sequence[float], all_counts: Sequence[float]
) -> float:
    """CD-sim of the distributions induced by two aligned count vectors."""
    return cd_sim(normalize(subset_counts), normalize(all_counts))


def ks_similarity(
    f_subset: Sequence[float], f_all: Sequence[float]
) -> float:
    """``1 − KS`` over aligned discrete distributions — the *inadequate*
    alternative §8.2 argues against.

    The Kolmogorov–Smirnov statistic is the maximum CDF gap, which taxes
    over- and under-representation symmetrically.  Coverage-based
    selection must over-represent small groups, so KS punishes exactly
    the behaviour CD-sim was designed to permit; the two are provided
    side by side so that the argument is measurable (see the
    ``test_ablation_cdsim_vs_ks`` bench).
    """
    if len(f_subset) != len(f_all):
        raise PodiumError(
            f"distributions must align: {len(f_subset)} vs {len(f_all)}"
        )
    gap = 0.0
    cdf_subset = 0.0
    cdf_all = 0.0
    for sub, all_ in zip(f_subset, f_all):
        cdf_subset += sub
        cdf_all += all_
        gap = max(gap, abs(cdf_subset - cdf_all))
    return 1.0 - gap


def ks_similarity_from_counts(
    subset_counts: Sequence[float], all_counts: Sequence[float]
) -> float:
    """``1 − KS`` of the distributions induced by two count vectors."""
    return ks_similarity(normalize(subset_counts), normalize(all_counts))
