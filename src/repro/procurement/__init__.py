"""Opinion-procurement simulation with held-out ground truth."""

from .simulate import (
    CUISINE_LOCATION_PREFIXES,
    ProcurementConfig,
    holdout_repository,
    pick_destinations,
    procure_destination,
    run_procurement,
)

__all__ = [
    "CUISINE_LOCATION_PREFIXES",
    "ProcurementConfig",
    "holdout_repository",
    "pick_destinations",
    "procure_destination",
    "run_procurement",
]
