"""Opinion-procurement simulation over held-out destinations (paper §8).

The paper evaluates opinion diversity by simulating procurement with
known ground truth: "we can select users from TripAdvisor based on their
profiles excluding the data related to some destination, then evaluate
diversity of the selected subset reviews on the excluded destination."

For each examined destination the simulation:

1. takes the destination's reviewer pool (so a ground-truth opinion
   exists for every candidate);
2. derives their profiles with the destination's reviews *held out*;
3. optionally restricts properties to client-relevant families — the
   paper's §8.4 runs use cuisine- and location-related groups, "as a
   client seeking opinions about a restaurant might have chosen";
4. runs a selector for the budget;
5. hands the per-destination selections to the opinion metrics.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import Selector
from ..core.groups import GroupingConfig, build_simple_groups
from ..core.instance import build_instance
from ..core.profiles import UserRepository
from ..core.weights import CoverageScheme, WeightScheme
from ..datasets.derive import (
    AVG_RATING,
    ENTHUSIASM,
    LIVES_IN,
    VISIT_FREQ,
    DeriveConfig,
    build_repository,
)
from ..datasets.schema import ReviewDataset
from ..metrics.opinion import OpinionReport, evaluate_opinions

#: Property families "related to cuisine and location" (§8.4's choice).
CUISINE_LOCATION_PREFIXES: tuple[str, ...] = (
    AVG_RATING,
    VISIT_FREQ,
    ENTHUSIASM,
    LIVES_IN,
)


@dataclass(frozen=True)
class ProcurementConfig:
    """Parameters of one procurement experiment.

    ``property_prefixes`` keeps only properties whose label starts with
    one of the prefixes (``None`` keeps everything);
    ``min_reviews_per_destination`` and ``max_destinations`` bound the set
    of destinations examined (≈50 with ~90 reviews each for TripAdvisor,
    ≈130 with more for Yelp in §8.4).
    """

    budget: int = 8
    derive: DeriveConfig = field(default_factory=DeriveConfig)
    grouping: GroupingConfig = field(default_factory=GroupingConfig)
    weight_scheme: WeightScheme | None = None
    coverage_scheme: CoverageScheme | None = None
    property_prefixes: tuple[str, ...] | None = CUISINE_LOCATION_PREFIXES
    min_reviews_per_destination: int = 20
    max_destinations: int = 50


def _restrict_properties(
    repository: UserRepository, prefixes: tuple[str, ...]
) -> UserRepository:
    keep = [
        label
        for label in repository.property_labels
        if any(label.startswith(p) for p in prefixes)
    ]
    keep_set = set(keep)
    return UserRepository(
        profile.restricted_to(keep_set) for profile in repository
    )


def pick_destinations(
    dataset: ReviewDataset, config: ProcurementConfig
) -> list[str]:
    """The destinations examined: most-reviewed first, capped."""
    eligible = dataset.destinations(config.min_reviews_per_destination)
    eligible.sort(key=lambda b: (-len(dataset.reviews_of(b)), b))
    return eligible[: config.max_destinations]


def holdout_repository(
    dataset: ReviewDataset, destination: str, config: ProcurementConfig
) -> UserRepository:
    """Profiles of the destination's reviewers, with it held out."""
    reviewers: list[str] = []
    seen: set[str] = set()
    for review in dataset.reviews_of(destination):
        if review.user_id not in seen:
            seen.add(review.user_id)
            reviewers.append(review.user_id)
    repository = build_repository(
        dataset,
        config.derive.excluding([destination]),
        user_ids=reviewers,
    )
    if config.property_prefixes is not None:
        repository = _restrict_properties(repository, config.property_prefixes)
    return repository


def procure_destination(
    dataset: ReviewDataset,
    destination: str,
    selector: Selector,
    config: ProcurementConfig,
    rng: np.random.Generator | None = None,
    repository: UserRepository | None = None,
) -> list[str]:
    """Select ``budget`` users for one destination from its reviewer pool.

    ``repository`` short-circuits the (deterministic) holdout derivation
    when the caller evaluates several selectors on the same destination.
    """
    if repository is None:
        repository = holdout_repository(dataset, destination, config)
    groups = build_simple_groups(repository, config.grouping)
    instance = build_instance(
        repository,
        config.budget,
        groups=groups,
        weight_scheme=config.weight_scheme,
        coverage_scheme=config.coverage_scheme,
    )
    return selector.select(repository, instance, config.budget, rng=rng)


def run_procurement(
    dataset: ReviewDataset,
    selectors: Iterable[Selector],
    config: ProcurementConfig,
    seed: int = 0,
) -> dict[str, OpinionReport]:
    """Run the full §8.4 opinion-diversity experiment.

    Returns ``{selector name: OpinionReport}``, each report averaging the
    opinion metrics over every examined destination.  The holdout
    repository is derived once per destination and shared across
    selectors; every selector gets an independent, seeded RNG stream so
    results are reproducible and fair.
    """
    selectors = list(selectors)
    destinations = pick_destinations(dataset, config)
    selections: dict[str, dict[str, list[str]]] = {
        selector.name: {} for selector in selectors
    }
    for index, destination in enumerate(destinations):
        repository = holdout_repository(dataset, destination, config)
        for selector in selectors:
            # crc32 keeps the stream stable across processes (str hash()
            # is salted per interpreter run).
            name_tag = zlib.crc32(selector.name.encode()) & 0xFFFF
            rng = np.random.default_rng((seed, index, name_tag))
            selections[selector.name][destination] = procure_destination(
                dataset,
                destination,
                selector,
                config,
                rng=rng,
                repository=repository,
            )
    return {
        name: evaluate_opinions(dataset, per_destination)
        for name, per_destination in selections.items()
    }
