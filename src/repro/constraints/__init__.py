"""Constrained selection: fairness floors/ceilings and cluster budgets.

The constrained-selection subsystem makes demographic guarantees a
first-class selection mode on top of the paper's coverage objective:

* :class:`ConstraintSpec` declares per-group hard floors/ceilings
  (generalizing customization's G₊/G₋) or a cluster-budgeted mode.
* :func:`constrained_select` runs the CSR-index-native solvers
  (:mod:`~repro.constraints.fair`, :mod:`~repro.constraints.clustered`)
  and reports per-bound satisfaction.
* :func:`~repro.core.greedy.select_from_index` accepts
  ``constraints=spec`` so every caller of the vectorized backends can
  compose constraints with the matrix/sharded/stochastic methods and
  memory-mapped checkpoint indexes.

Each solver has a pure-Python oracle twin
(:func:`~repro.constraints.fair.fair_select_oracle`,
:func:`~repro.constraints.clustered.clustered_select_oracle`) pinned by
exact-parity sweeps in ``tests/constraints``.
"""

from .clustered import (
    ClusterSolve,
    clustered_select_oracle,
    clustered_select_rows,
    partition_rows,
)
from .fair import diagnose_floors, fair_select_oracle, fair_select_rows
from .feasibility import (
    eligibility_mask,
    eligible_user_filter,
    keys_by_property,
)
from .select import (
    BoundReport,
    ClusterReport,
    ConstrainedSelectionResult,
    constrained_select,
)
from .spec import CLUSTER_METHODS, ClusterSpec, ConstraintSpec

__all__ = [
    "BoundReport",
    "CLUSTER_METHODS",
    "ClusterReport",
    "ClusterSolve",
    "ClusterSpec",
    "ConstrainedSelectionResult",
    "ConstraintSpec",
    "clustered_select_oracle",
    "clustered_select_rows",
    "constrained_select",
    "diagnose_floors",
    "eligibility_mask",
    "eligible_user_filter",
    "fair_select_oracle",
    "fair_select_rows",
    "keys_by_property",
    "partition_rows",
]
