"""Top-level constrained selection entry points and result model.

:func:`constrained_select` is what every layer above the solvers calls:
the service's ``POST /select`` constraints block, the experiment
engine's fairness/cluster cells, the bench suite and
:func:`~repro.core.greedy.select_from_index`'s ``constraints=`` keyword
all land here.  It dispatches on the spec's mode, runs the CSR-native
solver, and wraps the picks in a :class:`ConstrainedSelectionResult`
carrying a per-bound satisfaction report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.errors import InvalidBudgetError, PodiumError
from ..core.greedy import SelectionResult, _rows_loop, _stochastic_sample_size
from ..core.groups import GroupKey
from ..core.index import InstanceIndex
from .clustered import (
    ClusterSolve,
    clustered_select_rows,
    partition_rows,
)
from .fair import fair_select_rows
from .spec import ConstraintSpec


@dataclass(frozen=True)
class BoundReport:
    """Achieved count of one floor or ceiling in the final selection."""

    key: GroupKey
    bound: int
    achieved: int
    satisfied: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "property": self.key.property_label,
            "bucket": self.key.bucket_label,
            "bound": self.bound,
            "achieved": self.achieved,
            "satisfied": self.satisfied,
        }


@dataclass(frozen=True)
class ClusterReport:
    """One cluster's budget share and picks in a clustered selection."""

    label: str
    size: int
    seats: int
    selected: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "size": self.size,
            "seats": self.seats,
            "selected": list(self.selected),
        }


@dataclass(frozen=True)
class ConstrainedSelectionResult:
    """A selection together with its constraint-satisfaction report.

    ``result.score`` is always the exact unconstrained ``score_G`` of
    the selected subset (the number price-of-fairness compares against
    a plain greedy run); ``result.gains`` are the realized per-pick
    gains of the solve that produced each pick.
    """

    result: SelectionResult
    spec: ConstraintSpec
    floors: tuple[BoundReport, ...] = ()
    ceilings: tuple[BoundReport, ...] = ()
    clusters: tuple[ClusterReport, ...] | None = None
    repair: tuple[str, ...] = ()

    @property
    def selected(self) -> tuple[str, ...]:
        return self.result.selected

    @property
    def satisfied(self) -> bool:
        """True iff every floor and ceiling holds in the selection."""
        return all(
            r.satisfied for r in (*self.floors, *self.ceilings)
        )

    def to_dict(self) -> dict[str, Any]:
        document: dict[str, Any] = {
            "mode": self.spec.mode,
            "satisfied": self.satisfied,
        }
        if self.floors:
            document["floors"] = [r.to_dict() for r in self.floors]
        if self.ceilings:
            document["ceilings"] = [r.to_dict() for r in self.ceilings]
        if self.clusters is not None:
            document["clusters"] = [r.to_dict() for r in self.clusters]
            document["repair"] = list(self.repair)
        return document


def _bound_reports(
    index: InstanceIndex,
    rows: list[int],
    bounds: tuple[tuple[GroupKey, int], ...],
    is_floor: bool,
) -> tuple[BoundReport, ...]:
    if not bounds:
        return ()
    hits = np.zeros(index.n_groups, dtype=np.int64)
    for row in rows:
        hits[np.asarray(index.groups_of_row(row), dtype=np.int64)] += 1
    reports = []
    for key, bound in bounds:
        achieved = int(hits[index.group_pos[key]])
        satisfied = achieved >= bound if is_floor else achieved <= bound
        reports.append(BoundReport(key, bound, achieved, satisfied))
    return tuple(reports)


def _candidate_rows(
    index: InstanceIndex, candidates: list[str] | None
) -> np.ndarray | None:
    if candidates is None:
        return None
    rows = sorted(
        pos
        for pos in (index.user_pos.get(u) for u in set(candidates))
        if pos is not None
    )
    return np.asarray(rows, dtype=np.int64)


def _fair_union_rows(
    index: InstanceIndex,
    spec: ConstraintSpec,
    budget: int,
    rows: np.ndarray,
    shards: int,
    shard_seed: int,
) -> np.ndarray:
    """GreeDi-style union enrichment for the fair sharded backend.

    Round 1 runs the *unconstrained* greedy per shard (2B winners each,
    like the plain sharded backend), then the union is enriched with
    each floor group's strongest candidates — twice the floor count by
    descending initial gain (row ascending on ties) — so the merge
    round always has enough members of every floor group to be
    feasible.  The fair merge round then runs exactly over the union.
    Approximate by construction: not byte-identical to the matrix fair
    backend, quality-gated by the constraints bench instead.
    """
    assert index.initial_gains is not None
    if shards < 1:
        raise PodiumError(f"shards must be >= 1, got {shards}")
    shards = min(shards, int(rows.size)) or 1
    perm = np.random.default_rng(shard_seed).permutation(rows.size)
    union: set[int] = set()
    for i in range(shards):
        shard_rows = np.sort(rows[perm[i::shards]])
        picked, _gains, _score = _rows_loop(
            index, shard_rows, 2 * budget, None
        )
        union.update(picked)
    pool_mask = np.zeros(index.n_users, dtype=bool)
    pool_mask[rows] = True
    for key, required in spec.floors:
        if required <= 0:
            continue
        gid = index.group_pos[key]
        members = np.asarray(
            index.members_of_rows(np.asarray([gid], dtype=np.int64)),
            dtype=np.int64,
        )
        members = members[pool_mask[members]]
        order = np.lexsort(
            (members, -np.asarray(index.initial_gains[members]))
        )
        union.update(int(r) for r in members[order[: 2 * required]])
    return np.asarray(sorted(union), dtype=np.int64)


def constrained_select(
    index: InstanceIndex,
    spec: ConstraintSpec,
    budget: int,
    *,
    method: str = "matrix",
    candidates: list[str] | None = None,
    rng: np.random.Generator | None = None,
    shards: int = 4,
    jobs: int | None = 1,
    shard_seed: int = 0,
    epsilon: float = 0.1,
    sample_ratio: float | None = None,
    partition: list[tuple[str, np.ndarray]] | None = None,
) -> ConstrainedSelectionResult:
    """Select under ``spec`` on an :class:`InstanceIndex`.

    Fair mode (floors/ceilings) supports ``method`` ``"matrix"`` (exact
    constrained greedy), ``"stochastic"`` (per-step sampling inside the
    feasible region; ``sample_ratio=1.0`` is exact) and ``"sharded"``
    (unconstrained GreeDi union enriched with floor-group candidates,
    fair merge round — approximate, bench-gated).  Clustered mode
    passes ``method`` through to every per-cluster solve.  Raises
    :class:`~repro.core.errors.InvalidConstraintError` for unknown
    groups and :class:`~repro.core.errors.InfeasibleConstraintError`
    when no selection of this budget can satisfy the floors.
    """
    if budget < 1:
        raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
    if not index.vectorizable:
        raise PodiumError(
            "constrained selection requires a vectorizable index; "
            "big-int or non-integer weights are not supported"
        )
    spec.validate_for_index(index)
    rows = _candidate_rows(index, candidates)

    if spec.clusters is not None:
        picked, gains, score, solves, repair = clustered_select_rows(
            index,
            spec.clusters,
            budget,
            rows,
            method=method,
            partition=partition,
            shards=shards,
            jobs=jobs,
            shard_seed=shard_seed,
            epsilon=epsilon,
            sample_ratio=sample_ratio,
        )
        result = SelectionResult(
            selected=tuple(str(index.users[r]) for r in picked),
            score=score,
            gains=tuple(gains),
            instance=None,
        )
        return ConstrainedSelectionResult(
            result=result,
            spec=spec,
            clusters=tuple(
                ClusterReport(
                    solve.label,
                    solve.size,
                    solve.seats,
                    tuple(str(index.users[r]) for r in solve.rows),
                )
                for solve in solves
            ),
            repair=tuple(str(index.users[r]) for r in repair),
        )

    if method == "matrix":
        picked, gains, score = fair_select_rows(
            index, spec, budget, rows, rng
        )
    elif method == "stochastic":
        pool_size = int(rows.size) if rows is not None else index.n_users
        size = _stochastic_sample_size(
            pool_size, budget, epsilon, sample_ratio
        )
        sample_rng = rng if rng is not None else np.random.default_rng(0)
        picked, gains, score = fair_select_rows(
            index, spec, budget, rows,
            sample_size=size, sample_rng=sample_rng,
        )
    elif method == "sharded":
        pool = (
            rows
            if rows is not None
            else np.arange(index.n_users, dtype=np.int64)
        )
        union = _fair_union_rows(
            index, spec, budget, pool, shards, shard_seed
        )
        picked, gains, score = fair_select_rows(
            index, spec, budget, union, rng
        )
    else:
        raise PodiumError(
            f"unknown constrained selection method {method!r}; use "
            f"'matrix', 'sharded' or 'stochastic'"
        )
    result = SelectionResult(
        selected=tuple(str(index.users[r]) for r in picked),
        score=score,
        gains=tuple(gains),
        instance=None,
    )
    return ConstrainedSelectionResult(
        result=result,
        spec=spec,
        floors=_bound_reports(index, picked, spec.floors, is_floor=True),
        ceilings=_bound_reports(
            index, picked, spec.ceilings, is_floor=False
        ),
    )


__all__ = [
    "BoundReport",
    "ClusterReport",
    "ClusterSolve",
    "ConstrainedSelectionResult",
    "constrained_select",
    "partition_rows",
]
