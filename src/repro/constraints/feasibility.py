"""Shared eligibility logic for customization and constraint solvers.

Customization's contradiction-avoidance rule (paper Def. 6.3: a user
must sit in *some* must-have bucket of every constrained property and
in *no* must-not group) and the fair solver's hard exclusions
(``ceiling = 0`` groups) are the same computation: a boolean
eligibility mask over dense user rows driven by forbidden groups and
per-property required-bucket families.  This module is the single
implementation both consume —
:func:`repro.core.customization._refine_mask_index` delegates here, and
:mod:`repro.constraints.fair` seeds its blocked-row state from the same
mask, which is what pins ``custom_select``'s G₊/G₋ as the degenerate
``floors=1`` / ``ceilings=0`` case of a :class:`ConstraintSpec`.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..core.groups import GroupKey
from ..core.index import InstanceIndex


def keys_by_property(
    keys: Iterable[GroupKey],
) -> dict[str, list[GroupKey]]:
    """Group constraint keys into per-property families.

    Bucket order within a family follows the input; callers that need
    determinism pass sorted keys.
    """
    families: dict[str, list[GroupKey]] = {}
    for key in keys:
        families.setdefault(key.property_label, []).append(key)
    return families


def eligibility_mask(
    index: InstanceIndex,
    forbidden: Iterable[GroupKey] = (),
    required_by_property: dict[str, list[GroupKey]] | None = None,
) -> np.ndarray:
    """Boolean mask over dense rows of users satisfying hard constraints.

    A row is eligible iff it belongs to no ``forbidden`` group and, for
    every property in ``required_by_property``, to at least one of that
    property's listed buckets.  Pure array work — one row gather per
    group — so a memory-mapped index evaluates eligibility without
    decoding a single id string.
    """
    eligible = np.ones(index.n_users, dtype=bool)
    forbidden = list(forbidden)
    if forbidden:
        rows = np.fromiter(
            (index.group_pos[k] for k in forbidden),
            dtype=np.int64,
            count=len(forbidden),
        )
        eligible[index.members_of_rows(rows)] = False
    for keys in (required_by_property or {}).values():
        wanted = np.fromiter(
            (index.group_pos[k] for k in keys),
            dtype=np.int64,
            count=len(keys),
        )
        in_some_bucket = np.zeros(index.n_users, dtype=bool)
        in_some_bucket[index.members_of_rows(wanted)] = True
        eligible &= in_some_bucket
    return eligible


def eligible_user_filter(
    memberships: set[GroupKey],
    forbidden: frozenset[GroupKey],
    required_by_property: dict[str, set[GroupKey]],
) -> bool:
    """Pure-Python twin of :func:`eligibility_mask` for one user.

    ``memberships`` is the user's group-key set; the dict-side
    :func:`repro.core.customization.refine_users` and the constraint
    oracles both call this per user.
    """
    if memberships & forbidden:
        return False
    return all(
        memberships & bucket_keys
        for bucket_keys in required_by_property.values()
    )
