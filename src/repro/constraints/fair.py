"""Fair greedy: coverage maximization under floors and ceilings.

The solver runs the paper's eager greedy recurrence (Algorithm 1) with
a matroid-style feasibility check in front of every pick, in the spirit
of "Diverse Data Selection under Fairness Constraints" (Moumoulidou et
al.):

* **ceilings** — a candidate whose pick would push any constrained
  group past its ceiling is infeasible (``ceiling = 0`` groups are
  excluded outright, exactly customization's must-not rule).
* **floor reserve** — remaining budget is reserved for unmet floors.
  Floors are accounted per property: buckets of one property are
  disjoint (a user carries one bucket per property), so a property
  ``p`` with total unmet deficit ``need_p`` requires ``need_p``
  *distinct* future picks — but one pick can serve a bucket of *every*
  property simultaneously, so the reserve is enforced per property, not
  summed across properties.  A candidate ``u`` is feasible iff, for
  every property ``p``,
  ``need_p − reduction_p(u) ≤ budget − |S| − 1``
  where ``reduction_p(u)`` counts the unmet floor groups of ``p``
  containing ``u``.

The feasible-max-gain pick keeps the greedy exchange argument intact
within the feasible region; floors across *different* properties can in
adversarial overlap structures still dead-end, in which case the solver
raises :class:`InfeasibleConstraintError` naming the largest unmet
floor rather than returning a violating selection (heuristic
feasibility, diagnosed — never silent).  When every floor is met and no
candidate remains feasible (e.g. ceilings sum below the budget), the
solver stops early like an exhausted pool.

Every array decision mirrors :func:`repro.core.greedy._rows_loop`
(int64 gain vector, masked argmax with the first-max = minimal-user-id
tie-break, ``np.subtract.at`` exhausted-group propagation), so the
pure-Python oracle :func:`fair_select_oracle` matches it pick for pick.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InfeasibleConstraintError
from ..core.groups import GroupKey
from ..core.index import InstanceIndex
from ..core.instance import DiversificationInstance
from ..core.scoring import CoverageState
from ..core.weights import Weight
from .feasibility import eligibility_mask, keys_by_property
from .spec import ConstraintSpec


class _FairArrays:
    """Dense-id view of a spec's floors/ceilings against one index."""

    __slots__ = (
        "floor_gids",
        "floor_req",
        "floor_prop",
        "n_props",
        "ceil_gids",
        "ceil_req",
        "ceil_limit",
    )

    def __init__(self, index: InstanceIndex, spec: ConstraintSpec) -> None:
        floors = spec.floors
        self.floor_gids = np.fromiter(
            (index.group_pos[k] for k, _c in floors),
            dtype=np.int64,
            count=len(floors),
        )
        self.floor_req = np.fromiter(
            (c for _k, c in floors), dtype=np.int64, count=len(floors)
        )
        properties = sorted({k.property_label for k, _c in floors})
        prop_pos = {p: i for i, p in enumerate(properties)}
        self.floor_prop = np.fromiter(
            (prop_pos[k.property_label] for k, _c in floors),
            dtype=np.int64,
            count=len(floors),
        )
        self.n_props = len(properties)
        ceilings = spec.ceilings
        self.ceil_gids = np.fromiter(
            (index.group_pos[k] for k, _c in ceilings),
            dtype=np.int64,
            count=len(ceilings),
        )
        self.ceil_req = np.fromiter(
            (c for _k, c in ceilings), dtype=np.int64, count=len(ceilings)
        )
        # Per-group ceiling lookup; unconstrained groups get a limit no
        # selection can reach.
        self.ceil_limit = np.full(index.n_groups, np.iinfo(np.int64).max)
        self.ceil_limit[self.ceil_gids] = self.ceil_req


def diagnose_floors(
    index: InstanceIndex,
    spec: ConstraintSpec,
    budget: int,
    rows: np.ndarray | None = None,
) -> None:
    """Raise a named :class:`InfeasibleConstraintError` for doomed floors.

    Upfront checks with actionable messages: a floor larger than the
    group's membership inside the candidate pool (covers empty groups),
    and one property's floors summing past the budget (its buckets are
    disjoint, so each unmet floor needs distinct picks).  Cross-property
    dead-ends that survive these checks are diagnosed at runtime by the
    solver itself.
    """
    pool_mask: np.ndarray | None = None
    if rows is not None:
        pool_mask = np.zeros(index.n_users, dtype=bool)
        pool_mask[rows] = True
    per_property: dict[str, int] = {}
    for key, required in spec.floors:
        gid = index.group_pos[key]
        members = index.members_of_rows(np.asarray([gid], dtype=np.int64))
        available = (
            len(members)
            if pool_mask is None
            else int(np.count_nonzero(pool_mask[members]))
        )
        if required > available:
            raise InfeasibleConstraintError(
                f"floor {required} for group {key} exceeds its "
                f"{available} candidate member(s)"
            )
        label = key.property_label
        per_property[label] = per_property.get(label, 0) + required
    for label, total in per_property.items():
        if total > budget:
            raise InfeasibleConstraintError(
                f"floors on property {label!r} sum to {total}, more than "
                f"the budget {budget} (its buckets are disjoint)"
            )


def _infeasible_deficit(
    index: InstanceIndex, fa: _FairArrays, floor_def: np.ndarray
) -> InfeasibleConstraintError:
    """Name the unmet floor with the largest remaining deficit."""
    worst = int(np.argmax(floor_def))
    key = index.group_keys[int(fa.floor_gids[worst])]
    return InfeasibleConstraintError(
        f"no feasible candidate remains while floor for group {key} is "
        f"short by {int(floor_def[worst])} member(s); relax the floors, "
        f"raise conflicting ceilings or increase the budget"
    )


def fair_select_rows(
    index: InstanceIndex,
    spec: ConstraintSpec,
    budget: int,
    rows: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    sample_size: int | None = None,
    sample_rng: np.random.Generator | None = None,
) -> tuple[list[int], list[Weight], int]:
    """Fair greedy over dense rows; returns ``(rows, gains, score)``.

    The constrained twin of :func:`repro.core.greedy._rows_loop`: same
    recurrence, same tie-break, with the per-pick argmax restricted to
    feasible candidates.  ``rows`` defaults to every row and must be
    strictly ascending.  ``sample_size`` restricts each step to a
    uniform sample of the *feasible* candidates (stochastic greedy over
    the feasible region); a sample covering them all degenerates to the
    exact argmax, so ``sample_ratio=1.0`` reproduces the deterministic
    fair selections for any ``sample_rng``.
    """
    assert index.wei is not None and index.initial_gains is not None
    if rows is None:
        rows = np.arange(index.n_users, dtype=np.int64)
    else:
        rows = np.asarray(rows, dtype=np.int64)
    fa = _FairArrays(index, spec)
    diagnose_floors(index, spec, budget, rows)
    n = rows.size
    gain = np.asarray(index.initial_gains[rows]).astype(np.int64)
    dense_to_row = np.full(index.n_users, -1, dtype=np.int64)
    dense_to_row[rows] = np.arange(n, dtype=np.int64)
    remaining = np.array(index.cov, dtype=np.int64)
    counts = np.zeros(index.n_groups, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    # Ceiling-0 groups are plain exclusions — the shared eligibility
    # helper customization's must-not rule also runs on.
    zero_keys = [
        index.group_keys[int(g)]
        for g in fa.ceil_gids[fa.ceil_req == 0]
    ]
    if zero_keys:
        eligible = eligibility_mask(index, forbidden=zero_keys)
        active &= eligible[rows]
    picked: list[int] = []
    gains: list[Weight] = []
    score = 0
    for _ in range(budget):
        floor_def = np.maximum(fa.floor_req - counts[fa.floor_gids], 0)
        feasible = active
        if fa.n_props:
            prop_def = np.bincount(
                fa.floor_prop, weights=floor_def, minlength=fa.n_props
            ).astype(np.int64)
            slots_after = budget - len(picked) - 1
            tight = np.flatnonzero(prop_def > slots_after)
            if tight.size:
                feasible = feasible.copy()
                for p in tight:
                    unmet = fa.floor_gids[
                        (fa.floor_prop == p) & (floor_def > 0)
                    ]
                    reduction = np.zeros(n, dtype=np.int64)
                    member_rows = dense_to_row[index.members_of_rows(unmet)]
                    member_rows = member_rows[member_rows >= 0]
                    np.add.at(reduction, member_rows, 1)
                    feasible &= reduction >= (
                        int(prop_def[p]) - slots_after
                    )
        if not feasible.any():
            if int(floor_def.sum()) > 0:
                raise _infeasible_deficit(index, fa, floor_def)
            break  # every floor met, no pick allowed: stop early
        if sample_size is not None:
            candidates = np.flatnonzero(feasible)
            if sample_size < candidates.size:
                assert sample_rng is not None
                pick = sample_rng.choice(
                    candidates.size, size=sample_size, replace=False
                )
                # Sorted sample keeps argmax ties on the minimal user id.
                candidates = candidates[np.sort(pick)]
            row = int(candidates[int(np.argmax(gain[candidates]))])
            realized = int(gain[row])
        elif rng is None:
            masked = np.where(feasible, gain, np.int64(-1))
            row = int(np.argmax(masked))
            realized = int(masked[row])
        else:
            masked = np.where(feasible, gain, np.int64(-1))
            tied = np.flatnonzero(masked == masked.max())
            row = int(tied[int(rng.integers(tied.size))])
            realized = int(masked[row])
        active[row] = False
        dense = int(rows[row])
        picked.append(dense)
        gains.append(realized)
        score += realized

        touched = np.asarray(index.groups_of_row(dense), dtype=np.int64)
        counts[touched] += 1
        newly_full = touched[counts[touched] == fa.ceil_limit[touched]]
        if newly_full.size:
            blocked = dense_to_row[index.members_of_rows(newly_full)]
            blocked = blocked[blocked >= 0]
            active[blocked] = False
        hit = touched[remaining[touched] > 0]
        remaining[hit] -= 1
        exhausted = hit[remaining[hit] == 0]
        if exhausted.size:
            members = np.asarray(
                index.members_of_rows(exhausted), dtype=np.int64
            )
            weights = np.repeat(
                index.wei[exhausted], index.row_sizes(exhausted)
            )
            candidate = dense_to_row[members]
            keep = candidate >= 0
            np.subtract.at(gain, candidate[keep], weights[keep])

    floor_def = np.maximum(fa.floor_req - counts[fa.floor_gids], 0)
    if int(floor_def.sum()) > 0:
        # Budget exhausted with floors unmet can only happen through a
        # reserve-accounting gap (overlapping floor groups inside one
        # property); diagnose rather than return a violating selection.
        raise _infeasible_deficit(index, fa, floor_def)
    return picked, gains, score


def fair_select_oracle(
    instance: DiversificationInstance,
    spec: ConstraintSpec,
    budget: int,
    candidates: list[str] | None = None,
) -> tuple[list[str], list[Weight], Weight]:
    """Pure-Python fair greedy over the dict-based instance.

    The exact-parity twin of :func:`fair_select_rows`: same feasibility
    rules evaluated per user with set arithmetic, same max-gain pick
    with the minimal-user-id tie-break, same diagnosed infeasibility.
    Deliberately does no array work — it is the oracle the parity sweep
    trusts, in the style of the eager/matrix backend pairing.
    """
    groups = instance.groups
    pool = sorted(
        candidates
        if candidates is not None
        else {u for g in groups for u in g.members}
    )
    floors = spec.floor_map
    ceilings = spec.ceiling_map
    members_of = {
        key: groups.group(key).members for key in {*floors, *ceilings}
    }
    pool_set = set(pool)
    per_property: dict[str, int] = {}
    for key, required in floors.items():
        available = len(members_of[key] & pool_set)
        if required > available:
            raise InfeasibleConstraintError(
                f"floor {required} for group {key} exceeds its "
                f"{available} candidate member(s)"
            )
        label = key.property_label
        per_property[label] = per_property.get(label, 0) + required
    for label, total in per_property.items():
        if total > budget:
            raise InfeasibleConstraintError(
                f"floors on property {label!r} sum to {total}, more than "
                f"the budget {budget} (its buckets are disjoint)"
            )
    floor_families = keys_by_property(sorted(floors, key=str))

    state = CoverageState(instance)
    marg: dict[str, Weight] = {u: state.marginal_gain(u) for u in pool}
    remaining = set(pool)
    counts: dict[GroupKey, int] = {key: 0 for key in {*floors, *ceilings}}
    selected: list[str] = []
    gains: list[Weight] = []

    def deficit(key: GroupKey) -> int:
        return max(0, floors[key] - counts[key])

    for _ in range(budget):
        prop_deficit = {
            label: sum(deficit(k) for k in keys)
            for label, keys in floor_families.items()
        }
        slots_after = budget - len(selected) - 1
        feasible: list[str] = []
        for user in remaining:
            blocked = any(
                counts[key] >= limit and user in members_of[key]
                for key, limit in ceilings.items()
            )
            if blocked:
                continue
            reserve_ok = True
            for label, keys in floor_families.items():
                if prop_deficit[label] <= slots_after:
                    continue
                reduction = sum(
                    1
                    for k in keys
                    if deficit(k) > 0 and user in members_of[k]
                )
                if prop_deficit[label] - reduction > slots_after:
                    reserve_ok = False
                    break
            if reserve_ok:
                feasible.append(user)
        if not feasible:
            unmet = [k for k in floors if deficit(k) > 0]
            if unmet:
                worst = max(unmet, key=lambda k: (deficit(k), str(k)))
                raise InfeasibleConstraintError(
                    f"no feasible candidate remains while floor for group "
                    f"{worst} is short by {deficit(worst)} member(s); "
                    f"relax the floors, raise conflicting ceilings or "
                    f"increase the budget"
                )
            break
        best = max(marg[u] for u in feasible)
        chosen = min(u for u in feasible if marg[u] == best)
        remaining.discard(chosen)
        gains.append(state.add(chosen))
        for key in counts:
            if chosen in members_of[key]:
                counts[key] += 1
        for key in state.last_exhausted():
            weight = instance.wei[key]
            for member in groups.group(key).members:
                if member in remaining:
                    marg[member] -= weight
        selected.append(chosen)

    unmet = [k for k in floors if deficit(k) > 0]
    if unmet:
        worst = max(unmet, key=lambda k: (deficit(k), str(k)))
        raise InfeasibleConstraintError(
            f"no feasible candidate remains while floor for group {worst} "
            f"is short by {deficit(worst)} member(s); relax the floors, "
            f"raise conflicting ceilings or increase the budget"
        )
    return selected, gains, state.score
