"""Clustered greedy: budget-split coverage maximization per cluster.

"Maximizing diversity over clustered data" (Zhang & Gionis) motivates
the mode: partition the users, give every cluster a budget share, and
diversify within each cluster so no region of the population is
starved.  The pipeline here:

1. **partition** — ``method="stratified"`` uses the buckets of the
   highest-membership property (plus a remainder cluster for users
   carrying none of them), computed straight off the CSR index;
   ``method="kmeans"`` clusters the dense user × group membership
   matrix with the baselines package's k-means under a fixed seed.
2. **apportion** — the budget is split across clusters by
   largest-remainder proportional apportionment (the same
   :func:`~repro.baselines.stratified.proportional_apportionment` the
   stratified baseline uses), capped at cluster size.
3. **solve per cluster** — coverage greedy on an
   :meth:`InstanceIndex.take_rows` sub-index.  Because ``take_rows``
   keeps groups whole, sub-index gains equal parent gains, so the
   per-cluster solve is exactly the parent greedy restricted to the
   cluster — and it recurses through
   :func:`~repro.core.greedy.select_from_index`, so the
   matrix/sharded/stochastic backends all compose with cluster mode.
   Trailing zero-gain picks are trimmed: a cluster whose coverage value
   is exhausted hands its remaining seats back as slack.
4. **repair** — slack seats are reassigned globally by marginal gain
   conditioned on everything already selected, so no budget is wasted
   on zero-value picks while another cluster still has value left.

With a single cluster the pipeline degenerates to plain matrix greedy:
the solve is the whole pool, and the trimmed zero-gain tail is re-picked
by the repair round in the same minimal-user-id order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.clustering import kmeans
from ..baselines.stratified import proportional_apportionment
from ..core.index import InstanceIndex, _segment_sums
from ..core.instance import DiversificationInstance
from ..core.scoring import CoverageState
from ..core.weights import Weight
from .spec import ClusterSpec


@dataclass(frozen=True)
class ClusterSolve:
    """One cluster's share of a clustered selection."""

    label: str
    size: int
    seats: int
    rows: tuple[int, ...]
    gains: tuple[int, ...]


def partition_rows(
    index: InstanceIndex, cluster_spec: ClusterSpec
) -> list[tuple[str, np.ndarray]]:
    """Partition every dense row into labelled, ascending, disjoint sets.

    Deterministic for a given ``(index, cluster_spec)`` — the property
    the service's per-spec partition cache relies on.
    """
    if cluster_spec.method == "stratified":
        return _stratified_partition(index)
    return _kmeans_partition(index, cluster_spec)


def _stratified_partition(
    index: InstanceIndex,
) -> list[tuple[str, np.ndarray]]:
    """Buckets of the highest-membership property, plus a remainder.

    Ties on total membership break on the lexicographically smallest
    property label.  Users in several buckets of the chosen property
    (possible only for non-bucket group structures) go to the smallest
    dense group id, keeping the result a partition.
    """
    totals: dict[str, int] = {}
    for gid, key in enumerate(index.group_keys):
        size = int(index.g_indptr[gid + 1] - index.g_indptr[gid])
        totals[key.property_label] = (
            totals.get(key.property_label, 0) + size
        )
    if not totals:
        return [("all", np.arange(index.n_users, dtype=np.int64))]
    variable = min(totals, key=lambda p: (-totals[p], p))
    assignment = np.full(index.n_users, -1, dtype=np.int64)
    labelled: list[tuple[str, int]] = []
    for gid, key in enumerate(index.group_keys):
        if key.property_label != variable:
            continue
        members = index.members_of_rows(np.asarray([gid], dtype=np.int64))
        members = np.asarray(members, dtype=np.int64)
        fresh = members[assignment[members] < 0]
        assignment[fresh] = len(labelled)
        labelled.append((f"{variable}::{key.bucket_label}", gid))
    clusters = [
        (label, np.flatnonzero(assignment == position))
        for position, (label, _gid) in enumerate(labelled)
    ]
    rest = np.flatnonzero(assignment < 0)
    if rest.size:
        clusters.append((f"{variable}::<rest>", rest))
    return [(label, rows) for label, rows in clusters if rows.size]


def _kmeans_partition(
    index: InstanceIndex, cluster_spec: ClusterSpec
) -> list[tuple[str, np.ndarray]]:
    """Seeded k-means over the dense user × group membership matrix."""
    if index.n_users == 0:
        return []
    data = index.membership_matrix(range(index.n_groups)).T.astype(
        np.float64
    )
    k = min(cluster_spec.k, index.n_users)
    fitted = kmeans(
        data, k, rng=np.random.default_rng(cluster_spec.seed)
    )
    clusters = [
        (f"kmeans-{c}", np.flatnonzero(fitted.labels == c))
        for c in range(k)
    ]
    return [(label, rows) for label, rows in clusters if rows.size]


def _trim_zero_tail(
    rows: list[int], gains: list[int]
) -> tuple[list[int], list[int]]:
    """Drop trailing zero-gain picks — their seats return as slack."""
    keep = len(gains)
    while keep and gains[keep - 1] == 0:
        keep -= 1
    return rows[:keep], gains[:keep]


def _conditioned_rows_loop(
    index: InstanceIndex,
    rows: np.ndarray,
    budget: int,
    remaining: np.ndarray,
) -> tuple[list[int], list[int], int]:
    """Greedy over ``rows`` conditioned on pre-consumed group coverage.

    The repair round's engine: ``remaining`` carries each group's
    leftover coverage requirement after the per-cluster picks, so every
    gain here is the true marginal gain relative to the combined
    selection.  Same recurrence and tie-break as
    :func:`~repro.core.greedy._rows_loop`.
    """
    assert index.wei is not None
    rows = np.asarray(rows, dtype=np.int64)
    n = rows.size
    effective = np.where(remaining > 0, index.wei, 0).astype(np.int64)
    gain = _segment_sums(effective[index.u_indices], index.u_indptr)[rows]
    dense_to_row = np.full(index.n_users, -1, dtype=np.int64)
    dense_to_row[rows] = np.arange(n, dtype=np.int64)
    remaining = np.array(remaining, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    picked: list[int] = []
    gains: list[int] = []
    score = 0
    for _ in range(budget):
        if not active.any():
            break
        masked = np.where(active, gain, np.int64(-1))
        row = int(np.argmax(masked))
        realized = int(masked[row])
        active[row] = False
        picked.append(int(rows[row]))
        gains.append(realized)
        score += realized
        touched = np.asarray(
            index.groups_of_row(int(rows[row])), dtype=np.int64
        )
        hit = touched[remaining[touched] > 0]
        remaining[hit] -= 1
        exhausted = hit[remaining[hit] == 0]
        if exhausted.size:
            members = np.asarray(
                index.members_of_rows(exhausted), dtype=np.int64
            )
            weights = np.repeat(
                index.wei[exhausted], index.row_sizes(exhausted)
            )
            candidate = dense_to_row[members]
            keep = candidate >= 0
            np.subtract.at(gain, candidate[keep], weights[keep])
    return picked, gains, score


def _row_hits(index: InstanceIndex, rows: list[int]) -> np.ndarray:
    """``|S ∩ G|`` per group for a dense-row selection."""
    if not rows:
        return np.zeros(index.n_groups, dtype=np.int64)
    parts = [
        np.asarray(index.groups_of_row(r), dtype=np.int64) for r in rows
    ]
    return np.bincount(
        np.concatenate(parts), minlength=index.n_groups
    ).astype(np.int64)


def clustered_select_rows(
    index: InstanceIndex,
    cluster_spec: ClusterSpec,
    budget: int,
    rows: np.ndarray | None = None,
    *,
    method: str = "matrix",
    partition: list[tuple[str, np.ndarray]] | None = None,
    shards: int = 4,
    jobs: int | None = 1,
    shard_seed: int = 0,
    epsilon: float = 0.1,
    sample_ratio: float | None = None,
) -> tuple[list[int], list[int], int, list[ClusterSolve], list[int]]:
    """Clustered greedy over dense rows.

    Returns ``(picked_rows, gains, score, cluster_solves, repair_rows)``
    where ``picked_rows`` concatenates the per-cluster picks (partition
    order) and the repair picks, ``gains`` are the per-solve realized
    gains (within-cluster for the cluster picks, globally conditioned
    for the repair picks) and ``score`` is the *exact* combined
    ``score_G`` of the whole selection.  Deterministic — per-cluster
    solves and the repair round all run without an rng.

    ``partition`` lets callers supply a precomputed (cached) partition;
    it must come from :func:`partition_rows` on the same index.
    """
    from ..core.greedy import select_from_index

    assert index.wei is not None
    if partition is None:
        partition = partition_rows(index, cluster_spec)
    if rows is not None:
        pool = np.asarray(rows, dtype=np.int64)
        partition = [
            (label, np.intersect1d(cluster, pool))
            for label, cluster in partition
        ]
        partition = [
            (label, cluster) for label, cluster in partition if cluster.size
        ]
    else:
        pool = np.arange(index.n_users, dtype=np.int64)
    sizes = [int(cluster.size) for _label, cluster in partition]
    seats = proportional_apportionment(sizes, budget)

    picked: list[int] = []
    gains: list[int] = []
    solves: list[ClusterSolve] = []
    for (label, cluster), share in zip(partition, seats):
        if share == 0:
            solves.append(
                ClusterSolve(label, int(cluster.size), 0, (), ())
            )
            continue
        sub = index.take_rows(cluster)
        result = select_from_index(
            sub,
            share,
            method=method,
            shards=shards,
            jobs=jobs,
            shard_seed=shard_seed,
            epsilon=epsilon,
            sample_ratio=sample_ratio,
        )
        solve_rows = [index.user_pos[u] for u in result.selected]
        solve_rows, solve_gains = _trim_zero_tail(
            solve_rows, [int(g) for g in result.gains]
        )
        solves.append(
            ClusterSolve(
                label,
                int(cluster.size),
                share,
                tuple(solve_rows),
                tuple(solve_gains),
            )
        )
        picked.extend(solve_rows)
        gains.extend(solve_gains)

    repair: list[int] = []
    slack = budget - len(picked)
    if slack > 0:
        taken = set(picked)
        leftover = np.asarray(
            [r for r in pool.tolist() if r not in taken], dtype=np.int64
        )
        if leftover.size:
            hits = _row_hits(index, picked)
            remaining = np.maximum(index.cov - hits, 0)
            repair, repair_gains, _ = _conditioned_rows_loop(
                index, leftover, slack, remaining
            )
            picked.extend(repair)
            gains.extend(repair_gains)

    hits = _row_hits(index, picked)
    score = int(np.sum(index.wei * np.minimum(hits, index.cov)))
    return picked, gains, score, solves, repair


def clustered_select_oracle(
    instance: DiversificationInstance,
    partition: list[tuple[str, list[str]]],
    budget: int,
) -> tuple[list[str], list[Weight], Weight]:
    """Pure-Python clustered greedy over the dict-based instance.

    The exact-parity twin of :func:`clustered_select_rows` with
    ``method="matrix"``: the same largest-remainder apportionment, an
    eager per-cluster greedy with the trailing zero-gain trim, and a
    conditioned eager repair round — all on dict/set structures, no
    arrays.  ``partition`` carries user-id lists (the id-decoded output
    of :func:`partition_rows`, or any partition under test).
    """
    seats = proportional_apportionment(
        [len(members) for _label, members in partition], budget
    )
    selected: list[str] = []
    gains: list[Weight] = []
    for (_label, members), share in zip(partition, seats):
        if share == 0:
            continue
        state = CoverageState(instance)
        pool = sorted(members)
        marg: dict[str, Weight] = {
            u: state.marginal_gain(u) for u in pool
        }
        remaining = set(pool)
        cluster_gains: list[Weight] = []
        cluster_picks: list[str] = []
        for _ in range(share):
            if not remaining:
                break
            best = max(marg[u] for u in remaining)
            chosen = min(u for u in remaining if marg[u] == best)
            remaining.discard(chosen)
            cluster_gains.append(state.add(chosen))
            for key in state.last_exhausted():
                weight = instance.wei[key]
                for member in instance.groups.group(key).members:
                    if member in remaining:
                        marg[member] -= weight
            cluster_picks.append(chosen)
        while cluster_gains and cluster_gains[-1] == 0:
            cluster_gains.pop()
            cluster_picks.pop()
        selected.extend(cluster_picks)
        gains.extend(cluster_gains)

    slack = budget - len(selected)
    if slack > 0:
        state = CoverageState(instance)
        for user in selected:
            state.add(user)
        taken = set(selected)
        leftover = sorted(
            u
            for _label, members in partition
            for u in members
            if u not in taken
        )
        for _ in range(slack):
            if not leftover:
                break
            best = max(state.marginal_gain(u) for u in leftover)
            chosen = min(
                u for u in leftover if state.marginal_gain(u) == best
            )
            leftover.remove(chosen)
            gains.append(state.add(chosen))
            selected.append(chosen)

    final = CoverageState(instance)
    for user in selected:
        final.add(user)
    return selected, gains, final.score
