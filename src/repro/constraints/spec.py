"""Constraint specifications for constrained selection.

A :class:`ConstraintSpec` declares what a selection must look like on
top of the coverage objective:

* **floors** — hard lower bounds per group: the selection must contain
  at least ``floor(G)`` members of ``G``.  Generalizes the must-have
  constraint ``G₊`` of customization feedback (Def. 6.1), which is the
  degenerate ``floor = 1`` case.
* **ceilings** — hard upper bounds per group: the selection may contain
  at most ``ceiling(G)`` members of ``G``.  ``ceiling = 0`` is exactly
  the must-not constraint ``G₋``.
* **clusters** — a :class:`ClusterSpec` switching the solver to
  cluster-budgeted mode: partition the users, apportion the budget per
  cluster by largest remainder, run coverage greedy per cluster
  ("Maximizing diversity over clustered data", Zhang & Gionis).

Floors/ceilings and cluster mode are mutually exclusive in this
version — combining demographic quotas with cluster budgets needs a
per-cluster quota model that is out of scope here and rejected with a
clear error instead of silently ignored.

Specs are frozen and hashable: the spec object *is* the cache identity
the service uses to memoize derived artifacts (cluster partitions), the
same way configurations key the artifact cache.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from ..core.errors import InvalidConstraintError
from ..core.groups import GroupKey
from ..core.index import InstanceIndex

#: Partition methods :func:`repro.constraints.clustered.partition_rows`
#: understands.
CLUSTER_METHODS = ("stratified", "kmeans")


@dataclass(frozen=True)
class ClusterSpec:
    """How to partition users and split the budget across clusters.

    ``method="stratified"`` partitions on the buckets of the
    highest-membership property (plus a remainder cluster for users in
    none of them) — computable straight off the CSR index.
    ``method="kmeans"`` clusters the dense user × group membership
    matrix with the baselines package's k-means under a fixed ``seed``,
    into ``k`` clusters.
    """

    method: str = "stratified"
    k: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.method not in CLUSTER_METHODS:
            raise InvalidConstraintError(
                f"unknown cluster method {self.method!r}; "
                f"use one of {CLUSTER_METHODS}"
            )
        if self.k < 1:
            raise InvalidConstraintError(
                f"cluster count k must be >= 1, got {self.k}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {"method": self.method, "k": self.k, "seed": self.seed}


@dataclass(frozen=True)
class ConstraintSpec:
    """Frozen, hashable constraint declaration for one selection.

    ``floors`` and ``ceilings`` are canonically sorted ``(key, count)``
    tuples so two specs describing the same constraints compare (and
    hash) equal regardless of construction order — the property the
    service's per-spec artifact cache relies on.  Use :meth:`build` to
    construct from mappings.
    """

    floors: tuple[tuple[GroupKey, int], ...] = ()
    ceilings: tuple[tuple[GroupKey, int], ...] = ()
    clusters: ClusterSpec | None = None

    def __post_init__(self) -> None:
        for name, entries in (
            ("floor", self.floors),
            ("ceiling", self.ceilings),
        ):
            seen: set[GroupKey] = set()
            for key, count in entries:
                if key in seen:
                    raise InvalidConstraintError(
                        f"duplicate {name} for group {key}"
                    )
                seen.add(key)
                if count < 0:
                    raise InvalidConstraintError(
                        f"{name} for group {key} must be >= 0, got {count}"
                    )
        floor_map = dict(self.floors)
        for key, limit in self.ceilings:
            required = floor_map.get(key, 0)
            if limit < required:
                raise InvalidConstraintError(
                    f"ceiling {limit} for group {key} is below its "
                    f"floor {required}"
                )
        if self.clusters is not None and (self.floors or self.ceilings):
            raise InvalidConstraintError(
                "cluster mode cannot be combined with floors/ceilings in "
                "this version; submit them as separate selections"
            )

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        floors: Mapping[GroupKey, int] | None = None,
        ceilings: Mapping[GroupKey, int] | None = None,
        clusters: ClusterSpec | None = None,
    ) -> "ConstraintSpec":
        """Canonicalize mappings into a sorted, hashable spec."""
        return cls(
            floors=tuple(
                sorted(
                    (floors or {}).items(),
                    key=lambda e: (e[0].property_label, e[0].bucket_label),
                )
            ),
            ceilings=tuple(
                sorted(
                    (ceilings or {}).items(),
                    key=lambda e: (e[0].property_label, e[0].bucket_label),
                )
            ),
            clusters=clusters,
        )

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ConstraintSpec":
        """Parse the JSON shape the service's ``constraints`` block uses.

        ``{"floors": [[property, bucket, count], ...],
           "ceilings": [[property, bucket, count], ...],
           "clusters": {"method": ..., "k": ..., "seed": ...}}``
        """
        if not isinstance(document, Mapping):
            raise InvalidConstraintError(
                "constraints must be a JSON object with optional "
                "'floors', 'ceilings' and 'clusters' fields"
            )
        unknown = set(document) - {"floors", "ceilings", "clusters"}
        if unknown:
            raise InvalidConstraintError(
                f"unknown constraints fields: {sorted(unknown)}"
            )
        clusters = None
        raw_clusters = document.get("clusters")
        if raw_clusters is not None:
            if not isinstance(raw_clusters, Mapping):
                raise InvalidConstraintError(
                    "clusters must be an object like "
                    "{'method': 'stratified'|'kmeans', 'k': int, 'seed': int}"
                )
            extra = set(raw_clusters) - {"method", "k", "seed"}
            if extra:
                raise InvalidConstraintError(
                    f"unknown clusters fields: {sorted(extra)}"
                )
            try:
                clusters = ClusterSpec(
                    method=str(raw_clusters.get("method", "stratified")),
                    k=int(raw_clusters.get("k", 4)),
                    seed=int(raw_clusters.get("seed", 0)),
                )
            except (TypeError, ValueError) as exc:
                if isinstance(exc, InvalidConstraintError):
                    raise
                raise InvalidConstraintError(
                    f"malformed clusters block: {exc}"
                ) from exc
        return cls.build(
            floors=_parse_bounds(document.get("floors"), "floors"),
            ceilings=_parse_bounds(document.get("ceilings"), "ceilings"),
            clusters=clusters,
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialize back to the :meth:`from_dict` JSON shape."""
        document: dict[str, Any] = {}
        if self.floors:
            document["floors"] = [
                [k.property_label, k.bucket_label, count]
                for k, count in self.floors
            ]
        if self.ceilings:
            document["ceilings"] = [
                [k.property_label, k.bucket_label, count]
                for k, count in self.ceilings
            ]
        if self.clusters is not None:
            document["clusters"] = self.clusters.to_dict()
        return document

    # -- accessors ---------------------------------------------------------

    @property
    def mode(self) -> str:
        """``"clustered"`` or ``"fair"`` (floors/ceilings, possibly empty)."""
        return "clustered" if self.clusters is not None else "fair"

    @property
    def floor_map(self) -> dict[GroupKey, int]:
        return dict(self.floors)

    @property
    def ceiling_map(self) -> dict[GroupKey, int]:
        return dict(self.ceilings)

    @property
    def is_empty(self) -> bool:
        """True when the spec constrains nothing at all."""
        return not self.floors and not self.ceilings and self.clusters is None

    # -- validation against an index ---------------------------------------

    def validate_for_index(
        self, index: InstanceIndex, budget: int | None = None
    ) -> None:
        """Check every referenced group exists (and floors can be met).

        Raises :class:`InvalidConstraintError` for unknown groups and —
        when ``budget`` is given — :class:`InfeasibleConstraintError`
        (via :func:`~repro.constraints.fair.diagnose_floors`) for floors
        no selection of that budget could satisfy.  Cluster-mode specs
        only need the group-existence check.
        """
        known = index.group_pos
        for name, entries in (
            ("floors", self.floors),
            ("ceilings", self.ceilings),
        ):
            missing = [key for key, _count in entries if key not in known]
            if missing:
                raise InvalidConstraintError(
                    f"{name} reference unknown groups: "
                    f"{[str(k) for k in missing[:3]]}"
                )
        if budget is not None and self.floors:
            from .fair import diagnose_floors

            diagnose_floors(index, self, budget)


def _parse_bounds(
    raw: Any, name: str
) -> dict[GroupKey, int]:
    """Parse a ``[[property, bucket, count], ...]`` JSON list."""
    if raw is None:
        return {}
    if not isinstance(raw, list):
        raise InvalidConstraintError(
            f"{name} must be a list of [property, bucket, count] triples"
        )
    bounds: dict[GroupKey, int] = {}
    for entry in raw:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 3
            or not isinstance(entry[0], str)
            or not isinstance(entry[1], str)
            or isinstance(entry[2], bool)
            or not isinstance(entry[2], int)
        ):
            raise InvalidConstraintError(
                f"{name} must be a list of [property, bucket, count] "
                f"triples, got entry {entry!r}"
            )
        key = GroupKey(entry[0], entry[1])
        if key in bounds:
            raise InvalidConstraintError(f"duplicate {name} entry for {key}")
        bounds[key] = entry[2]
    return bounds
