"""Selection baselines: Random, Clustering, Distance-based, Optimal."""

from .base import OptimalSelector, PodiumSelector, Selector
from .clustering import ClusteringSelector, KMeansResult, kmeans
from .distance import DistanceSelector, jaccard_distance, mean_pairwise_intersection
from .random_sel import RandomSelector
from .stratified import StratifiedSelector, proportional_apportionment

#: Baselines in the order the paper's figures list them.
DEFAULT_SELECTORS = (
    PodiumSelector,
    RandomSelector,
    ClusteringSelector,
    DistanceSelector,
)

__all__ = [
    "OptimalSelector",
    "PodiumSelector",
    "Selector",
    "ClusteringSelector",
    "KMeansResult",
    "kmeans",
    "DistanceSelector",
    "jaccard_distance",
    "mean_pairwise_intersection",
    "RandomSelector",
    "StratifiedSelector",
    "proportional_apportionment",
    "DEFAULT_SELECTORS",
]
