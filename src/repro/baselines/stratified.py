"""Stratified-sampling baseline (paper §2 / Table 1, survey methodology).

Surveyors define a *small* set of non-overlapping strata and sample each
proportionally (Def. 2.1).  To emulate that practice on a profile
repository, this selector:

1. picks the single highest-support property as the stratification
   variable (surveys stratify on one or two demographics);
2. forms strata from its buckets plus an "unknown" stratum for users
   lacking the property — non-overlapping by construction;
3. allocates the budget to strata by largest-remainder proportional
   apportionment and samples uniformly within each stratum.

Included to make Table 1's comparison executable: stratified sampling is
coverage-based, intrinsic and explainable, but cannot exploit more than a
handful of dimensions — which is exactly where Podium's relaxed coverage
objective takes over.
"""

from __future__ import annotations

import numpy as np

from ..core.buckets import assign_bucket_indices, split_scores
from ..core.errors import InvalidBudgetError, PodiumError
from ..core.instance import DiversificationInstance
from ..core.profiles import UserRepository
from .base import Selector


def proportional_apportionment(
    sizes: list[int], budget: int
) -> list[int]:
    """Largest-remainder (Hamilton) apportionment of ``budget`` seats.

    Strata with zero members get zero seats; each non-empty stratum's
    seats never exceed its size (seats lost to that cap are re-assigned
    by largest remainder among strata with spare capacity).
    """
    if budget < 0:
        raise InvalidBudgetError(f"budget must be >= 0, got {budget}")
    total = sum(sizes)
    if total == 0 or budget == 0:
        return [0] * len(sizes)
    budget = min(budget, total)
    quotas = [budget * size / total for size in sizes]
    seats = [min(int(q), size) for q, size in zip(quotas, sizes)]
    while sum(seats) < budget:
        remainders = [
            (quotas[i] - seats[i]) if seats[i] < sizes[i] else -1.0
            for i in range(len(sizes))
        ]
        best = int(np.argmax(remainders))
        if remainders[best] < 0:
            break
        seats[best] += 1
    return seats


class StratifiedSelector(Selector):
    """Single-variable proportional stratified sampling."""

    name = "Stratified"

    def __init__(
        self, strata_buckets: int = 3, method: str = "vector"
    ) -> None:
        if method not in ("vector", "python"):
            raise PodiumError(
                f"method must be 'vector' or 'python', got {method!r}"
            )
        self._strata_buckets = strata_buckets
        self._method = method

    def _stratify(
        self, repository: UserRepository
    ) -> list[list[str]]:
        """Partition users into strata (identical lists on both methods).

        ``"vector"`` assigns every carrier to its bucket with one
        ``searchsorted`` (first-containing-bucket fallback when the
        partition does not tile ``[0, 1]``); ``"python"`` is the original
        per-user loop.  Both walk ``scores_for`` order, so the strata —
        and therefore the rng draws in :meth:`select` — are identical.
        """
        if not repository.property_labels:
            return [repository.user_ids]
        variable = max(repository.property_labels, key=repository.support)
        user_ids, scores = repository.scores_for(variable)
        scores = np.asarray(scores)
        buckets = split_scores(
            scores, k=self._strata_buckets, strategy="quantile"
        )
        if self._method == "vector":
            assignment = assign_bucket_indices(buckets, scores)
            if assignment is None:
                assignment = np.full(len(scores), -1, dtype=np.int64)
                for position, bucket in enumerate(buckets):
                    if bucket.closed_hi:
                        mask = (scores >= bucket.lo) & (scores <= bucket.hi)
                    else:
                        mask = (scores >= bucket.lo) & (scores < bucket.hi)
                    assignment[mask & (assignment < 0)] = position
            ids = np.asarray(user_ids, dtype=object)
            strata = [
                list(ids[assignment == position])
                for position in range(len(buckets))
            ]
            carriers = set(user_ids)
        else:
            strata = [[] for _ in buckets]
            carriers = set()
            for user_id, score in zip(user_ids, scores):
                carriers.add(user_id)
                for index, bucket in enumerate(buckets):
                    if bucket.contains(float(score)):
                        strata[index].append(user_id)
                        break
        unknown = [u for u in repository.user_ids if u not in carriers]
        if unknown:
            strata.append(unknown)
        return [s for s in strata if s]

    def select(
        self,
        repository: UserRepository,
        instance: DiversificationInstance,
        budget: int,
        rng: np.random.Generator | None = None,
    ) -> list[str]:
        if budget < 1:
            raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
        rng = rng or np.random.default_rng()
        strata = self._stratify(repository)
        seats = proportional_apportionment(
            [len(s) for s in strata], budget
        )
        selected: list[str] = []
        for stratum, count in zip(strata, seats):
            if count == 0:
                continue
            picked = rng.choice(len(stratum), size=count, replace=False)
            selected.extend(stratum[int(i)] for i in picked)
        return selected
