"""Common interface for all user-selection algorithms (paper §8.3).

The experiment harness runs Podium and each baseline through the same
:class:`Selector` interface: given the repository, the diversification
instance (which only Podium and Optimal actually consult) and a budget,
return an ordered list of selected user ids.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.greedy import greedy_select
from ..core.instance import DiversificationInstance
from ..core.optimal import optimal_select
from ..core.profiles import UserRepository


class Selector(ABC):
    """A user-selection strategy under a fixed budget."""

    #: Display name used in experiment tables and figures.
    name: str = ""

    @abstractmethod
    def select(
        self,
        repository: UserRepository,
        instance: DiversificationInstance,
        budget: int,
        rng: np.random.Generator | None = None,
    ) -> list[str]:
        """Return up to ``budget`` selected user ids."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PodiumSelector(Selector):
    """The paper's algorithm: greedy coverage maximization (Algorithm 1).

    Defaults to the vectorized ``matrix`` backend; instances whose
    weights exceed int64 (EBS big-ints) transparently take the exact
    lazy path inside :func:`~repro.core.greedy.greedy_select`, so the
    selected sequence is backend-independent either way.  Extra keyword
    ``options`` pass through to :func:`~repro.core.greedy.greedy_select`
    — e.g. ``shards``/``jobs``/``shard_seed`` for the sharded backend or
    ``epsilon``/``sample_ratio`` for the stochastic one.
    """

    name = "Podium"

    def __init__(self, method: str = "matrix", **options) -> None:
        self._method = method
        self._options = options

    def select(
        self,
        repository: UserRepository,
        instance: DiversificationInstance,
        budget: int,
        rng: np.random.Generator | None = None,
    ) -> list[str]:
        result = greedy_select(
            repository,
            instance,
            budget,
            method=self._method,
            rng=rng,
            **self._options,
        )
        return list(result.selected)


class OptimalSelector(Selector):
    """Exhaustive optimal selection — tiny populations only (§8.3)."""

    name = "Optimal"

    def select(
        self,
        repository: UserRepository,
        instance: DiversificationInstance,
        budget: int,
        rng: np.random.Generator | None = None,
    ) -> list[str]:
        return list(optimal_select(repository, instance, budget).selected)
