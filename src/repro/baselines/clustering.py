"""Clustering baseline: k-means + near-mean representatives (paper §8.3).

The paper clusters the dense user-property matrix into ``B`` clusters with
k-means (their runs use scikit-learn; we implement k-means++ seeding and
Lloyd iterations from scratch on numpy) and picks the user closest to each
cluster mean as its representative.  Its known drawback — clusters carry
no intuitive explanation — is exactly what Podium's simple groups avoid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import InvalidBudgetError
from ..core.instance import DiversificationInstance
from ..core.profiles import UserRepository
from .base import Selector


@dataclass(frozen=True)
class KMeansResult:
    """Fitted k-means state: centers, assignment and inertia."""

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int


def _plus_plus_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D² sampling."""
    n = len(data)
    centers = np.empty((k, data.shape[1]))
    centers[0] = data[int(rng.integers(n))]
    closest_sq = np.full(n, np.inf)
    for c in range(1, k):
        diff = data - centers[c - 1]
        closest_sq = np.minimum(closest_sq, np.einsum("ij,ij->i", diff, diff))
        total = closest_sq.sum()
        if total <= 0:
            # Every point coincides with a chosen center, so D² sampling
            # is undefined.  Fill the remaining slots with *distinct*
            # resampled points (without replacement while the population
            # allows) rather than one point repeated, which would leave
            # k - c centers permanently identical.
            remaining = k - c
            picks = rng.choice(n, size=remaining, replace=n < remaining)
            centers[c:] = data[picks]
            return centers
        probs = closest_sq / total
        centers[c] = data[int(rng.choice(n, p=probs))]
    return centers


def kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator | None = None,
    max_iter: int = 100,
    tol: float = 1e-6,
    n_init: int = 1,
) -> KMeansResult:
    """Lloyd's k-means with k-means++ initialization.

    ``n_init`` reruns the whole algorithm from fresh seeds and keeps the
    lowest-inertia fit — scikit-learn's default behaviour (``n_init=10``),
    which the paper's clustering baseline inherits.  Empty clusters are
    re-seeded with the point farthest from its center, so the result
    always has exactly ``k`` clusters when ``k <= n``.
    """
    if n_init < 1:
        raise InvalidBudgetError(f"n_init must be >= 1, got {n_init}")
    rng = rng or np.random.default_rng()
    best: KMeansResult | None = None
    for _ in range(n_init):
        candidate = _kmeans_once(data, k, rng, max_iter, tol)
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    return best


def _kmeans_once(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iter: int,
    tol: float,
) -> KMeansResult:
    data = np.asarray(data, dtype=float)
    n = len(data)
    if not 1 <= k <= n:
        raise InvalidBudgetError(f"k must be in [1, {n}], got {k}")
    centers = _plus_plus_init(data, k, rng)

    labels = np.zeros(n, dtype=int)
    for iteration in range(1, max_iter + 1):
        # Assignment step (squared Euclidean, via the expansion trick).
        dists = (
            np.einsum("ij,ij->i", data, data)[:, None]
            - 2.0 * data @ centers.T
            + np.einsum("ij,ij->i", centers, centers)[None, :]
        )
        labels = np.argmin(dists, axis=1)
        point_dists = dists[np.arange(n), labels]

        new_centers = centers.copy()
        for c in range(k):
            mask = labels == c
            if mask.any():
                new_centers[c] = data[mask].mean(axis=0)
            else:  # re-seed an empty cluster with the worst-fit point
                new_centers[c] = data[int(np.argmax(point_dists))]
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if shift < tol:
            break

    dists = (
        np.einsum("ij,ij->i", data, data)[:, None]
        - 2.0 * data @ centers.T
        + np.einsum("ij,ij->i", centers, centers)[None, :]
    )
    labels = np.argmin(dists, axis=1)
    inertia = float(dists[np.arange(n), labels].sum())
    return KMeansResult(centers, labels, inertia, iteration)


class ClusteringSelector(Selector):
    """k-means the dense profile matrix; pick each cluster's nearest user.

    ``n_init=10`` matches the scikit-learn default the paper's runs used;
    it is the dominant cost and the reason clustering trails Podium by
    roughly an order of magnitude in Figs. 5–6.
    """

    name = "Clustering"

    def __init__(self, max_iter: int = 100, n_init: int = 10) -> None:
        self._max_iter = max_iter
        self._n_init = n_init

    def select(
        self,
        repository: UserRepository,
        instance: DiversificationInstance,
        budget: int,
        rng: np.random.Generator | None = None,
    ) -> list[str]:
        if budget < 1:
            raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
        rng = rng or np.random.default_rng()
        user_ids, _, data = repository.matrix()
        k = min(budget, len(user_ids))
        fitted = kmeans(
            data, k, rng=rng, max_iter=self._max_iter, n_init=self._n_init
        )

        selected: list[str] = []
        taken: set[int] = set()
        for c in range(k):
            mask = fitted.labels == c
            members = np.flatnonzero(mask)
            if len(members) == 0:
                continue
            diff = data[members] - fitted.centers[c]
            order = members[np.argsort(np.einsum("ij,ij->i", diff, diff))]
            # Nearest-to-mean member not already chosen by another cluster.
            for idx in order:
                if int(idx) not in taken:
                    taken.add(int(idx))
                    selected.append(user_ids[int(idx)])
                    break
        return selected
