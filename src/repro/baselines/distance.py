"""Distance-based diversification baseline — the S-Model (paper §8.3).

Represents the distance-based family ([Wu et al. 2015] S-Model): greedily
grow a subset maximizing pairwise Jaccard *distances* between the selected
users' property sets.  Two objectives are provided:

* ``"sum"`` (default) — each step adds the user with the largest summed
  distance to the current subset (max-sum dispersion greedy);
* ``"min"`` — each step adds the user maximizing the minimum distance to
  the subset (max-min dispersion greedy).

As the paper observes (§8.4), this family explicitly avoids property
overlap between the selected users — which is precisely why it under-
covers complex (intersection) groups relative to Podium.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InvalidBudgetError, PodiumError
from ..core.instance import DiversificationInstance
from ..core.profiles import UserRepository
from .base import Selector


def jaccard_distance(a: frozenset[str], b: frozenset[str]) -> float:
    """1 − |A ∩ B| / |A ∪ B|; two empty sets have distance 0."""
    union = len(a | b)
    if union == 0:
        return 0.0
    return 1.0 - len(a & b) / union


def mean_pairwise_intersection(
    repository: UserRepository, user_ids: list[str]
) -> float:
    """Average ``|P_u ∩ P_v|`` over selected pairs (the §8.4 diagnostic:
    ~2 for distance-based versus tens for Podium on Yelp)."""
    props = [repository.profile(u).properties for u in user_ids]
    if len(props) < 2:
        return 0.0
    total, pairs = 0, 0
    for i in range(len(props)):
        for j in range(i + 1, len(props)):
            total += len(props[i] & props[j])
            pairs += 1
    return total / pairs


class DistanceSelector(Selector):
    """Greedy pairwise-Jaccard dispersion over user property sets."""

    name = "Distance"

    def __init__(self, objective: str = "sum") -> None:
        if objective not in ("sum", "min"):
            raise PodiumError(
                f"objective must be 'sum' or 'min', got {objective!r}"
            )
        self._objective = objective

    def select(
        self,
        repository: UserRepository,
        instance: DiversificationInstance,
        budget: int,
        rng: np.random.Generator | None = None,
    ) -> list[str]:
        if budget < 1:
            raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
        user_ids = repository.user_ids
        if not user_ids:
            return []
        props = {u: repository.profile(u).properties for u in user_ids}

        # Seed with the user of the largest property set: the conventional
        # dispersion-greedy anchor (deterministic unless an rng is given).
        remaining = set(user_ids)
        if rng is None:
            seed = max(user_ids, key=lambda u: (len(props[u]), u))
        else:
            seed = user_ids[int(rng.integers(len(user_ids)))]
        selected = [seed]
        remaining.discard(seed)

        # Track each candidate's aggregate distance to the subset.
        agg = {
            u: jaccard_distance(props[u], props[seed]) for u in remaining
        }
        while remaining and len(selected) < budget:
            if self._objective == "sum":
                best = max(agg[u] for u in remaining)
            else:
                best = max(agg[u] for u in remaining)
            tied = [u for u in remaining if agg[u] == best]
            chosen = min(tied) if rng is None else tied[int(rng.integers(len(tied)))]
            selected.append(chosen)
            remaining.discard(chosen)
            for u in remaining:
                d = jaccard_distance(props[u], props[chosen])
                if self._objective == "sum":
                    agg[u] += d
                else:
                    agg[u] = min(agg[u], d)
        return selected
