"""Distance-based diversification baseline — the S-Model (paper §8.3).

Represents the distance-based family ([Wu et al. 2015] S-Model): greedily
grow a subset maximizing pairwise Jaccard *distances* between the selected
users' property sets.  Two objectives are provided:

* ``"sum"`` (default) — each step adds the user with the largest summed
  distance to the current subset (max-sum dispersion greedy);
* ``"min"`` — each step adds the user maximizing the minimum distance to
  the subset (max-min dispersion greedy).

As the paper observes (§8.4), this family explicitly avoids property
overlap between the selected users — which is precisely why it under-
covers complex (intersection) groups relative to Podium.

Two implementations share the algorithm:

* ``"vector"`` (default) routes the pairwise arithmetic through the
  user × property incidence matrix of
  :func:`~repro.core.index.property_incidence`: each greedy step updates
  the whole distance vector with one matrix–vector product
  (``incidence @ incidence[chosen]`` gives every ``|P_u ∩ P_chosen|`` at
  once) instead of one Python set intersection per remaining user;
* ``"legacy"`` is the original per-pair ``frozenset`` loop, kept as the
  parity oracle.

Both perform the identical IEEE-754 operations per candidate in the
identical order (intersection and union counts are exact integers in
float64), so selections — including seeded RNG tie-breaks — are
byte-identical; ``tests/baselines/test_distance_parity.py`` sweeps the
guarantee the way ``tests/core/test_backend_parity.py`` does for the
greedy backends.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InvalidBudgetError, PodiumError
from ..core.index import property_incidence
from ..core.instance import DiversificationInstance
from ..core.profiles import UserRepository
from .base import Selector


def jaccard_distance(a: frozenset[str], b: frozenset[str]) -> float:
    """1 − |A ∩ B| / |A ∪ B|; two empty sets have distance 0."""
    union = len(a | b)
    if union == 0:
        return 0.0
    return 1.0 - len(a & b) / union


def mean_pairwise_intersection(
    repository: UserRepository, user_ids: list[str]
) -> float:
    """Average ``|P_u ∩ P_v|`` over selected pairs (the §8.4 diagnostic:
    ~2 for distance-based versus tens for Podium on Yelp).

    Vectorized: the selected users' incidence rows are densified once and
    every pairwise count comes out of one Gram product ``A @ A.T``.
    """
    user_ids = list(user_ids)
    if len(user_ids) < 2:
        return 0.0
    subset = repository.subset(user_ids)
    _, incidence, _ = property_incidence(subset)
    gram = incidence @ incidence.T
    n = len(user_ids)
    upper = np.triu_indices(n, 1)
    return float(gram[upper].sum() / (n * (n - 1) / 2))


def _mean_pairwise_intersection_python(
    repository: UserRepository, user_ids: list[str]
) -> float:
    """Pure-Python oracle for :func:`mean_pairwise_intersection`."""
    props = [repository.profile(u).properties for u in user_ids]
    if len(props) < 2:
        return 0.0
    total, pairs = 0, 0
    for i in range(len(props)):
        for j in range(i + 1, len(props)):
            total += len(props[i] & props[j])
            pairs += 1
    return total / pairs


class DistanceSelector(Selector):
    """Greedy pairwise-Jaccard dispersion over user property sets."""

    name = "Distance"

    def __init__(
        self, objective: str = "sum", implementation: str = "vector"
    ) -> None:
        if objective not in ("sum", "min"):
            raise PodiumError(
                f"objective must be 'sum' or 'min', got {objective!r}"
            )
        if implementation not in ("vector", "legacy"):
            raise PodiumError(
                f"implementation must be 'vector' or 'legacy', "
                f"got {implementation!r}"
            )
        self._objective = objective
        self._implementation = implementation

    def select(
        self,
        repository: UserRepository,
        instance: DiversificationInstance,
        budget: int,
        rng: np.random.Generator | None = None,
    ) -> list[str]:
        if budget < 1:
            raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
        if not repository.user_ids:
            return []
        if self._implementation == "vector":
            return self._select_vector(repository, budget, rng)
        return self._select_legacy(repository, budget, rng)

    # -- vectorized implementation ----------------------------------------

    def _select_vector(
        self,
        repository: UserRepository,
        budget: int,
        rng: np.random.Generator | None,
    ) -> list[str]:
        user_ids, incidence, sizes = property_incidence(repository)
        n = len(user_ids)

        # Seed with the user of the largest property set: the conventional
        # dispersion-greedy anchor (deterministic unless an rng is given).
        if rng is None:
            seed = max(range(n), key=lambda i: (int(sizes[i]), user_ids[i]))
        else:
            seed = int(rng.integers(n))

        remaining = np.ones(n, dtype=bool)
        remaining[seed] = False
        selected = [seed]

        def distances_to(chosen: int) -> np.ndarray:
            inter = incidence @ incidence[chosen]
            union = (sizes + int(sizes[chosen])) - inter
            with np.errstate(invalid="ignore", divide="ignore"):
                d = 1.0 - inter / union
            d[union == 0] = 0.0
            return d

        # Track each candidate's aggregate distance to the subset.
        agg = distances_to(seed)
        while remaining.any() and len(selected) < budget:
            best = float(agg[remaining].max())
            tied = np.flatnonzero(remaining & (agg == best))
            if rng is None:
                chosen = int(min(tied, key=lambda i: user_ids[i]))
            else:
                chosen = int(tied[int(rng.integers(len(tied)))])
            selected.append(chosen)
            remaining[chosen] = False
            d = distances_to(chosen)
            if self._objective == "sum":
                agg = agg + d
            else:
                agg = np.minimum(agg, d)
        return [user_ids[i] for i in selected]

    # -- legacy (pure-Python) implementation ------------------------------

    def _select_legacy(
        self,
        repository: UserRepository,
        budget: int,
        rng: np.random.Generator | None,
    ) -> list[str]:
        user_ids = repository.user_ids
        props = {u: repository.profile(u).properties for u in user_ids}

        if rng is None:
            seed = max(user_ids, key=lambda u: (len(props[u]), u))
        else:
            seed = user_ids[int(rng.integers(len(user_ids)))]
        # ``remaining`` keeps repository order so tie lists are ordered
        # identically to the vectorized dense ids (a plain set's iteration
        # order would vary with the interpreter's hash seed, making seeded
        # tie-breaks irreproducible across processes).
        remaining = [u for u in user_ids if u != seed]
        selected = [seed]

        agg = {
            u: jaccard_distance(props[u], props[seed]) for u in remaining
        }
        while remaining and len(selected) < budget:
            best = max(agg[u] for u in remaining)
            tied = [u for u in remaining if agg[u] == best]
            chosen = min(tied) if rng is None else tied[int(rng.integers(len(tied)))]
            selected.append(chosen)
            remaining.remove(chosen)
            for u in remaining:
                d = jaccard_distance(props[u], props[chosen])
                if self._objective == "sum":
                    agg[u] += d
                else:
                    agg[u] = min(agg[u], d)
        return selected
