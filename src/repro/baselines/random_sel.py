"""Uniform random selection baseline (paper §8.3).

Random sampling is the common practice in survey-style opinion
procurement; under some conditions it tends to yield diverse subsets, but
the paper (and [Wu et al. 2015]) show explicit diversity management beats
it.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InvalidBudgetError
from ..core.instance import DiversificationInstance
from ..core.profiles import UserRepository
from .base import Selector


class RandomSelector(Selector):
    """Select ``budget`` users uniformly at random, without replacement."""

    name = "Random"

    def select(
        self,
        repository: UserRepository,
        instance: DiversificationInstance,
        budget: int,
        rng: np.random.Generator | None = None,
    ) -> list[str]:
        if budget < 1:
            raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
        rng = rng or np.random.default_rng()
        pool = repository.user_ids
        size = min(budget, len(pool))
        picked = rng.choice(len(pool), size=size, replace=False)
        return [pool[int(i)] for i in picked]
