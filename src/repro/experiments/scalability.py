"""Figures 5–6 reproduction: execution-time scalability.

* Fig. 5 — runtime versus population size ``|U|`` (profiles capped at
  200 properties in the paper's runs).
* Fig. 6 — runtime versus average profile size at a fixed population.

Expected shapes: Podium and the distance baseline scale linearly on both
axes and run roughly an order of magnitude faster than clustering; the
Optimal baseline explodes exponentially and is reported separately
(:mod:`repro.experiments.optimal_ratio`).

Timings cover the *selection* step only, matching the paper: bucketing
and weight computation happen in the offline grouping module (Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import (
    ClusteringSelector,
    DistanceSelector,
    PodiumSelector,
    Selector,
)
from ..core.groups import GroupingConfig, build_simple_groups
from ..core.instance import build_instance
from ..datasets.synth import generate_profile_repository
from .harness import TimingRow, time_selector


@dataclass(frozen=True)
class ScalabilitySetup:
    """Knobs of the scalability sweeps (sizes default laptop-scale)."""

    budget: int = 8
    user_sizes: tuple[int, ...] = (500, 1000, 2000, 4000)
    n_properties: int = 200
    mean_profile_size: float = 40.0
    profile_sizes: tuple[int, ...] = (10, 20, 40, 80)
    fixed_users: int = 2000
    seed: int = 3
    repetitions: int = 3


def scalability_selectors() -> list[Selector]:
    """Podium, Clustering and Distance (Random is immediate, §8.5)."""
    return [PodiumSelector(), ClusteringSelector(), DistanceSelector()]


def _measure(
    repository, setup: ScalabilitySetup, x: int
) -> list[TimingRow]:
    groups = build_simple_groups(
        repository, GroupingConfig(min_support=2)
    )
    instance = build_instance(repository, setup.budget, groups=groups)
    rows = []
    for selector in scalability_selectors():
        times = []
        for repetition in range(setup.repetitions):
            rng = np.random.default_rng((setup.seed, repetition))
            times.append(
                time_selector(
                    selector, repository, instance, setup.budget, rng
                )
            )
        rows.append(TimingRow(selector.name, x, float(np.median(times))))
    return rows


def scalability_in_users(
    setup: ScalabilitySetup | None = None,
) -> list[TimingRow]:
    """Fig. 5: runtime as ``|U|`` grows (≤200 properties per profile)."""
    setup = setup or ScalabilitySetup()
    rows: list[TimingRow] = []
    for n_users in setup.user_sizes:
        repository = generate_profile_repository(
            n_users=n_users,
            n_properties=setup.n_properties,
            mean_profile_size=setup.mean_profile_size,
            seed=setup.seed,
        )
        rows.extend(_measure(repository, setup, n_users))
    return rows


def scalability_in_profile_size(
    setup: ScalabilitySetup | None = None,
) -> list[TimingRow]:
    """Fig. 6: runtime as the average profile size grows, fixed ``|U|``."""
    setup = setup or ScalabilitySetup()
    rows: list[TimingRow] = []
    for mean_size in setup.profile_sizes:
        repository = generate_profile_repository(
            n_users=setup.fixed_users,
            n_properties=max(setup.n_properties, 2 * mean_size),
            mean_profile_size=float(mean_size),
            seed=setup.seed,
        )
        rows.extend(_measure(repository, setup, mean_size))
    return rows


def timing_table(rows: list[TimingRow]) -> str:
    """Markdown rendering of a timing sweep."""
    algorithms = sorted({r.algorithm for r in rows})
    xs = sorted({r.x for r in rows})
    lookup = {(r.algorithm, r.x): r.seconds for r in rows}
    header = "| x | " + " | ".join(algorithms) + " |"
    rule = "|---" * (len(algorithms) + 1) + "|"
    lines = [header, rule]
    for x in xs:
        cells = " | ".join(
            f"{lookup.get((a, x), float('nan')):.4f}" for a in algorithms
        )
        lines.append(f"| {x} | {cells} |")
    return "\n".join(lines)


def linear_fit_r2(rows: list[TimingRow], algorithm: str) -> float:
    """R² of a linear time-vs-x fit — the paper's "scales linearly" claim."""
    points = sorted(
        ((r.x, r.seconds) for r in rows if r.algorithm == algorithm)
    )
    if len(points) < 3:
        return 1.0
    x = np.array([p[0] for p in points], dtype=float)
    y = np.array([p[1] for p in points], dtype=float)
    coeffs = np.polyfit(x, y, 1)
    predicted = np.polyval(coeffs, x)
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot
