"""Figures 5–6 reproduction: execution-time scalability.

* Fig. 5 — runtime versus population size ``|U|`` (profiles capped at
  200 properties in the paper's runs).
* Fig. 6 — runtime versus average profile size at a fixed population.

Expected shapes: Podium and the distance baseline scale linearly on both
axes and run roughly an order of magnitude faster than clustering; the
Optimal baseline explodes exponentially and is reported separately
(:mod:`repro.experiments.optimal_ratio`).

Timings cover the *selection* step only, matching the paper: bucketing
and weight computation happen in the offline grouping module (Fig. 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..baselines import (
    ClusteringSelector,
    DistanceSelector,
    PodiumSelector,
    Selector,
)
from ..core.customization import CustomizationFeedback, custom_select
from ..core.explanations import explain_selection
from ..core.greedy import greedy_select
from ..core.groups import GroupingConfig, build_simple_groups
from ..core.index import instance_index
from ..core.instance import build_instance
from ..datasets.synth import generate_profile_repository
from .engine import SELECTOR_DISPLAY, ExperimentCell, InstanceSpec, run_cells
from .harness import TimingRow

#: Backends compared by the selection-backend benchmark, slowest first.
SELECTION_BACKENDS: tuple[str, ...] = ("eager", "lazy", "matrix")

#: Engine keys of the Figs. 5–6 algorithms (Random is immediate, §8.5).
SCALABILITY_SELECTOR_KEYS: tuple[str, ...] = (
    "podium",
    "clustering",
    "distance",
)


@dataclass(frozen=True)
class ScalabilitySetup:
    """Knobs of the scalability sweeps (sizes default laptop-scale)."""

    budget: int = 8
    user_sizes: tuple[int, ...] = (500, 1000, 2000, 4000)
    n_properties: int = 200
    mean_profile_size: float = 40.0
    profile_sizes: tuple[int, ...] = (10, 20, 40, 80)
    fixed_users: int = 2000
    seed: int = 3
    repetitions: int = 3
    #: Selection budget of the post-selection stage benchmark
    #: (:func:`benchmark_index_native_stages`).  Larger than the Fig. 5
    #: budget because explanation/customization cost scales with the
    #: panel size being explained, and the paper's prototype serves
    #: panels well beyond 8 members.
    stage_budget: int = 64


def scalability_selectors() -> list[Selector]:
    """Podium, Clustering and Distance (Random is immediate, §8.5)."""
    return [PodiumSelector(), ClusteringSelector(), DistanceSelector()]


def _timing_sweep(
    specs: list[tuple[int, InstanceSpec]],
    setup: ScalabilitySetup,
    jobs: int | None,
) -> list[TimingRow]:
    """Run every (x, spec) × selector × repetition as engine timing cells.

    The whole sweep is one cell batch, so with ``jobs > 1`` all sizes
    progress concurrently; the median per (x, selector) is reported.
    Timings with ``jobs > 1`` share cores and only indicate relative
    shape — use the serial default for publishable numbers.
    """
    cells = [
        ExperimentCell(
            runner="timing",
            spec=spec,
            params=(key,),
            seed=(setup.seed, repetition),
            seed_mode="raw",
        )
        for _, spec in specs
        for key in SCALABILITY_SELECTOR_KEYS
        for repetition in range(setup.repetitions)
    ]
    seconds = iter(run_cells(cells, jobs=jobs))
    rows: list[TimingRow] = []
    for x, _ in specs:
        for key in SCALABILITY_SELECTOR_KEYS:
            samples = [next(seconds) for _ in range(setup.repetitions)]
            rows.append(
                TimingRow(SELECTOR_DISPLAY[key], x, float(np.median(samples)))
            )
    return rows


def scalability_in_users(
    setup: ScalabilitySetup | None = None, jobs: int | None = 1
) -> list[TimingRow]:
    """Fig. 5: runtime as ``|U|`` grows (≤200 properties per profile)."""
    setup = setup or ScalabilitySetup()
    specs = [
        (
            n_users,
            InstanceSpec(
                kind="profiles",
                n_users=n_users,
                dataset_seed=setup.seed,
                budget=setup.budget,
                min_support=2,
                n_properties=setup.n_properties,
                mean_profile_size=setup.mean_profile_size,
            ),
        )
        for n_users in setup.user_sizes
    ]
    return _timing_sweep(specs, setup, jobs)


def scalability_in_profile_size(
    setup: ScalabilitySetup | None = None, jobs: int | None = 1
) -> list[TimingRow]:
    """Fig. 6: runtime as the average profile size grows, fixed ``|U|``."""
    setup = setup or ScalabilitySetup()
    specs = [
        (
            mean_size,
            InstanceSpec(
                kind="profiles",
                n_users=setup.fixed_users,
                dataset_seed=setup.seed,
                budget=setup.budget,
                min_support=2,
                n_properties=max(setup.n_properties, 2 * mean_size),
                mean_profile_size=float(mean_size),
            ),
        )
        for mean_size in setup.profile_sizes
    ]
    return _timing_sweep(specs, setup, jobs)


def benchmark_selection_backends(
    setup: ScalabilitySetup | None = None,
    backends: tuple[str, ...] = SELECTION_BACKENDS,
) -> dict:
    """Time every greedy backend on the Fig. 5 sweep (same instances).

    For each population size the diversification instance is built once
    (the offline grouping module of Fig. 1), the sparse index is
    pre-built — its cost is reported separately as
    ``index_build_seconds``, mirroring the paper's convention of timing
    the selection step only — and each backend runs ``repetitions``
    deterministic selections (``rng=None``); the median wall-clock is
    reported.  Backends must select identical sequences; the row records
    the check so regressions surface in ``BENCH_selection.json``.
    """
    setup = setup or ScalabilitySetup()
    rows: list[dict] = []
    for n_users in setup.user_sizes:
        repository = generate_profile_repository(
            n_users=n_users,
            n_properties=setup.n_properties,
            mean_profile_size=setup.mean_profile_size,
            seed=setup.seed,
        )
        groups = build_simple_groups(repository, GroupingConfig(min_support=2))
        instance = build_instance(repository, setup.budget, groups=groups)
        start = time.perf_counter()
        instance_index(instance)
        index_seconds = time.perf_counter() - start

        seconds: dict[str, float] = {}
        selections: dict[str, tuple[str, ...]] = {}
        for backend in backends:
            samples = []
            for _ in range(setup.repetitions):
                start = time.perf_counter()
                result = greedy_select(
                    repository, instance, setup.budget, method=backend
                )
                samples.append(time.perf_counter() - start)
            seconds[backend] = float(np.median(samples))
            selections[backend] = result.selected
        reference = selections[backends[0]]
        row = {
            "users": n_users,
            "groups": len(instance.groups),
            "index_build_seconds": index_seconds,
            "seconds": seconds,
            "selections_match": all(
                s == reference for s in selections.values()
            ),
        }
        if "eager" in seconds and "matrix" in seconds and seconds["matrix"]:
            row["speedup_matrix_vs_eager"] = (
                seconds["eager"] / seconds["matrix"]
            )
        rows.append(row)
    return {
        "experiment": "fig5_selection_backends",
        "budget": setup.budget,
        "n_properties": setup.n_properties,
        "mean_profile_size": setup.mean_profile_size,
        "repetitions": setup.repetitions,
        "seed": setup.seed,
        "backends": list(backends),
        "rows": rows,
    }


def benchmark_index_native_stages(
    setup: ScalabilitySetup | None = None,
) -> dict:
    """Time the index-native post-selection stages against the dict loops.

    For each population size one instance is built (budget
    ``setup.stage_budget``), a panel is selected once, and then the two
    request-time stages every ``POST /select`` pays are timed in both
    implementations:

    * **explanation** — :func:`repro.core.explanations.explain_selection`
      with three distribution properties, ``method="python"`` (dict
      oracle) versus ``method="index"`` (CSR hits + memoized payload);
    * **customization** — :func:`repro.core.customization.custom_select`
      with a representative feedback (one must-not group, two priority
      groups), ``method="eager"`` versus ``method="matrix"``.

    Each stage runs once untimed (warming the cached index, reverse
    links and explanation sort orders — the steady state a serving
    process sits in) and then ``repetitions`` timed runs; the median is
    reported.  Every row also records exact-parity flags: the payloads
    and selections must be equal, not just close.
    """
    setup = setup or ScalabilitySetup()
    rows: list[dict] = []
    for n_users in setup.user_sizes:
        repository = generate_profile_repository(
            n_users=n_users,
            n_properties=setup.n_properties,
            mean_profile_size=setup.mean_profile_size,
            seed=setup.seed,
        )
        groups = build_simple_groups(repository, GroupingConfig(min_support=2))
        instance = build_instance(
            repository, setup.stage_budget, groups=groups
        )
        properties = sorted(repository.property_labels)[:3]
        keys = sorted(instance.groups.keys, key=str)
        feedback = CustomizationFeedback(
            must_not=frozenset(keys[:1]),
            priority=frozenset(keys[1:3]),
        )
        result = greedy_select(repository, instance, method="matrix")

        def timed(fn, repetitions=setup.repetitions):
            fn()  # warm caches: index, reverse links, sort orders
            samples = []
            for _ in range(repetitions):
                start = time.perf_counter()
                value = fn()
                samples.append(time.perf_counter() - start)
            return value, float(np.median(samples))

        explain_python, explain_python_s = timed(
            lambda: explain_selection(
                result, distribution_properties=properties, method="python"
            )
        )
        explain_index, explain_index_s = timed(
            lambda: explain_selection(
                result, distribution_properties=properties, method="index"
            )
        )
        custom_eager, custom_eager_s = timed(
            lambda: custom_select(
                repository, instance, feedback, method="eager"
            )
        )
        custom_matrix, custom_matrix_s = timed(
            lambda: custom_select(
                repository, instance, feedback, method="matrix"
            )
        )
        rows.append(
            {
                "users": n_users,
                "groups": len(instance.groups),
                "explanation_seconds": {
                    "python": explain_python_s,
                    "index": explain_index_s,
                },
                "customization_seconds": {
                    "eager": custom_eager_s,
                    "matrix": custom_matrix_s,
                },
                "speedup_explanation": explain_python_s / explain_index_s
                if explain_index_s
                else float("inf"),
                "speedup_customization": custom_eager_s / custom_matrix_s
                if custom_matrix_s
                else float("inf"),
                "explanation_parity": explain_python == explain_index,
                "customization_parity": (
                    custom_eager.selected == custom_matrix.selected
                    and custom_eager.result.score == custom_matrix.result.score
                    and custom_eager.priority_score
                    == custom_matrix.priority_score
                    and custom_eager.standard_score
                    == custom_matrix.standard_score
                ),
            }
        )
    return {
        "experiment": "index_native_stages",
        "budget": setup.stage_budget,
        "n_properties": setup.n_properties,
        "mean_profile_size": setup.mean_profile_size,
        "repetitions": setup.repetitions,
        "seed": setup.seed,
        "rows": rows,
    }


def timing_table(rows: list[TimingRow]) -> str:
    """Markdown rendering of a timing sweep."""
    algorithms = sorted({r.algorithm for r in rows})
    xs = sorted({r.x for r in rows})
    lookup = {(r.algorithm, r.x): r.seconds for r in rows}
    header = "| x | " + " | ".join(algorithms) + " |"
    rule = "|---" * (len(algorithms) + 1) + "|"
    lines = [header, rule]
    for x in xs:
        cells = " | ".join(
            f"{lookup.get((a, x), float('nan')):.4f}" for a in algorithms
        )
        lines.append(f"| {x} | {cells} |")
    return "\n".join(lines)


def linear_fit_r2(rows: list[TimingRow], algorithm: str) -> float:
    """R² of a linear time-vs-x fit — the paper's "scales linearly" claim."""
    points = sorted(
        ((r.x, r.seconds) for r in rows if r.algorithm == algorithm)
    )
    if len(points) < 3:
        return 1.0
    x = np.array([p[0] for p in points], dtype=float)
    y = np.array([p[1] for p in points], dtype=float)
    coeffs = np.polyfit(x, y, 1)
    predicted = np.polyval(coeffs, x)
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot
