"""Ingest-path benchmark: durable delta throughput, recovery, maintenance.

Three questions about the durable streaming-ingestion subsystem
(:mod:`repro.storage`), answered with measurements on a synthetic
population (same generator as the scalability suites):

* **Throughput** — sustained ``ProfileDelta`` appends/second through
  :meth:`DurableRepositoryStore.append_delta`, with and without
  ``fsync``.  The gap is the price of the stronger durability contract
  (acknowledged delta survives OS death, not just process death).
* **Recovery** — cold-open time as a function of WAL length: the store
  replays every post-snapshot record through the §9 incremental-update
  machinery, so replay scales with the number of unfolded records and
  compaction is what keeps boots fast.
* **Maintainer quality** — the streaming-repaired selection's score as
  a fraction of a from-scratch matrix greedy on the same index, after
  every churn round.  The acceptance floor (``quality_floor``, default
  0.95) turns a quality regression into a nonzero exit code.

The report dict is written to ``BENCH_ingest.json`` by
``repro bench --suite ingest``; :func:`ingest_report_failures` is the
CI gate.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.greedy import select_from_index
from ..core.groups import GroupingConfig, build_simple_groups
from ..core.index import instance_index
from ..core.profiles import UserProfile, UserRepository
from ..core.updates import (
    ProfileDelta,
    apply_delta_to_repository,
    reassign_groups,
    rebuild_instance,
)
from ..datasets.synth import generate_profile_repository
from ..storage import DurableRepositoryStore, StreamingMaintainer


@dataclass(frozen=True)
class IngestSetup:
    """Knobs of the ingest benchmark (defaults finish in well under a
    minute on a laptop; CI runs a smaller preset)."""

    users: int = 2000
    n_properties: int = 120
    mean_profile_size: float = 25.0
    budget: int = 8
    seed: int = 3
    #: Deltas per throughput run (each upserts one user, removes one).
    throughput_deltas: int = 300
    #: WAL lengths the recovery sweep reopens at.
    recovery_wal_lengths: tuple[int, ...] = (50, 200, 800)
    #: Churn rounds × deltas-per-round of the maintainer quality sweep.
    churn_rounds: int = 12
    deltas_per_round: int = 5
    #: Acceptance floor on maintainer_score / fresh_greedy_score.
    quality_floor: float = 0.95


def _delta_stream(
    repository: UserRepository, rng: np.random.Generator, count: int
):
    """Deterministic churn deltas: each upserts a fresh user cloned from
    a random template and removes a random survivor."""
    alive = list(repository.user_ids)
    templates = [repository.profile(u) for u in alive[: min(200, len(alive))]]
    next_id = 0
    for _ in range(count):
        template = templates[int(rng.integers(len(templates)))]
        new_user = UserProfile(f"ingest{next_id:06d}", dict(template.scores))
        next_id += 1
        victim = alive.pop(int(rng.integers(len(alive))))
        alive.append(new_user.user_id)
        yield ProfileDelta(
            upserts=(new_user,), removals=frozenset({victim})
        )


def _throughput_row(
    repository: UserRepository, setup: IngestSetup, fsync: bool
) -> dict:
    data_dir = Path(tempfile.mkdtemp(prefix="podium-ingest-"))
    try:
        store = DurableRepositoryStore(data_dir, fsync=fsync)
        store.initialize(repository)
        rng = np.random.default_rng(setup.seed)
        deltas = list(
            _delta_stream(repository, rng, setup.throughput_deltas)
        )
        started = time.perf_counter()
        for delta in deltas:
            store.append_delta(delta)
        seconds = time.perf_counter() - started
        row = {
            "fsync": fsync,
            "deltas": len(deltas),
            "seconds": seconds,
            "deltas_per_second": len(deltas) / seconds if seconds else None,
            "wal_bytes": store.stats()["wal_bytes"],
        }
        store.close()
        return row
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def _recovery_rows(
    repository: UserRepository, setup: IngestSetup
) -> list[dict]:
    rows = []
    for wal_length in setup.recovery_wal_lengths:
        data_dir = Path(tempfile.mkdtemp(prefix="podium-recover-"))
        try:
            store = DurableRepositoryStore(data_dir, fsync=False)
            store.initialize(repository)
            rng = np.random.default_rng(setup.seed + wal_length)
            for delta in _delta_stream(repository, rng, wal_length):
                store.append_delta(delta)
            expected_users = len(store.repository)
            store.close()
            started = time.perf_counter()
            reopened = DurableRepositoryStore(data_dir, fsync=False)
            open_seconds = time.perf_counter() - started
            assert reopened.replayed_records == wal_length
            assert len(reopened.repository) == expected_users
            rows.append(
                {
                    "wal_records": wal_length,
                    "open_seconds": open_seconds,
                    "replay_seconds": reopened.replay_seconds,
                    "records_per_second": (
                        wal_length / reopened.replay_seconds
                        if reopened.replay_seconds
                        else None
                    ),
                }
            )
            reopened.close()
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
    return rows


def _maintainer_rows(
    repository: UserRepository, setup: IngestSetup
) -> list[dict]:
    """Churn the population and compare maintained vs fresh greedy."""
    grouping = GroupingConfig(min_support=2)
    groups = build_simple_groups(repository, grouping)
    index = instance_index(
        rebuild_instance(groups, repository, setup.budget)
    )
    maintainer = StreamingMaintainer(index, setup.budget)
    rng = np.random.default_rng(setup.seed + 7)
    rows = []
    for round_no in range(setup.churn_rounds):
        for delta in _delta_stream(
            repository, rng, setup.deltas_per_round
        ):
            repository = apply_delta_to_repository(repository, delta)
            groups = reassign_groups(groups, repository, delta)
            index = instance_index(
                rebuild_instance(groups, repository, setup.budget)
            )
            maintainer.refresh(index, touched=len(delta.touched))
        fresh = select_from_index(index, setup.budget, method="matrix")
        maintained_score = maintainer.score()
        ratio = (
            maintained_score / fresh.score if fresh.score else 1.0
        )
        rows.append(
            {
                "round": round_no + 1,
                "maintained_score": int(maintained_score),
                "fresh_score": int(fresh.score),
                "quality_ratio": float(ratio),
                "swaps": maintainer.swaps,
                "fills": maintainer.fills,
                "drops": maintainer.drops,
                "resolves": maintainer.resolves,
            }
        )
    return rows


def benchmark_ingest(setup: IngestSetup | None = None) -> dict:
    """Run all three sweeps and return the ``BENCH_ingest.json`` report."""
    setup = setup or IngestSetup()
    repository = generate_profile_repository(
        n_users=setup.users,
        n_properties=setup.n_properties,
        mean_profile_size=setup.mean_profile_size,
        seed=setup.seed,
    )
    return {
        "suite": "ingest",
        "users": setup.users,
        "budget": setup.budget,
        "seed": setup.seed,
        "quality_floor": setup.quality_floor,
        "throughput": [
            _throughput_row(repository, setup, fsync=True),
            _throughput_row(repository, setup, fsync=False),
        ],
        "recovery": _recovery_rows(repository, setup),
        "maintainer": _maintainer_rows(repository, setup),
    }


def ingest_report_failures(report: dict) -> list[str]:
    """Acceptance gate: every maintainer row must clear the floor."""
    floor = float(report.get("quality_floor", 0.95))
    failures = []
    for row in report.get("maintainer", ()):
        if row["quality_ratio"] < floor:
            failures.append(
                f"maintainer quality {row['quality_ratio']:.4f} below "
                f"floor {floor} at churn round {row['round']}"
            )
    for row in report.get("recovery", ()):
        if row["open_seconds"] <= 0:
            failures.append("recovery timing missing")
    return failures
