"""The million-user scale benchmark (`repro bench --suite scale`).

Drives the three layers of the scale path end-to-end on synthetic
populations of growing size:

1. **Columnar construction** — triple columns
   (:func:`~repro.datasets.synth.generate_profile_columns`) straight to
   an :class:`~repro.core.index.InstanceIndex` via
   :func:`~repro.core.columnar.build_columnar_instance`, timed against
   the dict-based pipeline (columns → ``UserRepository`` →
   ``build_simple_groups`` → ``build_instance`` → index) fed the *same*
   columns, with a selection-equality check between the two.
2. **Sharded (GreeDi) selection** and 3. **stochastic greedy**, both run
   straight on the index (:func:`~repro.core.greedy.select_from_index`)
   and scored against the exact matrix greedy: the report records
   wall-clock per stage, peak RSS and the quality ratio of each
   approximate backend.

The dict path is only exercised up to ``dict_cap`` users (it is the slow
path the columnar pipeline replaces; running it at 500k+ would dominate
the benchmark's own runtime) — the speedup figure is therefore reported
at the largest *common* size.
"""

from __future__ import annotations

import gc
import resource
import sys
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.columnar import build_columnar_instance, columnar_to_repository
from ..core.greedy import select_from_index
from ..core.groups import GroupingConfig, build_simple_groups
from ..core.index import instance_index
from ..core.instance import build_instance
from ..datasets.synth import generate_profile_columns

#: Minimum acceptable score ratio of an approximate backend vs exact
#: greedy — the floor the acceptance tests and the CLI enforce.
QUALITY_FLOOR = 0.95


@dataclass(frozen=True)
class ScaleSetup:
    """Knobs of the scale-path benchmark."""

    user_sizes: tuple[int, ...] = (100_000, 250_000, 500_000)
    budget: int = 50
    n_properties: int = 60
    mean_profile_size: float = 8.0
    seed: int = 3
    shards: int = 4
    jobs: int | None = 1
    epsilon: float = 0.1
    #: Largest size at which the dict-based pipeline is also run (the
    #: columnar-vs-dict speedup is measured at the largest common size).
    dict_cap: int = 250_000
    grouping: GroupingConfig = field(default_factory=GroupingConfig)


def _peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB (Linux: KiB units)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def benchmark_scale_path(setup: ScaleSetup | None = None) -> dict:
    """Run the scale benchmark and return the ``BENCH_scale.json`` payload."""
    setup = setup or ScaleSetup()
    rows: list[dict] = []
    for n_users in setup.user_sizes:
        # Previous rows leave millions of collectable profile/group
        # objects behind; reclaim them so GC churn and allocator
        # fragmentation don't bleed into this row's timings.
        gc.collect()
        start = time.perf_counter()
        columns = generate_profile_columns(
            n_users=n_users,
            n_properties=setup.n_properties,
            mean_profile_size=setup.mean_profile_size,
            seed=setup.seed,
        )
        generate_seconds = time.perf_counter() - start

        start = time.perf_counter()
        columnar = build_columnar_instance(
            columns, setup.budget, grouping=setup.grouping
        )
        columnar_seconds = time.perf_counter() - start
        index = columnar.index

        dict_seconds = None
        selections_match = None
        if n_users <= setup.dict_cap:
            # The dict pipeline consumes the *same* columns, so both
            # paths build the same instance and must select identically.
            start = time.perf_counter()
            repository = columnar_to_repository(columns)
            groups = build_simple_groups(repository, setup.grouping)
            instance = build_instance(
                repository, setup.budget, groups=groups
            )
            dict_index = instance_index(instance)
            dict_seconds = time.perf_counter() - start
            dict_result = select_from_index(dict_index, setup.budget)
            del repository, groups, instance, dict_index
            gc.collect()

        select_seconds: dict[str, float] = {}
        start = time.perf_counter()
        exact = select_from_index(index, setup.budget, method="matrix")
        select_seconds["matrix"] = time.perf_counter() - start
        if n_users <= setup.dict_cap:
            selections_match = dict_result.selected == exact.selected

        start = time.perf_counter()
        sharded = select_from_index(
            index,
            setup.budget,
            method="sharded",
            shards=setup.shards,
            jobs=setup.jobs,
            shard_seed=setup.seed,
        )
        select_seconds["sharded"] = time.perf_counter() - start

        start = time.perf_counter()
        stochastic = select_from_index(
            index,
            setup.budget,
            method="stochastic",
            epsilon=setup.epsilon,
            rng=np.random.default_rng(setup.seed),
        )
        select_seconds["stochastic"] = time.perf_counter() - start

        exact_score = int(exact.score)
        quality_ratio = {
            "sharded": (
                sharded.score / exact_score if exact_score else 1.0
            ),
            "stochastic": (
                stochastic.score / exact_score if exact_score else 1.0
            ),
        }
        row = {
            "users": n_users,
            "entries": columns.n_entries,
            "groups": index.n_groups,
            "generate_seconds": generate_seconds,
            "columnar_build_seconds": columnar_seconds,
            "dict_build_seconds": dict_seconds,
            "columnar_speedup": (
                dict_seconds / columnar_seconds
                if dict_seconds is not None and columnar_seconds
                else None
            ),
            "selections_match": selections_match,
            "select_seconds": select_seconds,
            "exact_score": exact_score,
            "quality_ratio": quality_ratio,
            "peak_rss_mb": _peak_rss_mb(),
        }
        rows.append(row)
    return {
        "experiment": "scale_path",
        "budget": setup.budget,
        "n_properties": setup.n_properties,
        "mean_profile_size": setup.mean_profile_size,
        "seed": setup.seed,
        "shards": setup.shards,
        "jobs": setup.jobs,
        "epsilon": setup.epsilon,
        "dict_cap": setup.dict_cap,
        "quality_floor": QUALITY_FLOOR,
        "rows": rows,
    }


def scale_report_failures(report: dict) -> list[str]:
    """Acceptance checks over a scale report; empty list means all green.

    Enforced: every approximate backend stays at or above
    :data:`QUALITY_FLOOR` of the exact greedy score on every row, and the
    dict-vs-columnar selection check (where run) agrees.
    """
    failures: list[str] = []
    for row in report["rows"]:
        users = row["users"]
        if row["selections_match"] is False:
            failures.append(
                f"users={users}: dict and columnar selections differ"
            )
        for backend, ratio in row["quality_ratio"].items():
            if ratio < QUALITY_FLOOR:
                failures.append(
                    f"users={users}: {backend} quality ratio "
                    f"{ratio:.4f} < {QUALITY_FLOOR}"
                )
    return failures
