"""The million-user scale benchmark (`repro bench --suite scale`).

Drives the three layers of the scale path end-to-end on synthetic
populations of growing size:

1. **Columnar construction** — triple columns
   (:func:`~repro.datasets.synth.generate_profile_columns`) straight to
   an :class:`~repro.core.index.InstanceIndex` via
   :func:`~repro.core.columnar.build_columnar_instance`, timed against
   the dict-based pipeline (columns → ``UserRepository`` →
   ``build_simple_groups`` → ``build_instance`` → index) fed the *same*
   columns, with a selection-equality check between the two.
2. **Sharded (GreeDi) selection** and 3. **stochastic greedy**, both run
   straight on the index (:func:`~repro.core.greedy.select_from_index`)
   and scored against the exact matrix greedy: the report records
   wall-clock per stage, peak RSS and the quality ratio of each
   approximate backend.

The dict path is only exercised up to ``dict_cap`` users (it is the slow
path the columnar pipeline replaces; running it at 500k+ would dominate
the benchmark's own runtime) — the speedup figure is therefore reported
at the largest *common* size.
"""

from __future__ import annotations

import gc
import resource
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from ..core.columnar import build_columnar_instance, columnar_to_repository
from ..core.external import build_index_external
from ..core.greedy import select_from_index, select_sharded_streaming
from ..core.groups import GroupingConfig, build_simple_groups
from ..core.index import instance_index
from ..core.instance import build_instance
from ..core.persistence import (
    open_index_npz,
    save_index_npz,
    streamed_index_checksum,
)
from ..datasets.synth import generate_profile_columns

#: Minimum acceptable score ratio of an approximate backend vs exact
#: greedy — the floor the acceptance tests and the CLI enforce.
QUALITY_FLOOR = 0.95


@dataclass(frozen=True)
class ScaleSetup:
    """Knobs of the scale-path benchmark."""

    user_sizes: tuple[int, ...] = (100_000, 250_000, 500_000)
    budget: int = 50
    n_properties: int = 60
    mean_profile_size: float = 8.0
    seed: int = 3
    shards: int = 4
    jobs: int | None = 1
    epsilon: float = 0.1
    #: Largest size at which the dict-based pipeline is also run (the
    #: columnar-vs-dict speedup is measured at the largest common size).
    dict_cap: int = 250_000
    grouping: GroupingConfig = field(default_factory=GroupingConfig)
    #: Out-of-core mode: spill generation to a triple store, build the
    #: index with the external sorter, select off the mapped checkpoint.
    out_of_core: bool = False
    #: Enforced peak-RSS ceiling (MiB) over the whole process tree; rows
    #: exceeding it fail :func:`scale_report_failures`.  ``None`` = track
    #: but don't gate.
    rss_cap_mb: float | None = None
    #: External-sort run size (entries) for the out-of-core builder.
    run_entries: int = 1 << 21
    #: Where out-of-core rows put their spill/artifact directory
    #: (``None``: the system temp dir).
    workdir: str | None = None


def _rss_mb(raw: int) -> float:
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        return raw / (1024.0 * 1024.0)
    return raw / 1024.0  # Linux reports KiB


def _peak_rss_tree_mb() -> dict[str, float]:
    """Peak RSS of this process *and* its reaped children, in MiB.

    ``RUSAGE_SELF`` alone silently misses the sharded backends' forked
    workers — exactly the processes whose footprint the out-of-core tier
    exists to bound.  ``RUSAGE_CHILDREN`` is the maximum over children
    that have been waited for; the shard executors join their workers
    before returning, so by the time a row is recorded every worker peak
    is visible.  ``max`` (the gated figure) bounds the largest single
    process in the tree.
    """
    self_mb = _rss_mb(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    children_mb = _rss_mb(
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    )
    return {
        "self": self_mb,
        "children": children_mb,
        "max": max(self_mb, children_mb),
    }


def _out_of_core_row(setup: ScaleSetup, n_users: int) -> dict:
    """One bench row through the disk-backed tier.

    spill-generate → external-sort build → mmap open → matrix /
    streaming-sharded / stochastic selection, everything off the mapped
    checkpoint.  At sizes within ``dict_cap`` the in-RAM columnar twin
    is also built and the two artifacts are proven byte-identical via
    their payload checksums (``index_crc_match``) on top of the
    selection-equality check.
    """
    with TemporaryDirectory(
        prefix="podium-scale-ooc-", dir=setup.workdir
    ) as tmp_name:
        tmp = Path(tmp_name)
        start = time.perf_counter()
        store = generate_profile_columns(
            n_users=n_users,
            n_properties=setup.n_properties,
            mean_profile_size=setup.mean_profile_size,
            seed=setup.seed,
            store_dir=tmp / "store",
        )
        generate_seconds = time.perf_counter() - start

        index_path = tmp / "index.npz"
        start = time.perf_counter()
        info = build_index_external(
            store,
            setup.budget,
            index_path,
            grouping=setup.grouping,
            run_entries=setup.run_entries,
        )
        build_seconds = time.perf_counter() - start

        start = time.perf_counter()
        index = open_index_npz(index_path)
        open_seconds = time.perf_counter() - start

        selections_match = None
        index_crc_match = None
        ram_exact = None
        if n_users <= setup.dict_cap:
            # In-RAM twin: same args (chunk included) generate identical
            # triples, so the external artifact must checksum-match the
            # in-RAM build's uncompressed checkpoint byte for byte.
            columns = generate_profile_columns(
                n_users=n_users,
                n_properties=setup.n_properties,
                mean_profile_size=setup.mean_profile_size,
                seed=setup.seed,
            )
            columnar = build_columnar_instance(
                columns, setup.budget, grouping=setup.grouping
            )
            ram_path = tmp / "ram.npz"
            save_index_npz(columnar.index, ram_path, compressed=False)
            index_crc_match = (
                streamed_index_checksum(ram_path) == info.payload_crc32
            )
            ram_exact = select_from_index(
                columnar.index, setup.budget, method="matrix"
            )
            del columnar, columns
            gc.collect()

        select_seconds: dict[str, float] = {}
        start = time.perf_counter()
        exact = select_from_index(index, setup.budget, method="matrix")
        select_seconds["matrix"] = time.perf_counter() - start
        if ram_exact is not None:
            selections_match = ram_exact.selected == exact.selected

        start = time.perf_counter()
        sharded = select_sharded_streaming(
            index, setup.budget, shards=setup.shards, jobs=setup.jobs
        )
        select_seconds["sharded"] = time.perf_counter() - start

        start = time.perf_counter()
        stochastic = select_from_index(
            index,
            setup.budget,
            method="stochastic",
            epsilon=setup.epsilon,
            rng=np.random.default_rng(setup.seed),
        )
        select_seconds["stochastic"] = time.perf_counter() - start

        exact_score = int(exact.score)
        store_bytes = sum(
            p.stat().st_size for p in (tmp / "store").iterdir()
        )
        rss = _peak_rss_tree_mb()
        return {
            "users": n_users,
            "mode": "out_of_core",
            "entries": info.n_entries,
            "groups": info.n_groups,
            "runs": info.n_runs,
            "generate_seconds": generate_seconds,
            "external_build_seconds": build_seconds,
            "open_seconds": open_seconds,
            "store_bytes": store_bytes,
            "index_bytes": index_path.stat().st_size,
            "index_crc_match": index_crc_match,
            "selections_match": selections_match,
            "select_seconds": select_seconds,
            "exact_score": exact_score,
            "quality_ratio": {
                "sharded": (
                    sharded.score / exact_score if exact_score else 1.0
                ),
                "stochastic": (
                    stochastic.score / exact_score if exact_score else 1.0
                ),
            },
            "peak_rss_mb": rss["max"],
            "peak_rss_self_mb": rss["self"],
            "peak_rss_children_mb": rss["children"],
        }


def benchmark_scale_path(setup: ScaleSetup | None = None) -> dict:
    """Run the scale benchmark and return the ``BENCH_scale.json`` payload."""
    setup = setup or ScaleSetup()
    rows: list[dict] = []
    for n_users in setup.user_sizes:
        # Previous rows leave millions of collectable profile/group
        # objects behind; reclaim them so GC churn and allocator
        # fragmentation don't bleed into this row's timings.
        gc.collect()
        if setup.out_of_core:
            rows.append(_out_of_core_row(setup, n_users))
            continue
        start = time.perf_counter()
        columns = generate_profile_columns(
            n_users=n_users,
            n_properties=setup.n_properties,
            mean_profile_size=setup.mean_profile_size,
            seed=setup.seed,
        )
        generate_seconds = time.perf_counter() - start

        start = time.perf_counter()
        columnar = build_columnar_instance(
            columns, setup.budget, grouping=setup.grouping
        )
        columnar_seconds = time.perf_counter() - start
        index = columnar.index

        dict_seconds = None
        selections_match = None
        if n_users <= setup.dict_cap:
            # The dict pipeline consumes the *same* columns, so both
            # paths build the same instance and must select identically.
            start = time.perf_counter()
            repository = columnar_to_repository(columns)
            groups = build_simple_groups(repository, setup.grouping)
            instance = build_instance(
                repository, setup.budget, groups=groups
            )
            dict_index = instance_index(instance)
            dict_seconds = time.perf_counter() - start
            dict_result = select_from_index(dict_index, setup.budget)
            del repository, groups, instance, dict_index
            gc.collect()

        select_seconds: dict[str, float] = {}
        start = time.perf_counter()
        exact = select_from_index(index, setup.budget, method="matrix")
        select_seconds["matrix"] = time.perf_counter() - start
        if n_users <= setup.dict_cap:
            selections_match = dict_result.selected == exact.selected

        start = time.perf_counter()
        sharded = select_from_index(
            index,
            setup.budget,
            method="sharded",
            shards=setup.shards,
            jobs=setup.jobs,
            shard_seed=setup.seed,
        )
        select_seconds["sharded"] = time.perf_counter() - start

        start = time.perf_counter()
        stochastic = select_from_index(
            index,
            setup.budget,
            method="stochastic",
            epsilon=setup.epsilon,
            rng=np.random.default_rng(setup.seed),
        )
        select_seconds["stochastic"] = time.perf_counter() - start

        exact_score = int(exact.score)
        quality_ratio = {
            "sharded": (
                sharded.score / exact_score if exact_score else 1.0
            ),
            "stochastic": (
                stochastic.score / exact_score if exact_score else 1.0
            ),
        }
        rss = _peak_rss_tree_mb()
        row = {
            "users": n_users,
            "mode": "in_ram",
            "entries": columns.n_entries,
            "groups": index.n_groups,
            "generate_seconds": generate_seconds,
            "columnar_build_seconds": columnar_seconds,
            "dict_build_seconds": dict_seconds,
            "columnar_speedup": (
                dict_seconds / columnar_seconds
                if dict_seconds is not None and columnar_seconds
                else None
            ),
            "selections_match": selections_match,
            "select_seconds": select_seconds,
            "exact_score": exact_score,
            "quality_ratio": quality_ratio,
            "peak_rss_mb": rss["max"],
            "peak_rss_self_mb": rss["self"],
            "peak_rss_children_mb": rss["children"],
        }
        rows.append(row)
    return {
        "experiment": "scale_path",
        "budget": setup.budget,
        "n_properties": setup.n_properties,
        "mean_profile_size": setup.mean_profile_size,
        "seed": setup.seed,
        "shards": setup.shards,
        "jobs": setup.jobs,
        "epsilon": setup.epsilon,
        "dict_cap": setup.dict_cap,
        "out_of_core": setup.out_of_core,
        "rss_cap_mb": setup.rss_cap_mb,
        "run_entries": setup.run_entries,
        "quality_floor": QUALITY_FLOOR,
        "rows": rows,
    }


def scale_report_failures(report: dict) -> list[str]:
    """Acceptance checks over a scale report; empty list means all green.

    Enforced: every approximate backend stays at or above
    :data:`QUALITY_FLOOR` of the exact greedy score on every row, the
    dict-vs-columnar (or mapped-vs-in-RAM) selection check agrees where
    run, the external artifact checksum-matches the in-RAM build where
    both were built, and — when the report carries an ``rss_cap_mb`` —
    no row's whole-tree peak RSS exceeds it.
    """
    failures: list[str] = []
    rss_cap = report.get("rss_cap_mb")
    for row in report["rows"]:
        users = row["users"]
        if row["selections_match"] is False:
            failures.append(
                f"users={users}: dict and columnar selections differ"
            )
        if row.get("index_crc_match") is False:
            failures.append(
                f"users={users}: external index checksum differs from "
                f"the in-RAM build"
            )
        for backend, ratio in row["quality_ratio"].items():
            if ratio < QUALITY_FLOOR:
                failures.append(
                    f"users={users}: {backend} quality ratio "
                    f"{ratio:.4f} < {QUALITY_FLOOR}"
                )
        if rss_cap is not None and row["peak_rss_mb"] > rss_cap:
            failures.append(
                f"users={users}: peak RSS {row['peak_rss_mb']:.1f} MiB "
                f"exceeds the {rss_cap:.1f} MiB cap"
            )
    return failures
