"""§8.4's optimal-approximation experiment.

The paper restricts the population so exhaustive search stays feasible
(|U| = 40, B = 5; 443 s naive on their machine) and reports that Podium's
greedy score was a **.998 approximation of the optimal** — far above the
(1 − 1/e) ≈ 0.632 worst-case bound of Prop. 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.greedy import greedy_select
from ..core.groups import GroupingConfig, build_simple_groups
from ..core.instance import build_instance
from ..core.optimal import optimal_select
from ..datasets.synth import generate_profile_repository

#: The theoretical worst-case guarantee of Prop. 4.4.
GREEDY_BOUND = 1.0 - 1.0 / np.e


@dataclass(frozen=True)
class RatioResult:
    """Greedy-versus-optimal outcome for one instance."""

    greedy_score: float
    optimal_score: float
    ratio: float
    n_users: int
    budget: int


def measure_ratio(
    n_users: int = 40,
    budget: int = 5,
    n_properties: int = 30,
    mean_profile_size: float = 8.0,
    seed: int = 0,
) -> RatioResult:
    """Greedy/optimal score ratio on a small random instance (§8.4)."""
    repository = generate_profile_repository(
        n_users=n_users,
        n_properties=n_properties,
        mean_profile_size=mean_profile_size,
        seed=seed,
    )
    groups = build_simple_groups(repository, GroupingConfig())
    instance = build_instance(repository, budget, groups=groups)
    greedy = greedy_select(repository, instance, budget)
    best = optimal_select(repository, instance, budget)
    ratio = 1.0 if best.score == 0 else float(greedy.score / best.score)
    return RatioResult(
        greedy_score=float(greedy.score),
        optimal_score=float(best.score),
        ratio=ratio,
        n_users=n_users,
        budget=budget,
    )


def mean_ratio(
    trials: int = 5,
    seed: int = 0,
    jobs: int | None = 1,
    n_users: int = 40,
    budget: int = 5,
    n_properties: int = 30,
    mean_profile_size: float = 8.0,
) -> float:
    """Average ratio over several seeded instances.

    Each trial is one engine cell (the exhaustive search dominates), so
    ``jobs=N`` runs the trials in parallel; results are identical for
    every ``jobs`` value — the cells are deterministic.
    """
    from .engine import ExperimentCell, InstanceSpec, run_cells

    cells = [
        ExperimentCell(
            runner="ratio",
            spec=InstanceSpec(
                kind="profiles",
                n_users=n_users,
                dataset_seed=seed + trial,
                budget=budget,
                n_properties=n_properties,
                mean_profile_size=mean_profile_size,
            ),
        )
        for trial in range(trials)
    ]
    results = run_cells(cells, jobs=jobs)
    return float(np.mean([r["ratio"] for r in results]))
