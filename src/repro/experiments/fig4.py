"""Figure 4 reproduction: intrinsic diversity under customization.

The paper samples nested priority-group subsets
``G_20 ⊆ G_40 ⊆ G_60 ⊆ G_80`` uniformly at random from the Yelp group
set, feeds each as the "priority coverage" feedback ``G_d``, selects
B = 8 users, repeats 20 times and averages.  Expected shape: the four
intrinsic metrics dip slightly as ``|G_d|`` grows (priority coverage
constrains the standard groups), while the new *Feedback Group Coverage*
metric — the fraction of priority groups covered — drops markedly,
because random small groups rarely admit 8 users covering all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.customization import (
    CustomizationFeedback,
    custom_select,
    feedback_group_coverage,
)
from ..core.groups import GroupingConfig
from ..core.instance import DiversificationInstance, build_instance
from ..datasets.derive import build_repository, yelp_derive_config
from ..datasets.synth import generate, yelp_config
from ..metrics.intrinsic import evaluate_intrinsic
from .harness import INTRINSIC_METRICS, ComparisonTable

FIG4_METRICS = INTRINSIC_METRICS + ("feedback_group_coverage",)


@dataclass(frozen=True)
class Fig4Setup:
    """Knobs of the customization experiment."""

    n_users: int = 800
    budget: int = 8
    priority_sizes: tuple[int, ...] = (20, 40, 60, 80)
    repetitions: int = 20
    seed: int = 11
    grouping: GroupingConfig = field(
        default_factory=lambda: GroupingConfig(min_support=3)
    )


def _nested_priority_sets(
    instance: DiversificationInstance,
    sizes: tuple[int, ...],
    rng: np.random.Generator,
) -> list[frozenset]:
    """Sample nested subsets G_s1 ⊆ G_s2 ⊆ … of group keys."""
    keys = sorted(instance.groups.keys, key=str)
    largest = max(sizes)
    picked = rng.choice(len(keys), size=min(largest, len(keys)), replace=False)
    ordered = [keys[int(i)] for i in picked]
    return [frozenset(ordered[: min(s, len(ordered))]) for s in sizes]


def fig4(setup: Fig4Setup | None = None) -> ComparisonTable:
    """Run the Fig. 4 experiment; rows are ``no-customization`` plus one
    per priority-set size."""
    setup = setup or Fig4Setup()
    dataset = generate(yelp_config(n_users=setup.n_users), seed=setup.seed)
    repository = build_repository(dataset, yelp_derive_config())
    instance = build_instance(
        repository, setup.budget, grouping=setup.grouping
    )

    table = ComparisonTable(
        "Fig. 4 — Yelp intrinsic diversity with customization", FIG4_METRICS
    )

    # Baseline row: no customization.
    from ..core.greedy import greedy_select

    base = greedy_select(repository, instance, setup.budget)
    base_metrics = evaluate_intrinsic(instance, base.selected).as_dict()
    base_metrics["feedback_group_coverage"] = 1.0
    table.add_row("no-customization", base_metrics)

    accumulator: dict[int, list[dict[str, float]]] = {
        size: [] for size in setup.priority_sizes
    }
    for repetition in range(setup.repetitions):
        rng = np.random.default_rng((setup.seed, repetition))
        nested = _nested_priority_sets(instance, setup.priority_sizes, rng)
        for size, priority in zip(setup.priority_sizes, nested):
            feedback = CustomizationFeedback(priority=priority)
            custom = custom_select(
                repository, instance, feedback, setup.budget
            )
            metrics = evaluate_intrinsic(instance, custom.selected).as_dict()
            metrics["feedback_group_coverage"] = feedback_group_coverage(
                instance, feedback, custom.selected
            )
            accumulator[size].append(metrics)

    for size in setup.priority_sizes:
        rows = accumulator[size]
        table.add_row(
            f"priority-{size}",
            {
                metric: float(np.mean([r[metric] for r in rows]))
                for metric in FIG4_METRICS
            },
        )
    return table
