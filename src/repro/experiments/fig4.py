"""Figure 4 reproduction: intrinsic diversity under customization.

The paper samples nested priority-group subsets
``G_20 ⊆ G_40 ⊆ G_60 ⊆ G_80`` uniformly at random from the Yelp group
set, feeds each as the "priority coverage" feedback ``G_d``, selects
B = 8 users, repeats 20 times and averages.  Expected shape: the four
intrinsic metrics dip slightly as ``|G_d|`` grows (priority coverage
constrains the standard groups), while the new *Feedback Group Coverage*
metric — the fraction of priority groups covered — drops markedly,
because random small groups rarely admit 8 users covering all of them.

The repetitions are independent, so they run as engine cells: pass
``jobs=N`` to spread them over worker processes.  Cells replay the
serial loop's ``default_rng((seed, repetition))`` streams
(``seed_mode="raw"``), so every ``jobs`` value yields the same table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.greedy import greedy_select
from ..core.groups import GroupingConfig
from ..core.instance import DiversificationInstance
from ..metrics.intrinsic import evaluate_intrinsic
from .engine import ExperimentCell, InstanceSpec, materialize_cached, run_cells
from .harness import INTRINSIC_METRICS, ComparisonTable

FIG4_METRICS = INTRINSIC_METRICS + ("feedback_group_coverage",)


@dataclass(frozen=True)
class Fig4Setup:
    """Knobs of the customization experiment."""

    n_users: int = 800
    budget: int = 8
    priority_sizes: tuple[int, ...] = (20, 40, 60, 80)
    repetitions: int = 20
    seed: int = 11
    grouping: GroupingConfig = field(
        default_factory=lambda: GroupingConfig(min_support=3)
    )


def _nested_priority_sets(
    instance: DiversificationInstance,
    sizes: tuple[int, ...],
    rng: np.random.Generator,
) -> list[frozenset]:
    """Sample nested subsets G_s1 ⊆ G_s2 ⊆ … of group keys."""
    keys = sorted(instance.groups.keys, key=str)
    largest = max(sizes)
    picked = rng.choice(len(keys), size=min(largest, len(keys)), replace=False)
    ordered = [keys[int(i)] for i in picked]
    return [frozenset(ordered[: min(s, len(ordered))]) for s in sizes]


def fig4(
    setup: Fig4Setup | None = None, jobs: int | None = 1
) -> ComparisonTable:
    """Run the Fig. 4 experiment; rows are ``no-customization`` plus one
    per priority-set size.  Each repetition is one engine cell."""
    setup = setup or Fig4Setup()
    spec = InstanceSpec(
        kind="reviews",
        preset="yelp",
        n_users=setup.n_users,
        dataset_seed=setup.seed,
        budget=setup.budget,
        min_support=setup.grouping.min_support,
    )
    built = materialize_cached(spec)

    table = ComparisonTable(
        "Fig. 4 — Yelp intrinsic diversity with customization", FIG4_METRICS
    )

    # Baseline row: no customization.
    base = greedy_select(built.repository, built.instance, setup.budget)
    base_metrics = evaluate_intrinsic(built.instance, base.selected).as_dict()
    base_metrics["feedback_group_coverage"] = 1.0
    table.add_row("no-customization", base_metrics)

    cells = [
        ExperimentCell(
            runner="fig4",
            spec=spec,
            params=(setup.priority_sizes,),
            seed=(setup.seed, repetition),
            seed_mode="raw",
        )
        for repetition in range(setup.repetitions)
    ]
    accumulator: dict[int, list[dict[str, float]]] = {
        size: [] for size in setup.priority_sizes
    }
    for cell_result in run_cells(cells, jobs=jobs):
        for size, metrics in cell_result:
            accumulator[size].append(metrics)

    for size in setup.priority_sizes:
        rows = accumulator[size]
        table.add_row(
            f"priority-{size}",
            {
                metric: float(np.mean([r[metric] for r in rows]))
                for metric in FIG4_METRICS
            },
        )
    return table
