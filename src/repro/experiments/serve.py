"""Serving-path load benchmark: throughput and scaling across workers.

Boots the real HTTP service (``python -m repro serve``) as a subprocess
— once per worker count — and drives a mixed read/write workload
against it from multiple load-generator processes: mostly ``POST
/select`` with one durable ``POST /profiles/delta`` interleaved every
``delta_every`` selects.  Per worker count the report records total
requests, req/s, select latency p50/p99, acked deltas and the
per-worker share of selects (from the pool's shared counters), so the
kernel's ``SO_REUSEPORT`` balancing is visible, not assumed.

Two gate families turn the numbers into exit codes
(:func:`serve_report_failures`):

* **Throughput floor** — every worker count must sustain at least
  ``rps_floor`` requests/second; a regression in the serving path fails
  the run outright.
* **Read scaling** — with enough cores, the pooled configurations must
  beat the single-process baseline (``workers=4`` by ``scale_4x_floor``,
  ``workers=2`` by ``scale_2x_floor``).  On hosts without the cores to
  show the effect the gates are recorded as ``skipped (cpu-limited)``
  rather than silently passed — the numbers are still in the report.
* **Worker boot RSS** — the pool is booted twice from one snapshot
  (:func:`measure_worker_boot_rss`): default memory-mapped artifact
  recovery versus ``--eager-artifacts``.  The mapped boot must adopt at
  least one mmap-backed index and undercut the eager boot's mean
  per-worker ``VmRSS``.  Self-skips on single-core hosts and on hosts
  without ``/proc`` — recorded as skipped, never silently passed.

``repro bench --suite serve`` writes the report to ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from dataclasses import asdict, dataclass
from multiprocessing import get_context
from typing import Any

import numpy as np

from ..datasets.io import save_profiles
from ..datasets.synth import generate_profile_repository

_SRC_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


@dataclass(frozen=True)
class ServeBenchSetup:
    """Knobs of the serving load benchmark."""

    users: int = 2000
    n_properties: int = 120
    mean_profile_size: float = 25.0
    budget: int = 8
    seed: int = 3
    #: Worker counts to boot and load-test, in order.
    worker_counts: tuple[int, ...] = (1, 2, 4)
    #: Seconds of sustained load per worker count.
    duration_seconds: float = 6.0
    #: Load-generator processes × request threads per process.
    client_processes: int = 2
    client_threads: int = 4
    #: One profile delta per this many selects (0 disables writes).
    delta_every: int = 50
    #: Minimum acceptable req/s for every worker count.
    rps_floor: float = 25.0
    #: Read-scaling floors vs the workers=1 baseline (cpu-gated).
    scale_2x_floor: float = 1.3
    scale_4x_floor: float = 2.5
    #: Population of the worker boot-RSS comparison.  Larger than the
    #: load-test population so the checkpoint index is big enough for
    #: the mapped-versus-heap difference to clear RSS noise.
    rss_users: int = 4000
    #: Worker count booted (twice) for the RSS comparison.
    rss_workers: int = 2


def _http(
    port: int, path: str, body: bytes | None = None, timeout: float = 30.0
) -> dict[str, Any]:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body,
        method="POST" if body is not None else "GET",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _boot_server(
    profiles: str | None,
    data_dir: str,
    budget: int,
    workers: int,
    extra_args: tuple[str, ...] = (),
) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = _SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--data-dir",
        data_dir,
        "--budget",
        str(budget),
        "--port",
        "0",
        "--workers",
        str(workers),
        "--log-level",
        "warning",
    ]
    if profiles is not None:
        command[4:4] = ["--profiles", profiles]
    command.extend(extra_args)
    server = subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    assert server.stdout is not None
    line = server.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", line)
    if not match:
        server.kill()
        server.wait()
        raise RuntimeError(
            f"serve (workers={workers}) printed no address: {line!r}"
        )
    port = int(match.group(1))
    deadline = time.monotonic() + 60
    while True:
        try:
            _http(port, "/health", timeout=5)
            return server, port
        except (OSError, urllib.error.URLError):
            if time.monotonic() > deadline:
                server.kill()
                server.wait()
                raise RuntimeError(
                    f"serve (workers={workers}) never became healthy"
                ) from None
            time.sleep(0.1)


def _stop_server(server: subprocess.Popen) -> None:
    server.send_signal(signal.SIGINT)
    try:
        server.wait(timeout=30)
    except subprocess.TimeoutExpired:
        server.kill()
        server.wait()


def _client_main(
    port: int,
    duration: float,
    threads: int,
    delta_every: int,
    proc_idx: int,
    queue: Any,
) -> None:
    """One load-generator process: ``threads`` request loops."""
    merged = {"latencies": [], "deltas_acked": 0, "errors": 0}
    merge_lock = threading.Lock()
    stop_at = time.monotonic() + duration
    select_body = json.dumps(
        {"configuration": "cli", "explain": False}
    ).encode()

    def loop(thread_idx: int) -> None:
        latencies: list[float] = []
        acked = 0
        errors = 0
        n = 0
        while time.monotonic() < stop_at:
            n += 1
            if delta_every and n % delta_every == 0:
                delta = json.dumps(
                    {
                        "upserts": {
                            f"load-{proc_idx}-{thread_idx}-{n}": {
                                "bench load": 0.8
                            }
                        }
                    }
                ).encode()
                try:
                    reply = _http(port, "/profiles/delta", delta)
                    if reply.get("users"):
                        acked += 1
                except (OSError, urllib.error.URLError, ValueError):
                    errors += 1
                continue
            started = time.perf_counter()
            try:
                _http(port, "/select", select_body)
                latencies.append(time.perf_counter() - started)
            except (OSError, urllib.error.URLError, ValueError):
                errors += 1
        with merge_lock:
            merged["latencies"].extend(latencies)
            merged["deltas_acked"] += acked
            merged["errors"] += errors

    workers = [
        threading.Thread(target=loop, args=(i,)) for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    queue.put(merged)


def _drive_load(
    port: int, setup: ServeBenchSetup
) -> dict[str, Any]:
    context = get_context("fork")
    queue = context.Queue()
    processes = [
        context.Process(
            target=_client_main,
            args=(
                port,
                setup.duration_seconds,
                setup.client_threads,
                setup.delta_every,
                idx,
                queue,
            ),
        )
        for idx in range(setup.client_processes)
    ]
    started = time.monotonic()
    for process in processes:
        process.start()
    results = [queue.get(timeout=setup.duration_seconds * 10 + 60) for _ in processes]
    for process in processes:
        process.join(timeout=30)
    seconds = time.monotonic() - started
    latencies = np.array(
        [value for result in results for value in result["latencies"]],
        dtype=np.float64,
    )
    return {
        "seconds": seconds,
        "latencies": latencies,
        "deltas_acked": sum(r["deltas_acked"] for r in results),
        "errors": sum(r["errors"] for r in results),
    }


def _worker_select_share(port: int) -> list[float]:
    """Normalized per-worker select distribution from the pool counters."""
    try:
        cluster = _http(port, "/metrics").get("cluster")
    except (OSError, urllib.error.URLError, ValueError):
        return [1.0]
    if not cluster:
        return [1.0]  # single-process server: no pool counters
    counts = [
        int(row.get("selects", 0)) for row in cluster.get("per_worker", ())
    ]
    total = sum(counts)
    if not total:
        return [0.0 for _ in counts] or [1.0]
    return [round(c / total, 4) for c in counts]


def _proc_rss_kb(pid: int) -> int | None:
    """Resident set size of ``pid`` in KiB, or ``None`` off-Linux."""
    try:
        with open(f"/proc/{pid}/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def _worker_pids(port: int, expected: int, timeout: float = 15.0) -> list[int]:
    """Worker pids from the pool's shared counter rows (poll until seen)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            cluster = _http(port, "/metrics").get("cluster") or {}
        except (OSError, urllib.error.URLError, ValueError):
            cluster = {}
        pids = [
            int(row["pid"])
            for row in cluster.get("per_worker", ())
            if row.get("pid")
        ]
        if len(pids) >= expected or time.monotonic() > deadline:
            return pids
        time.sleep(0.2)


def measure_worker_boot_rss(setup: ServeBenchSetup) -> dict[str, Any]:
    """Boot the worker pool twice off one snapshot: mapped vs eager.

    A seed boot builds the ``cli`` artifact and writes a snapshot whose
    index members are stored uncompressed (mappable).  The pool is then
    booted twice against that data directory — once with the default
    memory-mapped recovery (``open_index_npz``) and once with
    ``--eager-artifacts`` (private heap copies) — and each boot records
    time-to-healthy plus every worker's post-boot ``VmRSS``.  No load is
    driven: the comparison isolates what a freshly forked worker is
    *resident* before serving, which is exactly the pages eager loading
    touches and mapping defers.
    """
    repository = generate_profile_repository(
        n_users=setup.rss_users,
        n_properties=setup.n_properties,
        mean_profile_size=setup.mean_profile_size,
        seed=setup.seed,
    )
    workdir = tempfile.mkdtemp(prefix="repro-serve-rss-")
    rows: list[dict[str, Any]] = []
    try:
        profiles = os.path.join(workdir, "profiles.json")
        save_profiles(repository, profiles)
        data_dir = os.path.join(workdir, "data")
        seed_server, port = _boot_server(profiles, data_dir, setup.budget, 1)
        try:
            # Build the serving artifact, then persist it (with its CSR
            # index) so both recovery boots adopt instead of rebuilding.
            _http(
                port,
                "/select",
                json.dumps(
                    {"configuration": "cli", "explain": False}
                ).encode(),
                timeout=120,
            )
            _http(port, "/admin/snapshot", b"{}")
        finally:
            _stop_server(seed_server)
        for mode, extra in (("mmap", ()), ("eager", ("--eager-artifacts",))):
            started = time.monotonic()
            server, port = _boot_server(
                None,
                data_dir,
                setup.budget,
                setup.rss_workers,
                extra_args=extra,
            )
            try:
                boot_seconds = time.monotonic() - started
                pids = _worker_pids(port, setup.rss_workers)
                samples = [_proc_rss_kb(pid) for pid in pids]
                rss_kb = [kb for kb in samples if kb is not None]
                storage = _http(port, "/metrics").get("storage") or {}
            finally:
                _stop_server(server)
            rows.append(
                {
                    "mode": mode,
                    "boot_seconds": boot_seconds,
                    "worker_pids": pids,
                    "worker_rss_kb": rss_kb,
                    "mean_worker_rss_kb": (
                        sum(rss_kb) / len(rss_kb) if rss_kb else None
                    ),
                    "mapped_artifact_indexes": int(
                        storage.get("mapped_artifact_indexes") or 0
                    ),
                }
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "users": setup.rss_users,
        "workers": setup.rss_workers,
        "rows": rows,
    }


def benchmark_serving(setup: ServeBenchSetup) -> dict[str, Any]:
    """Run the load benchmark; returns the BENCH_serve.json document."""
    repository = generate_profile_repository(
        n_users=setup.users,
        n_properties=setup.n_properties,
        mean_profile_size=setup.mean_profile_size,
        seed=setup.seed,
    )
    rows: list[dict[str, Any]] = []
    workdir = tempfile.mkdtemp(prefix="repro-serve-bench-")
    try:
        profiles = os.path.join(workdir, "profiles.json")
        save_profiles(repository, profiles)
        for workers in setup.worker_counts:
            data_dir = os.path.join(workdir, f"data-{workers}")
            server, port = _boot_server(
                profiles, data_dir, setup.budget, workers
            )
            try:
                # One warm request so no client pays the cold build.
                _http(
                    port,
                    "/select",
                    json.dumps(
                        {"configuration": "cli", "explain": False}
                    ).encode(),
                    timeout=120,
                )
                load = _drive_load(port, setup)
                share = _worker_select_share(port)
            finally:
                _stop_server(server)
            latencies = load["latencies"]
            selects = int(latencies.size)
            requests = selects + load["deltas_acked"]
            rows.append(
                {
                    "workers": workers,
                    "seconds": round(load["seconds"], 3),
                    "selects": selects,
                    "deltas_acked": load["deltas_acked"],
                    "errors": load["errors"],
                    "requests": requests,
                    "requests_per_second": round(
                        requests / load["seconds"], 2
                    )
                    if load["seconds"]
                    else 0.0,
                    "select_p50_ms": round(
                        float(np.percentile(latencies, 50)) * 1000.0, 3
                    )
                    if selects
                    else None,
                    "select_p99_ms": round(
                        float(np.percentile(latencies, 99)) * 1000.0, 3
                    )
                    if selects
                    else None,
                    "per_worker_select_share": share,
                }
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    cpus = os.cpu_count() or 1
    if cpus >= 2:
        worker_rss = measure_worker_boot_rss(setup)
    else:
        worker_rss = None

    report = {
        "setup": asdict(setup),
        "cpu_count": cpus,
        "rows": rows,
        "worker_rss": worker_rss,
        "gates": _evaluate_gates(setup, rows) + [_rss_gate(worker_rss)],
    }
    return report


def _evaluate_gates(
    setup: ServeBenchSetup, rows: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    gates: list[dict[str, Any]] = []
    for row in rows:
        rps = row["requests_per_second"]
        ok = rps >= setup.rps_floor and not row["errors"]
        detail = (
            f"{rps:.1f} req/s vs floor {setup.rps_floor:.1f}"
            + (f", {row['errors']} errors" if row["errors"] else "")
        )
        gates.append(
            {
                "name": f"throughput floor (workers={row['workers']})",
                "status": "passed" if ok else "failed",
                "detail": detail,
            }
        )

    by_workers = {row["workers"]: row for row in rows}
    baseline = by_workers.get(1)
    cpus = os.cpu_count() or 1
    for workers, floor, needed_cpus in (
        (2, setup.scale_2x_floor, 2),
        (4, setup.scale_4x_floor, 4),
    ):
        row = by_workers.get(workers)
        if row is None or baseline is None:
            continue
        name = f"read scaling (workers={workers} vs 1)"
        base_rps = baseline["requests_per_second"]
        ratio = row["requests_per_second"] / base_rps if base_rps else 0.0
        if cpus < needed_cpus:
            # A single busy core cannot demonstrate process-level
            # parallelism; record the ratio but do not judge it.
            gates.append(
                {
                    "name": name,
                    "status": f"skipped (cpu-limited: {cpus} < "
                    f"{needed_cpus} cores)",
                    "detail": f"measured ratio {ratio:.2f}x "
                    f"(floor {floor:.1f}x not enforced)",
                }
            )
            continue
        gates.append(
            {
                "name": name,
                "status": "passed" if ratio >= floor else "failed",
                "detail": f"{ratio:.2f}x vs floor {floor:.1f}x",
            }
        )
    return gates


def _rss_gate(worker_rss: dict[str, Any] | None) -> dict[str, Any]:
    """Judge the mapped-vs-eager worker boot comparison.

    Passes only when the mapped boot actually adopted mmap-backed
    indexes *and* its mean per-worker RSS undercuts the eager boot.
    Self-skips (never silently passes) on hosts that cannot show the
    effect: single-core machines never run the comparison, and hosts
    without ``/proc/<pid>/status`` yield no RSS samples.
    """
    name = "worker boot RSS (mmap vs eager)"
    if worker_rss is None:
        cpus = os.cpu_count() or 1
        return {
            "name": name,
            "status": f"skipped (cpu-limited: {cpus} < 2 cores)",
            "detail": "worker-pool RSS comparison not run",
        }
    by_mode = {row["mode"]: row for row in worker_rss["rows"]}
    mmap_row = by_mode.get("mmap")
    eager_row = by_mode.get("eager")
    if (
        mmap_row is None
        or eager_row is None
        or mmap_row["mean_worker_rss_kb"] is None
        or eager_row["mean_worker_rss_kb"] is None
    ):
        return {
            "name": name,
            "status": "skipped (no /proc RSS samples on this host)",
            "detail": "boot timings recorded, RSS not judged",
        }
    mmap_kb = mmap_row["mean_worker_rss_kb"]
    eager_kb = eager_row["mean_worker_rss_kb"]
    mapped = mmap_row["mapped_artifact_indexes"]
    ok = mapped >= 1 and mmap_kb < eager_kb
    detail = (
        f"mean worker RSS {mmap_kb / 1024.0:.1f} MiB mapped vs "
        f"{eager_kb / 1024.0:.1f} MiB eager "
        f"({mapped} mapped artifact index(es)); boot "
        f"{mmap_row['boot_seconds']:.2f}s vs "
        f"{eager_row['boot_seconds']:.2f}s"
    )
    return {
        "name": name,
        "status": "passed" if ok else "failed",
        "detail": detail,
    }


def serve_report_failures(report: dict[str, Any]) -> list[str]:
    """Acceptance gate: any failed gate row fails the benchmark."""
    return [
        f"{gate['name']}: {gate['detail']}"
        for gate in report.get("gates", ())
        if gate.get("status") == "failed"
    ]
