"""Figure 3 reproduction: intrinsic and opinion diversity comparisons.

* Fig. 3a — TripAdvisor intrinsic diversity (score / top-200 coverage /
  intersected coverage / distribution similarity).
* Fig. 3b — TripAdvisor opinion diversity over ≈50 held-out destinations.
* Fig. 3c — Yelp intrinsic diversity (larger Podium gap: fewer groups,
  less "room for maneuver").
* Fig. 3d — Yelp opinion diversity incl. the Usefulness metric.

Population sizes default to laptop-scale fractions of the paper's
(4,475 TripAdvisor / 60K Yelp users); the comparisons' *shape* — who
wins, who trails — is what the reproduction validates, not absolute
magnitudes (see EXPERIMENTS.md).

All four panels run on the cell-parallel experiment engine
(:mod:`repro.experiments.engine`): pass ``jobs=N`` to fan the selector
runs (3a/3c) or held-out destinations (3b/3d) over worker processes.
Cells replay the exact RNG streams of the original serial loops
(``seed_mode="raw"``), so every ``jobs`` value — including the serial
default — produces byte-identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import (
    ClusteringSelector,
    DistanceSelector,
    PodiumSelector,
    RandomSelector,
    Selector,
)
from ..core.groups import GroupingConfig
from ..datasets.schema import ReviewDataset
from ..datasets.synth import generate, tripadvisor_config, yelp_config
from ..procurement.simulate import ProcurementConfig
from .engine import (
    InstanceSpec,
    run_intrinsic_experiment,
    run_procurement_experiment,
)
from .harness import OPINION_METRICS, ComparisonTable

#: The four algorithms of Fig. 3, in the paper's order (engine keys).
FIG3_SELECTOR_KEYS: tuple[str, ...] = (
    "podium",
    "random",
    "clustering",
    "distance",
)


def default_selectors() -> list[Selector]:
    """The four algorithms of Fig. 3, in the paper's order."""
    return [
        PodiumSelector(),
        RandomSelector(),
        ClusteringSelector(),
        DistanceSelector(),
    ]


@dataclass(frozen=True)
class Fig3Setup:
    """Shared knobs for the four Fig. 3 panels."""

    ta_users: int = 500
    yelp_users: int = 1200
    budget: int = 8
    seed: int = 7
    top_k: int = 200
    min_support: int = 3
    ta_destinations: int = 25
    yelp_destinations: int = 40
    repetitions: int = 3


def _tripadvisor_dataset(setup: Fig3Setup) -> ReviewDataset:
    return generate(tripadvisor_config(n_users=setup.ta_users), seed=setup.seed)


def _yelp_dataset(setup: Fig3Setup) -> ReviewDataset:
    return generate(yelp_config(n_users=setup.yelp_users), seed=setup.seed + 1)


def _intrinsic_spec(setup: Fig3Setup, preset: str) -> InstanceSpec:
    users = setup.ta_users if preset == "tripadvisor" else setup.yelp_users
    seed = setup.seed if preset == "tripadvisor" else setup.seed + 1
    return InstanceSpec(
        kind="reviews",
        preset=preset,
        n_users=users,
        dataset_seed=seed,
        budget=setup.budget,
        min_support=setup.min_support,
    )


def _intrinsic_table(
    title: str, setup: Fig3Setup, preset: str, jobs: int | None
) -> ComparisonTable:
    result = run_intrinsic_experiment(
        title,
        _intrinsic_spec(setup, preset),
        FIG3_SELECTOR_KEYS,
        repetitions=setup.repetitions,
        top_k=setup.top_k,
        seed=setup.seed,
        jobs=jobs,
        seed_mode="raw",
    )
    return result.table


def fig3a(
    setup: Fig3Setup | None = None, jobs: int | None = 1
) -> ComparisonTable:
    """TripAdvisor intrinsic diversity (Fig. 3a)."""
    setup = setup or Fig3Setup()
    return _intrinsic_table(
        "Fig. 3a — TripAdvisor intrinsic diversity", setup, "tripadvisor", jobs
    )


def fig3c(
    setup: Fig3Setup | None = None, jobs: int | None = 1
) -> ComparisonTable:
    """Yelp intrinsic diversity (Fig. 3c)."""
    setup = setup or Fig3Setup()
    return _intrinsic_table(
        "Fig. 3c — Yelp intrinsic diversity", setup, "yelp", jobs
    )


def _opinion_table(
    title: str,
    spec: InstanceSpec,
    config: ProcurementConfig,
    seed: int,
    jobs: int | None,
) -> ComparisonTable:
    reports = run_procurement_experiment(
        spec, FIG3_SELECTOR_KEYS, config, seed=seed, jobs=jobs
    )
    table = ComparisonTable(title, OPINION_METRICS)
    for name, report in reports.items():
        table.add_row(name, report.as_dict())
    return table


def fig3b(
    setup: Fig3Setup | None = None, jobs: int | None = 1
) -> ComparisonTable:
    """TripAdvisor opinion diversity (Fig. 3b)."""
    from ..datasets.derive import tripadvisor_derive_config

    setup = setup or Fig3Setup()
    spec = InstanceSpec(
        kind="dataset",
        preset="tripadvisor",
        n_users=setup.ta_users,
        dataset_seed=setup.seed,
    )
    config = ProcurementConfig(
        budget=setup.budget,
        derive=tripadvisor_derive_config(),
        grouping=GroupingConfig(min_support=2),
        min_reviews_per_destination=15,
        max_destinations=setup.ta_destinations,
    )
    return _opinion_table(
        "Fig. 3b — TripAdvisor opinion diversity",
        spec, config, setup.seed, jobs,
    )


def fig3d(
    setup: Fig3Setup | None = None, jobs: int | None = 1
) -> ComparisonTable:
    """Yelp opinion diversity (Fig. 3d), including Usefulness."""
    from ..datasets.derive import yelp_derive_config

    setup = setup or Fig3Setup()
    spec = InstanceSpec(
        kind="dataset",
        preset="yelp",
        n_users=setup.yelp_users,
        dataset_seed=setup.seed + 1,
    )
    config = ProcurementConfig(
        budget=setup.budget,
        derive=yelp_derive_config(),
        grouping=GroupingConfig(min_support=2),
        min_reviews_per_destination=15,
        max_destinations=setup.yelp_destinations,
    )
    return _opinion_table(
        "Fig. 3d — Yelp opinion diversity", spec, config, setup.seed, jobs
    )
