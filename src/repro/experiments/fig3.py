"""Figure 3 reproduction: intrinsic and opinion diversity comparisons.

* Fig. 3a — TripAdvisor intrinsic diversity (score / top-200 coverage /
  intersected coverage / distribution similarity).
* Fig. 3b — TripAdvisor opinion diversity over ≈50 held-out destinations.
* Fig. 3c — Yelp intrinsic diversity (larger Podium gap: fewer groups,
  less "room for maneuver").
* Fig. 3d — Yelp opinion diversity incl. the Usefulness metric.

Population sizes default to laptop-scale fractions of the paper's
(4,475 TripAdvisor / 60K Yelp users); the comparisons' *shape* — who
wins, who trails — is what the reproduction validates, not absolute
magnitudes (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import (
    ClusteringSelector,
    DistanceSelector,
    PodiumSelector,
    RandomSelector,
    Selector,
)
from ..core.groups import GroupingConfig
from ..datasets.derive import (
    build_repository,
    tripadvisor_derive_config,
    yelp_derive_config,
)
from ..datasets.schema import ReviewDataset
from ..datasets.synth import generate, tripadvisor_config, yelp_config
from ..procurement.simulate import ProcurementConfig, run_procurement
from .harness import (
    OPINION_METRICS,
    ComparisonTable,
    IntrinsicExperimentConfig,
    run_intrinsic_comparison,
)


def default_selectors() -> list[Selector]:
    """The four algorithms of Fig. 3, in the paper's order."""
    return [
        PodiumSelector(),
        RandomSelector(),
        ClusteringSelector(),
        DistanceSelector(),
    ]


@dataclass(frozen=True)
class Fig3Setup:
    """Shared knobs for the four Fig. 3 panels."""

    ta_users: int = 500
    yelp_users: int = 1200
    budget: int = 8
    seed: int = 7
    top_k: int = 200
    min_support: int = 3
    ta_destinations: int = 25
    yelp_destinations: int = 40


def _tripadvisor_dataset(setup: Fig3Setup) -> ReviewDataset:
    return generate(tripadvisor_config(n_users=setup.ta_users), seed=setup.seed)


def _yelp_dataset(setup: Fig3Setup) -> ReviewDataset:
    return generate(yelp_config(n_users=setup.yelp_users), seed=setup.seed + 1)


def fig3a(setup: Fig3Setup | None = None) -> ComparisonTable:
    """TripAdvisor intrinsic diversity (Fig. 3a)."""
    setup = setup or Fig3Setup()
    dataset = _tripadvisor_dataset(setup)
    repository = build_repository(dataset, tripadvisor_derive_config())
    config = IntrinsicExperimentConfig(
        budget=setup.budget,
        grouping=GroupingConfig(min_support=setup.min_support),
        top_k=setup.top_k,
    )
    return run_intrinsic_comparison(
        "Fig. 3a — TripAdvisor intrinsic diversity",
        repository,
        default_selectors(),
        config,
        seed=setup.seed,
    )


def fig3c(setup: Fig3Setup | None = None) -> ComparisonTable:
    """Yelp intrinsic diversity (Fig. 3c)."""
    setup = setup or Fig3Setup()
    dataset = _yelp_dataset(setup)
    repository = build_repository(dataset, yelp_derive_config())
    config = IntrinsicExperimentConfig(
        budget=setup.budget,
        grouping=GroupingConfig(min_support=setup.min_support),
        top_k=setup.top_k,
    )
    return run_intrinsic_comparison(
        "Fig. 3c — Yelp intrinsic diversity",
        repository,
        default_selectors(),
        config,
        seed=setup.seed,
    )


def _opinion_table(
    title: str,
    dataset: ReviewDataset,
    config: ProcurementConfig,
    seed: int,
) -> ComparisonTable:
    reports = run_procurement(dataset, default_selectors(), config, seed=seed)
    table = ComparisonTable(title, OPINION_METRICS)
    for name, report in reports.items():
        table.add_row(name, report.as_dict())
    return table


def fig3b(setup: Fig3Setup | None = None) -> ComparisonTable:
    """TripAdvisor opinion diversity (Fig. 3b)."""
    setup = setup or Fig3Setup()
    dataset = _tripadvisor_dataset(setup)
    config = ProcurementConfig(
        budget=setup.budget,
        derive=tripadvisor_derive_config(),
        grouping=GroupingConfig(min_support=2),
        min_reviews_per_destination=15,
        max_destinations=setup.ta_destinations,
    )
    return _opinion_table(
        "Fig. 3b — TripAdvisor opinion diversity", dataset, config, setup.seed
    )


def fig3d(setup: Fig3Setup | None = None) -> ComparisonTable:
    """Yelp opinion diversity (Fig. 3d), including Usefulness."""
    setup = setup or Fig3Setup()
    dataset = _yelp_dataset(setup)
    config = ProcurementConfig(
        budget=setup.budget,
        derive=yelp_derive_config(),
        grouping=GroupingConfig(min_support=2),
        min_reviews_per_destination=15,
        max_destinations=setup.yelp_destinations,
    )
    return _opinion_table(
        "Fig. 3d — Yelp opinion diversity", dataset, config, setup.seed
    )
