"""Experiment harness reproducing every table and figure of the paper."""

from .engine import (
    ExperimentCell,
    InstanceSpec,
    IntrinsicEngineResult,
    benchmark_experiment_engine,
    cell_rng,
    make_selector,
    run_cells,
    run_intrinsic_experiment,
    run_procurement_experiment,
)
from .constraints import (
    ConstraintsSetup,
    benchmark_constraints,
    constraints_report_failures,
    constraints_table,
    run_constraints_experiment,
)
from .fig3 import Fig3Setup, default_selectors, fig3a, fig3b, fig3c, fig3d
from .fig4 import FIG4_METRICS, Fig4Setup, fig4
from .harness import (
    INTRINSIC_METRICS,
    OPINION_METRICS,
    ComparisonTable,
    IntrinsicExperimentConfig,
    TimingRow,
    build_experiment_instance,
    run_intrinsic_comparison,
    time_selector,
)
from .optimal_ratio import GREEDY_BOUND, RatioResult, mean_ratio, measure_ratio
from .scale import (
    QUALITY_FLOOR,
    ScaleSetup,
    benchmark_scale_path,
    scale_report_failures,
)
from .serve import (
    ServeBenchSetup,
    benchmark_serving,
    serve_report_failures,
)
from .scalability import (
    ScalabilitySetup,
    linear_fit_r2,
    scalability_in_profile_size,
    scalability_in_users,
    timing_table,
)
from .table1 import DesideratumCheck, check_podium_row, podium_row_markdown

__all__ = [
    "ExperimentCell",
    "InstanceSpec",
    "IntrinsicEngineResult",
    "benchmark_experiment_engine",
    "cell_rng",
    "make_selector",
    "run_cells",
    "run_intrinsic_experiment",
    "run_procurement_experiment",
    "ConstraintsSetup",
    "benchmark_constraints",
    "constraints_report_failures",
    "constraints_table",
    "run_constraints_experiment",
    "Fig3Setup",
    "default_selectors",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig3d",
    "FIG4_METRICS",
    "Fig4Setup",
    "fig4",
    "INTRINSIC_METRICS",
    "OPINION_METRICS",
    "ComparisonTable",
    "IntrinsicExperimentConfig",
    "TimingRow",
    "build_experiment_instance",
    "run_intrinsic_comparison",
    "time_selector",
    "GREEDY_BOUND",
    "RatioResult",
    "mean_ratio",
    "measure_ratio",
    "QUALITY_FLOOR",
    "ScaleSetup",
    "benchmark_scale_path",
    "scale_report_failures",
    "ServeBenchSetup",
    "benchmark_serving",
    "serve_report_failures",
    "ScalabilitySetup",
    "linear_fit_r2",
    "scalability_in_profile_size",
    "scalability_in_users",
    "timing_table",
    "DesideratumCheck",
    "check_podium_row",
    "podium_row_markdown",
]

from .report import build_report  # noqa: E402  (kept last: heavy imports)

__all__.append("build_report")
