"""Constrained-selection experiment: the price of fairness.

Extension beyond the paper's §8 suite: hard per-group floors/ceilings
and cluster-budgeted diversity (`repro.constraints`) generalize the
customization constraints ``G₊``/``G₋`` of Def. 6.1, so the natural
question is what they *cost* — how much coverage a constrained panel
gives up versus the unconstrained greedy optimum on the same instance.

One experiment cell = one constraint scenario on one instance:

* the **fair** scenario places a floor on the largest group of each of
  the ``floors`` highest-membership properties and a ceiling on the
  next ``ceilings`` of them — the sortition shape (demographic quotas
  plus an over-representation cap);
* each **clustered** scenario runs cluster-budgeted selection for one
  ``(method, k)`` combination.

Every cell reports the *price of fairness* — the constrained/
unconstrained coverage ratio — and the floor-satisfaction rate.  Both
solvers are deterministic (matrix method, fixed partition seeds), so
cells carry no rng and any ``jobs`` value yields identical rows.

``repro bench --suite constraints`` wraps the same cells with
wall-clock timings and writes ``BENCH_constraints.json``, gating on a
quality-ratio floor: constraints must bend the panel, not break it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..constraints import ClusterSpec, ConstraintSpec, constrained_select
from ..core.greedy import select_from_index
from ..core.groups import GroupKey
from ..core.index import InstanceIndex, instance_index

#: Minimum acceptable constrained/unconstrained coverage ratio — the
#: floor the acceptance tests and the CLI gate enforce.  Constraints
#: trade coverage for guarantees; below this the trade is broken.
QUALITY_FLOOR = 0.85


@dataclass(frozen=True)
class ConstraintsSetup:
    """Knobs of the constrained-selection experiment and benchmark."""

    users: int = 2000
    n_properties: int = 60
    mean_profile_size: float = 10.0
    budget: int = 12
    seed: int = 3
    #: Floor ``floor_bound`` on the largest group of this many
    #: highest-membership properties.
    floors: int = 3
    floor_bound: int = 2
    #: Ceiling ``ceiling_bound`` on the largest group of the next this
    #: many properties.
    ceilings: int = 2
    ceiling_bound: int = 1
    cluster_methods: tuple[str, ...] = ("stratified", "kmeans")
    cluster_ks: tuple[int, ...] = (2, 4, 8)
    cluster_seed: int = 0
    jobs: int | None = 1
    quality_floor: float = QUALITY_FLOOR


def fair_bound_spec(
    index: InstanceIndex,
    floors: int,
    floor_bound: int,
    ceilings: int,
    ceiling_bound: int,
) -> ConstraintSpec:
    """Sortition-shaped bounds derived from the index's group sizes.

    Ranks properties by their largest group's membership (ties broken
    on the group key string, so the spec is deterministic), then floors
    the top ``floors`` properties' largest groups and caps the next
    ``ceilings``.  Distinct properties keep per-property floor sums
    trivially feasible.
    """
    sizes = np.diff(index.g_indptr)
    best: dict[str, tuple[int, GroupKey]] = {}
    for position, key in enumerate(index.group_keys):
        size = int(sizes[position])
        current = best.get(key.property_label)
        if (
            current is None
            or size > current[0]
            or (size == current[0] and str(key) < str(current[1]))
        ):
            best[key.property_label] = (size, key)
    ranked = sorted(best.values(), key=lambda entry: (-entry[0], str(entry[1])))
    floor_keys = [key for _, key in ranked[:floors]]
    ceiling_keys = [key for _, key in ranked[floors:floors + ceilings]]
    return ConstraintSpec.build(
        floors={key: floor_bound for key in floor_keys},
        ceilings={key: ceiling_bound for key in ceiling_keys},
    )


def run_constraint_cell(spec, params: tuple) -> dict:
    """One scenario: unconstrained exact vs constrained, on one index.

    ``params`` is ``("fair", floors, floor_bound, ceilings,
    ceiling_bound)`` or ``("clustered", method, k, cluster_seed)``.
    Registered with the engine as the ``"constraints"`` cell runner.
    """
    from .engine import materialize_cached

    built = materialize_cached(spec)
    index = instance_index(built.instance)

    start = time.perf_counter()
    exact = select_from_index(index, spec.budget, method="matrix")
    exact_seconds = time.perf_counter() - start

    scenario = params[0]
    if scenario == "fair":
        constraint = fair_bound_spec(index, *params[1:])
        label = (
            f"fair floors={len(constraint.floors)}x{params[2]} "
            f"ceilings={len(constraint.ceilings)}x{params[4]}"
        )
    else:
        method, k, cluster_seed = params[1:]
        constraint = ConstraintSpec.build(
            clusters=ClusterSpec(method=method, k=k, seed=cluster_seed)
        )
        label = f"clustered {method} k={k}"

    start = time.perf_counter()
    outcome = constrained_select(index, constraint, spec.budget)
    constrained_seconds = time.perf_counter() - start

    exact_score = float(exact.score)
    report = outcome.to_dict()
    floor_rows = report.get("floors") or []
    return {
        "scenario": label,
        "mode": constraint.mode,
        "users": spec.n_users,
        "budget": spec.budget,
        "exact_score": exact_score,
        "constrained_score": float(outcome.result.score),
        "price_of_fairness": (
            float(outcome.result.score) / exact_score
            if exact_score
            else 1.0
        ),
        "satisfied": outcome.satisfied,
        "floor_satisfaction_rate": (
            sum(1 for row in floor_rows if row["satisfied"])
            / len(floor_rows)
            if floor_rows
            else None
        ),
        "selected_size": len(outcome.selected),
        "exact_seconds": exact_seconds,
        "constrained_seconds": constrained_seconds,
    }


def constraints_cells(setup: ConstraintsSetup) -> list:
    """Enumerate the scenario cells in canonical (reported) order."""
    from .engine import ExperimentCell, InstanceSpec

    spec = InstanceSpec(
        kind="profiles",
        n_users=setup.users,
        n_properties=setup.n_properties,
        mean_profile_size=setup.mean_profile_size,
        dataset_seed=setup.seed,
        budget=setup.budget,
    )
    scenarios: list[tuple] = [
        (
            "fair",
            setup.floors,
            setup.floor_bound,
            setup.ceilings,
            setup.ceiling_bound,
        )
    ]
    for method in setup.cluster_methods:
        for k in setup.cluster_ks:
            scenarios.append(("clustered", method, k, setup.cluster_seed))
    return [
        ExperimentCell(runner="constraints", spec=spec, params=params)
        for params in scenarios
    ]


def run_constraints_experiment(
    setup: ConstraintsSetup | None = None, jobs: int | None = None
) -> list[dict]:
    """Run every scenario; returns one row dict per scenario."""
    from .engine import run_cells

    setup = setup or ConstraintsSetup()
    if jobs is None:
        jobs = setup.jobs
    return run_cells(constraints_cells(setup), jobs=jobs)


def constraints_table(rows: list[dict]) -> str:
    """Markdown table of the per-scenario fairness/coverage trade."""
    lines = [
        "| scenario | coverage | vs unconstrained | floors met | "
        "satisfied |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        rate = row["floor_satisfaction_rate"]
        lines.append(
            "| {scenario} | {score:.0f} | {price:.3f} | {rate} | "
            "{satisfied} |".format(
                scenario=row["scenario"],
                score=row["constrained_score"],
                price=row["price_of_fairness"],
                rate="-" if rate is None else f"{rate:.0%}",
                satisfied="yes" if row["satisfied"] else "NO",
            )
        )
    return "\n".join(lines)


def benchmark_constraints(setup: ConstraintsSetup | None = None) -> dict:
    """Run the suite and return the ``BENCH_constraints.json`` payload."""
    setup = setup or ConstraintsSetup()
    rows = run_constraints_experiment(setup)
    return {
        "experiment": "constrained_selection",
        "users": setup.users,
        "budget": setup.budget,
        "n_properties": setup.n_properties,
        "mean_profile_size": setup.mean_profile_size,
        "seed": setup.seed,
        "floors": setup.floors,
        "floor_bound": setup.floor_bound,
        "ceilings": setup.ceilings,
        "ceiling_bound": setup.ceiling_bound,
        "cluster_methods": list(setup.cluster_methods),
        "cluster_ks": list(setup.cluster_ks),
        "quality_floor": setup.quality_floor,
        "rows": rows,
    }


def constraints_report_failures(report: dict) -> list[str]:
    """Acceptance checks over a constraints report; empty = all green.

    Enforced: every scenario's bounds are satisfied (fair scenarios at
    100% floor satisfaction), and the price of fairness stays at or
    above the quality floor — a constrained panel must keep most of the
    unconstrained coverage.
    """
    failures: list[str] = []
    floor = report["quality_floor"]
    for row in report["rows"]:
        scenario = row["scenario"]
        if not row["satisfied"]:
            failures.append(f"{scenario}: bounds not satisfied")
        rate = row["floor_satisfaction_rate"]
        if rate is not None and rate < 1.0:
            failures.append(
                f"{scenario}: floor satisfaction {rate:.0%} < 100%"
            )
        if row["price_of_fairness"] < floor:
            failures.append(
                f"{scenario}: price of fairness "
                f"{row['price_of_fairness']:.4f} < {floor}"
            )
    return failures
