"""Table 1's Podium row as executable checks.

Table 1 compares diversification solutions along six desiderata; Podium
claims all of them: coverage-based, intrinsic, Range, High-Dimension,
Explanations, Customizable.  Rather than restating the claims, this
module *demonstrates* each on a live instance and reports a boolean with
evidence — the closest a reproduction can get to a qualitative table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.customization import CustomizationFeedback, custom_select
from ..core.explanations import explain_selection
from ..core.greedy import greedy_select
from ..core.groups import GroupingConfig, build_simple_groups
from ..core.instance import build_instance
from ..core.scoring import covered_groups
from ..datasets.synth import generate_profile_repository


@dataclass(frozen=True)
class DesideratumCheck:
    """One verified Table 1 cell for the Podium row."""

    name: str
    holds: bool
    evidence: str


def check_podium_row(
    n_users: int = 120, budget: int = 6, seed: int = 0
) -> list[DesideratumCheck]:
    """Verify every Table 1 desideratum Podium claims, on a live run."""
    repository = generate_profile_repository(
        n_users=n_users,
        n_properties=400,
        mean_profile_size=60.0,
        seed=seed,
    )
    groups = build_simple_groups(repository, GroupingConfig(min_support=2))
    instance = build_instance(repository, budget, groups=groups)
    result = greedy_select(repository, instance, budget)
    checks: list[DesideratumCheck] = []

    covered = covered_groups(instance, result.selected)
    checks.append(
        DesideratumCheck(
            "coverage-based",
            len(covered) > 0,
            f"score rewards covered groups: {len(covered)} groups covered "
            f"by {len(result.selected)} users",
        )
    )

    # Intrinsic: the objective reads only known profile properties — the
    # instance carries no opinion predictions at all.
    checks.append(
        DesideratumCheck(
            "intrinsic",
            True,
            "objective uses only (user, property, score) triples; "
            "no opinion prediction model exists in the pipeline",
        )
    )

    numeric_buckets = [
        g
        for g in instance.groups
        if g.bucket is not None and g.bucket.label not in ("true", "false")
    ]
    range_properties = {g.key.property_label for g in numeric_buckets}
    checks.append(
        DesideratumCheck(
            "range",
            len(range_properties) > 0,
            f"{len(range_properties)} properties diversified along "
            f"low-to-high score buckets",
        )
    )

    checks.append(
        DesideratumCheck(
            "high-dimension",
            repository.max_profile_size() >= 50 and len(instance.groups) > 200,
            f"profiles up to {repository.max_profile_size()} properties, "
            f"{len(instance.groups)} groups handled",
        )
    )

    explanation = explain_selection(result)
    checks.append(
        DesideratumCheck(
            "explanations",
            len(explanation.user_explanations) == len(result.selected)
            and len(explanation.subset_group_explanations) == len(instance.groups),
            "group, user and subset-group explanations produced for every "
            "selected user and group",
        )
    )

    # Customizable: a must-not feedback on the first pick's groups changes
    # the selected subset.
    first_groups = instance.groups.groups_of(result.selected[0])
    feedback = CustomizationFeedback(
        must_not=frozenset(sorted(first_groups, key=str)[:1])
    )
    custom = custom_select(repository, instance, feedback, budget)
    checks.append(
        DesideratumCheck(
            "customizable",
            result.selected[0] not in custom.selected,
            f"excluding one group removed {result.selected[0]!r} from the "
            f"selection",
        )
    )
    return checks


def podium_row_markdown(checks: list[DesideratumCheck]) -> str:
    """Render the verified row as a markdown table."""
    lines = [
        "| desideratum | holds | evidence |",
        "|---|---|---|",
    ]
    for check in checks:
        mark = "yes" if check.holds else "NO"
        lines.append(f"| {check.name} | {mark} | {check.evidence} |")
    return "\n".join(lines)
