"""Parallel experiment engine: fan experiment *cells* over processes.

Every §8 experiment decomposes into independent cells — one selector run
plus its metric evaluations for a given configuration and repetition.
The engine makes that decomposition explicit and executes it either
serially or over a :class:`~concurrent.futures.ProcessPoolExecutor`,
with three guarantees:

* **Determinism across job counts.**  Cells are enumerated in a
  canonical order and cell ``i`` draws its randomness from
  ``np.random.SeedSequence(seed).spawn(n)[i]`` (reconstructed in the
  worker as ``SeedSequence(entropy=seed, spawn_key=(i,))``, which is the
  identical sequence).  Results are reassembled positionally, so
  ``jobs=1`` and ``jobs=N`` produce byte-identical tables and
  selections.
* **Compact work shipping.**  Workers receive an
  :class:`InstanceSpec` — the handful of integers that *rebuild* a
  configuration — never a pickled repository or
  :class:`~repro.core.index.InstanceIndex`.  Each worker materializes a
  spec at most once (module-level cache); under the default ``fork``
  start method the parent pre-materializes every spec so children
  inherit the built instance and its CSR index copy-on-write for free.
* **One instance build per configuration.**  Materialization runs the
  offline grouping module (Fig. 1) and warms the sparse index, so every
  cell of a configuration shares one build — in a worker or in the
  parent.

The figure modules (:mod:`~repro.experiments.fig3`,
:mod:`~repro.experiments.fig4`, :mod:`~repro.experiments.scalability`,
:mod:`~repro.experiments.optimal_ratio`) all route through
:func:`run_cells`; ``repro report --jobs N`` and ``repro bench --suite
experiments`` expose the knob on the command line.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import zlib
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..baselines import (
    ClusteringSelector,
    DistanceSelector,
    PodiumSelector,
    RandomSelector,
    Selector,
)
from ..core.errors import PodiumError
from ..core.greedy import greedy_select
from ..core.groups import GroupingConfig, build_simple_groups
from ..core.index import instance_index
from ..core.instance import build_instance
from ..core.optimal import optimal_select
from ..core.weights import EBSWeights, IdenWeights, LBSWeights, PropCoverage, SingleCoverage
from ..datasets.derive import (
    build_repository,
    tripadvisor_derive_config,
    yelp_derive_config,
)
from ..datasets.synth import (
    generate,
    generate_profile_repository,
    tripadvisor_config,
    yelp_config,
)
from ..metrics.intrinsic import evaluate_intrinsic
from .harness import INTRINSIC_METRICS, ComparisonTable

_WEIGHT_SCHEMES = {None: None, "Iden": IdenWeights, "LBS": LBSWeights, "EBS": EBSWeights}
_COVERAGE_SCHEMES = {None: None, "Single": SingleCoverage, "Prop": PropCoverage}

_SYNTH_PRESETS = {"tripadvisor": tripadvisor_config, "yelp": yelp_config}
_DERIVE_PRESETS = {
    "tripadvisor": tripadvisor_derive_config,
    "yelp": yelp_derive_config,
}


# ---------------------------------------------------------------------------
# Instance specs — the compact rebuild recipe shipped to workers.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MaterializedSpec:
    """What a spec rebuilds: dataset and/or repository + instance."""

    dataset: Any = None
    repository: Any = None
    instance: Any = None


@dataclass(frozen=True)
class InstanceSpec:
    """Compact, hashable recipe for one experiment configuration.

    ``kind`` selects the rebuild path:

    * ``"profiles"`` — :func:`generate_profile_repository` (the Figs. 5–6
      populations) + grouping + instance;
    * ``"reviews"`` — synthetic review platform (``preset``) + profile
      derivation + grouping + instance (the Fig. 3/4 populations);
    * ``"dataset"`` — the raw review dataset only (procurement cells
      derive their own per-destination holdout repositories).
    """

    kind: str
    preset: str = "tripadvisor"
    n_users: int = 500
    dataset_seed: int = 0
    budget: int = 8
    min_support: int = 1
    n_properties: int = 200
    mean_profile_size: float = 40.0
    weight_scheme: str | None = None
    coverage_scheme: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("profiles", "reviews", "dataset"):
            raise PodiumError(
                f"spec kind must be 'profiles', 'reviews' or 'dataset', "
                f"got {self.kind!r}"
            )
        if self.kind != "profiles" and self.preset not in _SYNTH_PRESETS:
            raise PodiumError(f"unknown preset {self.preset!r}")
        if self.weight_scheme not in _WEIGHT_SCHEMES:
            raise PodiumError(f"unknown weight scheme {self.weight_scheme!r}")
        if self.coverage_scheme not in _COVERAGE_SCHEMES:
            raise PodiumError(
                f"unknown coverage scheme {self.coverage_scheme!r}"
            )

    def materialize(self) -> MaterializedSpec:
        """Rebuild the configuration from scratch (deterministic)."""
        if self.kind == "profiles":
            repository = generate_profile_repository(
                n_users=self.n_users,
                n_properties=self.n_properties,
                mean_profile_size=self.mean_profile_size,
                seed=self.dataset_seed,
            )
            dataset = None
        else:
            config = _SYNTH_PRESETS[self.preset](n_users=self.n_users)
            dataset = generate(config, seed=self.dataset_seed)
            if self.kind == "dataset":
                return MaterializedSpec(dataset=dataset)
            repository = build_repository(
                dataset, _DERIVE_PRESETS[self.preset]()
            )
        groups = build_simple_groups(
            repository, GroupingConfig(min_support=self.min_support)
        )
        weight_cls = _WEIGHT_SCHEMES[self.weight_scheme]
        coverage_cls = _COVERAGE_SCHEMES[self.coverage_scheme]
        instance = build_instance(
            repository,
            self.budget,
            groups=groups,
            weight_scheme=weight_cls() if weight_cls else None,
            coverage_scheme=coverage_cls() if coverage_cls else None,
        )
        instance_index(instance)  # warm the CSR index: one build per config
        return MaterializedSpec(
            dataset=dataset, repository=repository, instance=instance
        )


#: Per-process materialization cache.  Under ``fork`` the parent warms it
#: before spawning workers, so children inherit built instances
#: copy-on-write; under ``spawn`` each worker rebuilds a spec on first use.
_SPEC_CACHE: dict[InstanceSpec, MaterializedSpec] = {}


def materialize_cached(spec: InstanceSpec) -> MaterializedSpec:
    """Materialize ``spec`` once per process."""
    hit = _SPEC_CACHE.get(spec)
    if hit is None:
        hit = spec.materialize()
        _SPEC_CACHE[spec] = hit
    return hit


# ---------------------------------------------------------------------------
# Selector registry — cells name selectors by key, workers instantiate.
# ---------------------------------------------------------------------------

_SELECTOR_FACTORIES: dict[str, Callable[[], Selector]] = {
    "podium": PodiumSelector,
    "podium-eager": lambda: PodiumSelector(method="eager"),
    "podium-sharded": lambda: PodiumSelector(method="sharded"),
    "podium-stochastic": lambda: PodiumSelector(method="stochastic"),
    "random": RandomSelector,
    "clustering": ClusteringSelector,
    "distance": DistanceSelector,
    "distance-min": lambda: DistanceSelector("min"),
    "distance-legacy": lambda: DistanceSelector(implementation="legacy"),
    "distance-min-legacy": lambda: DistanceSelector(
        "min", implementation="legacy"
    ),
}

#: Row names used when assembling tables from selector keys.
SELECTOR_DISPLAY = {
    "podium": "Podium",
    "podium-eager": "Podium",
    "podium-sharded": "Podium-sharded",
    "podium-stochastic": "Podium-stochastic",
    "random": "Random",
    "clustering": "Clustering",
    "distance": "Distance",
    "distance-legacy": "Distance",
    "distance-min": "Distance-min",
    "distance-min-legacy": "Distance-min",
}


def make_selector(key: str) -> Selector:
    """Instantiate the selector registered under ``key``."""
    try:
        return _SELECTOR_FACTORIES[key]()
    except KeyError:
        raise PodiumError(
            f"unknown selector key {key!r}; known: "
            f"{sorted(_SELECTOR_FACTORIES)}"
        ) from None


# ---------------------------------------------------------------------------
# Cells and the process-pool driver.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentCell:
    """One independent unit of experiment work.

    With ``seed_mode="spawn"`` (the default), ``seed`` is
    ``(entropy, spawn_index)`` and the worker rebuilds the rng as
    ``SeedSequence(entropy=entropy, spawn_key=(spawn_index,))`` — exactly
    the child ``SeedSequence(entropy).spawn(...)`` would hand out for that
    index — so the stream depends only on the cell's identity, never on
    which process or in which order it runs.

    ``seed_mode="raw"`` instead feeds ``seed`` verbatim to
    ``np.random.default_rng``; the figure modules use it to reproduce the
    exact streams of the pre-engine serial loops (e.g. Fig. 3's
    ``default_rng((seed, selector_index, repetition))``), which is equally
    schedule-independent.  ``seed=None`` runs the cell without an rng
    (fully deterministic selectors).
    """

    runner: str
    spec: InstanceSpec
    params: tuple = ()
    seed: tuple | None = None
    seed_mode: str = "spawn"


def cell_rng(cell: ExperimentCell) -> np.random.Generator | None:
    """Reconstruct the cell's deterministic, process-independent rng."""
    if cell.seed is None:
        return None
    if cell.seed_mode == "raw":
        return np.random.default_rng(cell.seed)
    if cell.seed_mode != "spawn":
        raise PodiumError(
            f"seed_mode must be 'spawn' or 'raw', got {cell.seed_mode!r}"
        )
    entropy, spawn_index = cell.seed
    return np.random.default_rng(
        np.random.SeedSequence(entropy=entropy, spawn_key=(spawn_index,))
    )


_CELL_RUNNERS: dict[str, Callable] = {}


def _runner(name: str) -> Callable:
    def register(fn: Callable) -> Callable:
        _CELL_RUNNERS[name] = fn
        return fn

    return register


def run_cell(cell: ExperimentCell):
    """Execute one cell in the current process (worker entry point)."""
    try:
        fn = _CELL_RUNNERS[cell.runner]
    except KeyError:
        raise PodiumError(
            f"unknown cell runner {cell.runner!r}; known: "
            f"{sorted(_CELL_RUNNERS)}"
        ) from None
    return fn(cell.spec, cell.params, cell_rng(cell))


def normalize_jobs(jobs: int | None) -> int:
    """``None``/``0``/negative → every core; otherwise ``jobs``."""
    if not jobs or jobs < 1:
        return os.cpu_count() or 1
    return jobs


def run_cells(cells: Iterable[ExperimentCell], jobs: int | None = 1) -> list:
    """Run every cell, serially or across ``jobs`` worker processes.

    Results come back in cell order regardless of completion order, and
    per-cell seeding makes them independent of the schedule, so any
    ``jobs`` value yields identical output.
    """
    cells = list(cells)
    jobs = normalize_jobs(jobs)
    if jobs <= 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    if multiprocessing.get_start_method() == "fork":
        # Build each configuration once in the parent: forked workers
        # inherit the materialized instances copy-on-write instead of
        # rebuilding (or being shipped pickles).
        for cell in cells:
            materialize_cached(cell.spec)
    workers = min(jobs, len(cells))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run_cell, cells))


# ---------------------------------------------------------------------------
# Cell runners.
# ---------------------------------------------------------------------------


@_runner("intrinsic")
def _intrinsic_cell(
    spec: InstanceSpec, params: tuple, rng: np.random.Generator | None
) -> dict:
    """One selector run + its intrinsic metric evaluations."""
    selector_key, top_k, metrics_method = params
    built = materialize_cached(spec)
    selector = make_selector(selector_key)
    selected = selector.select(
        built.repository, built.instance, spec.budget, rng=rng
    )
    report = evaluate_intrinsic(
        built.instance, selected, k=top_k, method=metrics_method
    )
    return {"selected": list(selected), "metrics": report.as_dict()}


@_runner("procurement")
def _procurement_cell(
    spec: InstanceSpec, params: tuple, rng: np.random.Generator | None
) -> dict:
    """One held-out destination: every selector's procurement selection.

    Mirrors :func:`repro.procurement.simulate.run_procurement` exactly —
    shared holdout repository per destination, crc32-tagged rng stream
    per selector — so the parallel run is byte-identical to the serial
    one.
    """
    from ..procurement.simulate import holdout_repository, procure_destination

    destination, destination_index, selector_keys, config, seed = params
    built = materialize_cached(spec)
    repository = holdout_repository(built.dataset, destination, config)
    selections: dict[str, list[str]] = {}
    for key in selector_keys:
        selector = make_selector(key)
        name_tag = zlib.crc32(selector.name.encode()) & 0xFFFF
        stream = np.random.default_rng((seed, destination_index, name_tag))
        selections[key] = procure_destination(
            built.dataset,
            destination,
            selector,
            config,
            rng=stream,
            repository=repository,
        )
    return selections


@_runner("fig4")
def _fig4_cell(
    spec: InstanceSpec, params: tuple, rng: np.random.Generator | None
) -> list[tuple[int, dict]]:
    """One Fig. 4 repetition: nested priority sets, one run per size."""
    from ..core.customization import (
        CustomizationFeedback,
        custom_select,
        feedback_group_coverage,
    )
    from .fig4 import _nested_priority_sets

    priority_sizes = params[0]
    built = materialize_cached(spec)
    nested = _nested_priority_sets(built.instance, priority_sizes, rng)
    results = []
    for size, priority in zip(priority_sizes, nested):
        feedback = CustomizationFeedback(priority=priority)
        custom = custom_select(
            built.repository, built.instance, feedback, spec.budget
        )
        metrics = evaluate_intrinsic(built.instance, custom.selected).as_dict()
        metrics["feedback_group_coverage"] = feedback_group_coverage(
            built.instance, feedback, custom.selected
        )
        results.append((size, metrics))
    return results


@_runner("timing")
def _timing_cell(
    spec: InstanceSpec, params: tuple, rng: np.random.Generator | None
) -> float:
    """Wall-clock one selection run (Figs. 5–6); build time excluded."""
    (selector_key,) = params
    built = materialize_cached(spec)
    selector = make_selector(selector_key)
    start = time.perf_counter()
    selector.select(built.repository, built.instance, spec.budget, rng=rng)
    return time.perf_counter() - start


@_runner("constraints")
def _constraints_cell(
    spec: InstanceSpec, params: tuple, rng: np.random.Generator | None
) -> dict:
    """One constrained-selection scenario vs the unconstrained greedy."""
    from .constraints import run_constraint_cell

    return run_constraint_cell(spec, params)


@_runner("ratio")
def _ratio_cell(
    spec: InstanceSpec, params: tuple, rng: np.random.Generator | None
) -> dict:
    """Greedy vs exhaustive-optimal scores on one (tiny) instance."""
    built = materialize_cached(spec)
    greedy = greedy_select(built.repository, built.instance, spec.budget)
    best = optimal_select(built.repository, built.instance, spec.budget)
    ratio = 1.0 if best.score == 0 else float(greedy.score / best.score)
    return {
        "greedy_score": float(greedy.score),
        "optimal_score": float(best.score),
        "ratio": ratio,
    }


# ---------------------------------------------------------------------------
# High-level experiment drivers.
# ---------------------------------------------------------------------------


@dataclass
class IntrinsicEngineResult:
    """Assembled output of an engine-run intrinsic comparison."""

    table: ComparisonTable
    #: Selector key -> one selection per repetition, in cell order.
    selections: dict[str, list[list[str]]] = field(default_factory=dict)


def intrinsic_cells(
    spec: InstanceSpec,
    selectors: Sequence[tuple[str, int]],
    top_k: int,
    seed: int,
    metrics_method: str = "vector",
    unseeded: tuple[str, ...] = (),
    seed_mode: str = "spawn",
) -> list[ExperimentCell]:
    """Enumerate intrinsic cells — ``(key, repetitions)`` per selector.

    In ``"spawn"`` mode the spawn index advances for every cell (including
    unseeded ones), so two cell lists with the same shape draw the same
    streams per position — what the benchmark's legacy/vectorized parity
    rides on.  In ``"raw"`` mode cell ``(selector_index, rep)`` seeds
    ``default_rng((seed, selector_index, rep))``, replaying the
    pre-engine serial loop of ``run_intrinsic_comparison`` exactly.
    """
    cells = []
    spawn_index = 0
    for selector_index, (key, repetitions) in enumerate(selectors):
        for rep in range(repetitions):
            if key in unseeded:
                cell_seed = None
            elif seed_mode == "raw":
                cell_seed = (seed, selector_index, rep)
            else:
                cell_seed = (seed, spawn_index)
            cells.append(
                ExperimentCell(
                    runner="intrinsic",
                    spec=spec,
                    params=(key, top_k, metrics_method),
                    seed=cell_seed,
                    seed_mode=seed_mode,
                )
            )
            spawn_index += 1
    return cells


def run_intrinsic_experiment(
    title: str,
    spec: InstanceSpec,
    selector_keys: Sequence[str],
    repetitions: int = 3,
    top_k: int = 200,
    seed: int = 0,
    jobs: int | None = 1,
    stochastic: tuple[str, ...] = ("random", "clustering"),
    metrics_method: str = "vector",
    unseeded: tuple[str, ...] = (),
    seed_mode: str = "spawn",
) -> IntrinsicEngineResult:
    """Engine-backed equivalent of ``run_intrinsic_comparison``.

    Stochastic selectors are averaged over ``repetitions`` independent
    cells; deterministic ones pay a single cell.  Any ``jobs`` value
    yields the identical table.
    """
    selectors = [
        (key, repetitions if key in stochastic else 1)
        for key in selector_keys
    ]
    cells = intrinsic_cells(
        spec, selectors, top_k, seed,
        metrics_method=metrics_method, unseeded=unseeded,
        seed_mode=seed_mode,
    )
    results = run_cells(cells, jobs=jobs)

    table = ComparisonTable(title, INTRINSIC_METRICS)
    selections: dict[str, list[list[str]]] = {}
    position = 0
    for key, reps in selectors:
        chunk = results[position:position + reps]
        position += reps
        selections[key] = [r["selected"] for r in chunk]
        table.add_row(
            SELECTOR_DISPLAY.get(key, key),
            {
                metric: float(
                    np.mean([r["metrics"][metric] for r in chunk])
                )
                for metric in INTRINSIC_METRICS
            },
        )
    return IntrinsicEngineResult(table=table, selections=selections)


def run_procurement_experiment(
    dataset_spec: InstanceSpec,
    selector_keys: Sequence[str],
    config,
    seed: int = 0,
    jobs: int | None = 1,
):
    """Engine-backed §8.4 procurement: one cell per held-out destination.

    Returns ``{selector display name: OpinionReport}`` — byte-identical
    to :func:`repro.procurement.simulate.run_procurement` on the same
    dataset/config/seed, for every ``jobs`` value.
    """
    from ..metrics.opinion import evaluate_opinions
    from ..procurement.simulate import pick_destinations

    built = materialize_cached(dataset_spec)
    destinations = pick_destinations(built.dataset, config)
    selector_keys = tuple(selector_keys)
    cells = [
        ExperimentCell(
            runner="procurement",
            spec=dataset_spec,
            params=(destination, index, selector_keys, config, seed),
        )
        for index, destination in enumerate(destinations)
    ]
    results = run_cells(cells, jobs=jobs)
    per_selector: dict[str, dict[str, list[str]]] = {
        key: {} for key in selector_keys
    }
    for destination, cell_result in zip(destinations, results):
        for key in selector_keys:
            per_selector[key][destination] = cell_result[key]
    return {
        SELECTOR_DISPLAY.get(key, key): evaluate_opinions(
            built.dataset, per_destination
        )
        for key, per_destination in per_selector.items()
    }


# ---------------------------------------------------------------------------
# End-to-end engine benchmark (BENCH_experiments.json).
# ---------------------------------------------------------------------------

#: Vectorized selector keys of the fig3-style bench and their pure-Python
#: twins.  Clustering is excluded: its k-means is numpy in both paths and
#: an order of magnitude slower than every other selector (§8.5), so it
#: would only mask the layers this benchmark measures.
BENCH_SELECTORS: tuple[str, ...] = (
    "podium", "random", "distance", "distance-min",
)
BENCH_LEGACY_SELECTORS: tuple[str, ...] = (
    "podium-eager", "random", "distance-legacy", "distance-min-legacy",
)


def benchmark_experiment_engine(
    users: int = 2000,
    budget: int = 8,
    repetitions: int = 10,
    top_k: int = 200,
    seed: int = 3,
    jobs: int = 4,
) -> dict:
    """Time a fig3-style intrinsic experiment end-to-end, three ways.

    Modes: the serial pure-Python baseline (eager Podium, legacy set-loop
    Distance, set-loop coverage metrics), then the engine with vectorized
    paths at ``jobs`` ∈ {1, ``jobs``, all cores}.  The instance build
    (the offline grouping module of Fig. 1) is identical in every mode
    and reported once as ``build_seconds``, mirroring the
    ``index_build_seconds`` convention of ``BENCH_selection.json``; the
    timed section is the experiment proper — every selector run and
    metric evaluation.  ``selections_match`` records that each mode
    reproduced the baseline's selections cell for cell.
    """
    spec = InstanceSpec(
        kind="profiles",
        n_users=users,
        dataset_seed=seed,
        budget=budget,
        min_support=2,
    )
    # Podium is deterministic here (rng=None): its eager/matrix backends
    # guarantee identical selections only without randomized tie-breaks.
    stochastic = ("random", "distance", "distance-min",
                  "distance-legacy", "distance-min-legacy")
    unseeded_vec = ("podium",)
    unseeded_leg = ("podium-eager",)

    start = time.perf_counter()
    materialize_cached(spec)
    build_seconds = time.perf_counter() - start

    def run(keys, metrics_method, run_jobs):
        start = time.perf_counter()
        result = run_intrinsic_experiment(
            "fig3-style engine bench",
            spec,
            keys,
            repetitions=repetitions,
            top_k=top_k,
            seed=seed,
            jobs=run_jobs,
            stochastic=stochastic,
            metrics_method=metrics_method,
            unseeded=unseeded_vec + unseeded_leg,
        )
        return time.perf_counter() - start, result

    legacy_seconds, legacy = run(BENCH_LEGACY_SELECTORS, "python", 1)
    reference = [
        selection
        for key in BENCH_LEGACY_SELECTORS
        for selection in legacy.selections[key]
    ]

    all_jobs = os.cpu_count() or 1
    rows = [
        {"mode": "serial-legacy", "jobs": 1, "seconds": legacy_seconds},
    ]
    for run_jobs in dict.fromkeys((1, jobs, all_jobs)):
        seconds, result = run(BENCH_SELECTORS, "vector", run_jobs)
        flat = [
            selection
            for key in BENCH_SELECTORS
            for selection in result.selections[key]
        ]
        rows.append(
            {
                "mode": "engine-vectorized",
                "jobs": run_jobs,
                "seconds": seconds,
                "speedup_vs_legacy": legacy_seconds / seconds,
                "selections_match": flat == reference,
                "table_matches": result.table.rows
                == {
                    name: legacy.table.rows[name]
                    for name in result.table.rows
                },
            }
        )
    return {
        "experiment": "fig3_style_experiment_engine",
        "users": users,
        "budget": budget,
        "repetitions": repetitions,
        "top_k": top_k,
        "seed": seed,
        "selectors": list(BENCH_SELECTORS),
        "legacy_selectors": list(BENCH_LEGACY_SELECTORS),
        "cpu_count": all_jobs,
        "build_seconds": build_seconds,
        "rows": rows,
    }
