"""Shared experiment harness: runners, row containers, table rendering.

Every figure-reproduction module returns a :class:`ComparisonTable` whose
rows are per-algorithm metric dictionaries.  ``normalized()`` rescales
each metric column relative to the leading algorithm — exactly how the
paper plots Fig. 3 ("all scores are normalized relative to the leading
algorithm's score") — and ``to_markdown()`` renders the rows the
benchmark harness prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import Selector
from ..core.groups import GroupingConfig, build_simple_groups
from ..core.instance import DiversificationInstance, build_instance
from ..core.profiles import UserRepository
from ..core.weights import CoverageScheme, WeightScheme
from ..metrics.intrinsic import IntrinsicReport, evaluate_intrinsic


@dataclass
class ComparisonTable:
    """Per-algorithm metric rows for one experiment."""

    title: str
    metrics: tuple[str, ...]
    rows: dict[str, dict[str, float]] = field(default_factory=dict)

    def add_row(self, name: str, values: dict[str, float]) -> None:
        self.rows[name] = {m: float(values[m]) for m in self.metrics}

    def leader(self, metric: str) -> str:
        """Algorithm with the best (highest) value for ``metric``."""
        return max(self.rows, key=lambda name: self.rows[name][metric])

    def normalized(self) -> "ComparisonTable":
        """Rescale every metric so the leading algorithm reads 1.0.

        Columns whose peak is not a positive finite number (all zero,
        all negative, or NaN-polluted) pass through unscaled: dividing
        by a negative peak would flip the column's ordering and dividing
        by zero/NaN would poison it.
        """
        table = ComparisonTable(self.title + " (normalized)", self.metrics)
        peaks = {}
        for m in self.metrics:
            peak = max(row[m] for row in self.rows.values())
            peaks[m] = peak if peak > 0 and np.isfinite(peak) else 1.0
        for name, row in self.rows.items():
            table.add_row(
                name, {m: row[m] / peaks[m] for m in self.metrics}
            )
        return table

    def to_markdown(self, precision: int = 3) -> str:
        header = "| algorithm | " + " | ".join(self.metrics) + " |"
        rule = "|---" * (len(self.metrics) + 1) + "|"
        lines = [f"### {self.title}", "", header, rule]
        for name, row in self.rows.items():
            cells = " | ".join(
                f"{row[m]:.{precision}f}" for m in self.metrics
            )
            lines.append(f"| {name} | {cells} |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_markdown()


@dataclass(frozen=True)
class IntrinsicExperimentConfig:
    """Setup of one intrinsic-diversity comparison (Fig. 3a / 3c)."""

    budget: int = 8
    grouping: GroupingConfig = field(default_factory=GroupingConfig)
    weight_scheme: WeightScheme | None = None
    coverage_scheme: CoverageScheme | None = None
    top_k: int = 200
    repetitions: int = 3


INTRINSIC_METRICS = (
    "total_score",
    "top_k_coverage",
    "intersected_coverage",
    "distribution_similarity",
)

OPINION_METRICS = (
    "topic_sentiment_coverage",
    "usefulness",
    "rating_distribution_similarity",
    "rating_variance",
)


def build_experiment_instance(
    repository: UserRepository, config: IntrinsicExperimentConfig
) -> DiversificationInstance:
    """Group the repository and materialize the instance once."""
    groups = build_simple_groups(repository, config.grouping)
    return build_instance(
        repository,
        config.budget,
        groups=groups,
        weight_scheme=config.weight_scheme,
        coverage_scheme=config.coverage_scheme,
    )


def _mean_report(reports: Sequence[IntrinsicReport]) -> dict[str, float]:
    return {
        metric: float(
            np.mean([report.as_dict()[metric] for report in reports])
        )
        for metric in INTRINSIC_METRICS
    }


def run_intrinsic_comparison(
    title: str,
    repository: UserRepository,
    selectors: Iterable[Selector],
    config: IntrinsicExperimentConfig,
    seed: int = 0,
) -> ComparisonTable:
    """Evaluate every selector's intrinsic diversity on one repository.

    Stochastic selectors are averaged over ``config.repetitions``
    independent seeded runs; deterministic ones pay a single run (their
    repetitions would be identical).
    """
    instance = build_experiment_instance(repository, config)
    table = ComparisonTable(title, INTRINSIC_METRICS)
    for index, selector in enumerate(selectors):
        reports = []
        reps = config.repetitions if selector.name in ("Random", "Clustering") else 1
        for rep in range(reps):
            rng = np.random.default_rng((seed, index, rep))
            selected = selector.select(
                repository, instance, config.budget, rng=rng
            )
            reports.append(
                evaluate_intrinsic(instance, selected, k=config.top_k)
            )
        table.add_row(selector.name, _mean_report(reports))
    return table


@dataclass(frozen=True)
class TimingRow:
    """One scalability measurement (Figs. 5–6)."""

    algorithm: str
    x: int
    seconds: float


def time_selector(
    selector: Selector,
    repository: UserRepository,
    instance: DiversificationInstance,
    budget: int,
    rng: np.random.Generator | None = None,
) -> float:
    """Wall-clock one selection run (the quantity Figs. 5–6 plot)."""
    start = time.perf_counter()
    selector.select(repository, instance, budget, rng=rng)
    return time.perf_counter() - start
