"""Podium: diverse user selection for opinion procurement.

Reproduction of Amsterdamer & Goldreich, EDBT 2020.  The public API
re-exports the pieces a downstream user needs:

* profiles and repositories (:class:`UserProfile`, :class:`UserRepository`),
* the grouping module (:func:`build_simple_groups`, :class:`GroupingConfig`),
* diversification instances and schemes (:func:`build_instance`,
  Iden/LBS/EBS weights, Single/Prop coverage),
* selection (:func:`greedy_select`, :func:`optimal_select`,
  :func:`custom_select`) and explanations (:func:`explain_selection`),
* datasets, baselines, metrics, the procurement simulation, the service
  prototype, the durable storage layer (:class:`DurableRepositoryStore`)
  and the experiment harness as subpackages.

Quickstart::

    from repro import UserRepository, UserProfile, build_instance, greedy_select

    repo = UserRepository([UserProfile("u1", {"livesIn Tokyo": 1.0}), ...])
    instance = build_instance(repo, budget=8)
    result = greedy_select(repo, instance)
    print(result.selected, result.score)
"""

from .core import (
    Bucket,
    ColumnarInstance,
    ColumnarProfiles,
    CoverageState,
    CustomizationFeedback,
    CustomSelectionResult,
    DiversificationInstance,
    EBSWeights,
    Group,
    GroupingConfig,
    GroupKey,
    GroupSet,
    IdenWeights,
    LBSWeights,
    PodiumError,
    PropCoverage,
    SelectionExplanation,
    SelectionResult,
    SingleCoverage,
    UserProfile,
    UserRepository,
    TripleStore,
    approximation_ratio,
    build_columnar_instance,
    build_index_external,
    build_instance,
    build_simple_groups,
    covered_groups,
    custom_select,
    explain_selection,
    greedy_select,
    open_index_npz,
    optimal_select,
    refine_users,
    select_from_index,
    select_sharded_streaming,
    subset_score,
)
from .constraints import (
    ClusterSpec,
    ConstrainedSelectionResult,
    ConstraintSpec,
    constrained_select,
)
from .datasets.synth import generate_profile_columns
from .storage import (
    DurableRepositoryStore,
    StreamingMaintainer,
    WriteAheadLog,
)

__version__ = "1.0.0"

__all__ = [
    "Bucket",
    "ClusterSpec",
    "ColumnarInstance",
    "ConstrainedSelectionResult",
    "ConstraintSpec",
    "ColumnarProfiles",
    "CoverageState",
    "CustomizationFeedback",
    "CustomSelectionResult",
    "DiversificationInstance",
    "DurableRepositoryStore",
    "EBSWeights",
    "Group",
    "GroupingConfig",
    "GroupKey",
    "GroupSet",
    "IdenWeights",
    "LBSWeights",
    "PodiumError",
    "PropCoverage",
    "SelectionExplanation",
    "SelectionResult",
    "SingleCoverage",
    "StreamingMaintainer",
    "TripleStore",
    "WriteAheadLog",
    "UserProfile",
    "UserRepository",
    "approximation_ratio",
    "build_columnar_instance",
    "build_index_external",
    "build_instance",
    "build_simple_groups",
    "constrained_select",
    "covered_groups",
    "custom_select",
    "explain_selection",
    "generate_profile_columns",
    "greedy_select",
    "open_index_npz",
    "optimal_select",
    "refine_users",
    "select_from_index",
    "select_sharded_streaming",
    "subset_score",
    "__version__",
]
