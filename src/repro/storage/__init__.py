"""Durable storage & streaming maintenance for the serving layer.

Write-ahead log (:mod:`.wal`), atomic snapshots (:mod:`.snapshot`), the
recovering store facade (:mod:`.store`) and the streaming selection
maintainer (:mod:`.maintainer`).
"""

from .maintainer import StreamingMaintainer
from .snapshot import (
    SnapshotArtifact,
    SnapshotState,
    current_snapshot_path,
    load_snapshot,
    write_snapshot,
)
from .store import DurableRepositoryStore, inspect_data_dir
from .wal import WalRecord, WalScan, WriteAheadLog, scan_wal

__all__ = [
    "DurableRepositoryStore",
    "SnapshotArtifact",
    "SnapshotState",
    "StreamingMaintainer",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "current_snapshot_path",
    "inspect_data_dir",
    "load_snapshot",
    "scan_wal",
    "write_snapshot",
]
