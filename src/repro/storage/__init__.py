"""Durable storage & streaming maintenance for the serving layer.

Write-ahead log (:mod:`.wal`), atomic snapshots (:mod:`.snapshot`), the
recovering store facade (:mod:`.store`), the streaming selection
maintainer (:mod:`.maintainer`) and the injectable filesystem shim the
chaos harness drives faults through (:mod:`.faults`).
"""

from .faults import (
    REAL_FS,
    CrashFS,
    FaultPlan,
    FilesystemShim,
    SimulatedCrash,
)
from .maintainer import StreamingMaintainer
from .snapshot import (
    SnapshotArtifact,
    SnapshotState,
    current_snapshot_path,
    load_snapshot,
    write_snapshot,
)
from .store import DurableRepositoryStore, inspect_data_dir
from .wal import WalRecord, WalScan, WriteAheadLog, scan_wal

__all__ = [
    "REAL_FS",
    "CrashFS",
    "DurableRepositoryStore",
    "FaultPlan",
    "FilesystemShim",
    "SimulatedCrash",
    "SnapshotArtifact",
    "SnapshotState",
    "StreamingMaintainer",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "current_snapshot_path",
    "inspect_data_dir",
    "load_snapshot",
    "scan_wal",
    "write_snapshot",
]
