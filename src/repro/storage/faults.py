"""Injectable filesystem shim for crash/fault simulation.

The durable tier (:mod:`.wal`, :mod:`.snapshot`, :mod:`.store`) performs
every state-changing syscall through a :class:`FilesystemShim`.  In
production that is :data:`REAL_FS` — thin pass-throughs with zero
behavioural difference.  Under test, :class:`CrashFS` replaces it and
turns the syscall stream into a deterministic fault surface:

* **Op counting** — every shim call gets a global index and a label
  (``"file_write:<path>"``), so a harness can first run a workload
  fault-free to enumerate its syscalls, then re-run it crashing at each
  index in turn.
* **Crash injection** — at the planned index the shim raises
  :class:`SimulatedCrash` *instead of* completing the operation
  (content writes may first apply a partial prefix, like a real torn
  write).  ``SimulatedCrash`` derives from ``BaseException`` so no
  ``except Exception`` error boundary in production code can swallow
  a simulated death.
* **Errno injection** — at the planned index the shim raises a real
  ``OSError`` (default ``ENOSPC``) after the same optional partial
  effect; unlike a crash, the process survives and the caller's error
  handling runs.
* **Power-loss model** — content written through the shim is *volatile*
  until the file (or its data) is fsynced through the shim; directory
  operations (``replace``/``rmtree``) persist immediately.  When a
  crash fires, :meth:`CrashFS.lose_volatile` truncates every file back
  to its durable length — the on-disk state then is what a machine that
  lost power would reboot to.  ``drop_fsync=True`` models a lying disk:
  fsync returns success but promotes nothing to durable, which is how
  the harness proves it *would* detect a missing-fsync bug.

The model is deliberately pragmatic: content durability is tracked as a
byte length per file (exact for the append-only WAL and write-once
snapshot files this layer produces), and renames are assumed durable
once issued.  Numpy index archives staged into a snapshot used to be
the one write that bypassed the shim; :func:`~repro.core.persistence.
save_index_npz` now accepts ``fs=`` and snapshot writes route the
assembled archive through :meth:`FilesystemShim.write_bytes`, so index
files crash, tear and lose volatile bytes under the same model as every
other durable-tier file.
"""

from __future__ import annotations

import errno as _errno
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO


class SimulatedCrash(BaseException):
    """The process 'died' at a planned syscall.

    A ``BaseException`` on purpose: production error boundaries catch
    ``Exception`` (and must keep doing so), but a simulated crash has to
    unwind all the way to the test harness, exactly like ``SIGKILL``
    would end the process.
    """


class FilesystemShim:
    """Pass-through syscall surface the durable tier writes through.

    Methods mirror the exact operations the storage layer performs, at
    the granularity faults need to be injected at — not a general VFS.
    """

    # -- file content -----------------------------------------------------

    def file_write(self, handle: BinaryIO, data: bytes) -> None:
        """Append ``data`` via an open handle and push it to the OS."""
        handle.write(data)
        handle.flush()

    def file_fsync(self, handle: BinaryIO) -> None:
        """Make everything written through ``handle`` durable."""
        handle.flush()
        os.fsync(handle.fileno())

    def write_bytes(self, path: str | Path, data: bytes) -> None:
        """Create/overwrite ``path`` with ``data`` (volatile until fsync)."""
        with open(path, "wb") as handle:
            handle.write(data)

    def truncate_file(self, path: str | Path, size: int) -> None:
        """Cut ``path`` to ``size`` bytes and make the cut durable."""
        with open(path, "rb+") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())

    # -- durability points ------------------------------------------------

    def fsync_path(self, path: str | Path) -> None:
        """fsync a file by path (staged snapshot payloads)."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def fsync_dir(self, path: str | Path) -> None:
        """Flush directory metadata so renames survive power loss.

        Best effort: platforms without directory fds simply skip it,
        matching the storage layer's historical behaviour.
        """
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- metadata ---------------------------------------------------------

    def replace(self, src: str | Path, dst: str | Path) -> None:
        """Atomic rename (the commit point of snapshot/pointer writes)."""
        os.replace(src, dst)

    def rmtree(self, path: str | Path) -> None:
        """Recursively delete a directory tree."""
        shutil.rmtree(path)


#: The production shim: every call is a direct syscall.
REAL_FS = FilesystemShim()


@dataclass
class FaultPlan:
    """What to inject, and where in the syscall stream.

    ``crash_at``/``errno_at`` are indexes into the shim's global op
    counter (see :attr:`CrashFS.ops`).  The faulted op is *not* applied
    — except content writes, which may first persist a partial prefix
    (``partial_writes``), modelling a tear mid-record.
    """

    crash_at: int | None = None
    errno_at: int | None = None
    errno_code: int = _errno.ENOSPC
    partial_writes: bool = True
    drop_fsync: bool = False


class CrashFS(FilesystemShim):
    """Fault-injecting shim with a power-loss model.

    Tracks, per touched file, the byte length known durable (content
    present at first touch counts as durable — it was either fsynced by
    an earlier session or seeded by the test).  :meth:`lose_volatile`
    rewinds every file to that length, producing the post-power-loss
    disk image.
    """

    def __init__(
        self, plan: FaultPlan | None = None, rng: Any | None = None
    ) -> None:
        self.plan = plan or FaultPlan()
        self.rng = rng
        self.ops: list[str] = []
        #: path -> durable byte length (0 covers "created but never
        #: fsynced": the dir entry survives, the content does not).
        self.durable: dict[str, int] = {}

    # -- bookkeeping -------------------------------------------------------

    @property
    def op_count(self) -> int:
        return len(self.ops)

    def _track(self, path: str | Path) -> str:
        key = os.path.abspath(str(path))
        if key not in self.durable:
            try:
                self.durable[key] = os.path.getsize(key)
            except OSError:
                self.durable[key] = 0
        return key

    def _mark_durable(self, path: str | Path) -> None:
        if self.plan.drop_fsync:
            return
        key = os.path.abspath(str(path))
        try:
            self.durable[key] = os.path.getsize(key)
        except OSError:
            self.durable[key] = 0

    def _fault(self, label: str) -> bool:
        """Count one op; return True when it must not be applied.

        Raising happens in the caller *after* any partial effect, via
        :meth:`_raise`.
        """
        index = len(self.ops)
        self.ops.append(label)
        return index == self.plan.crash_at or index == self.plan.errno_at

    def _raise(self, label: str) -> None:
        index = len(self.ops) - 1
        if index == self.plan.crash_at:
            raise SimulatedCrash(f"simulated crash at op {index}: {label}")
        raise OSError(
            self.plan.errno_code,
            f"{os.strerror(self.plan.errno_code)} "
            f"(injected at op {index}: {label})",
        )

    def _partial(self, data: bytes) -> bytes:
        if not self.plan.partial_writes or len(data) < 2:
            return b""
        if self.rng is not None:
            return data[: int(self.rng.integers(1, len(data)))]
        return data[: len(data) // 2]

    # -- shimmed operations ------------------------------------------------

    def file_write(self, handle: BinaryIO, data: bytes) -> None:
        label = f"file_write:{handle.name}"
        self._track(handle.name)
        if self._fault(label):
            torn = self._partial(data)
            if torn:
                handle.write(torn)
                handle.flush()
            self._raise(label)
        handle.write(data)
        handle.flush()

    def file_fsync(self, handle: BinaryIO) -> None:
        label = f"file_fsync:{handle.name}"
        if self._fault(label):
            self._raise(label)
        handle.flush()
        os.fsync(handle.fileno())
        self._mark_durable(handle.name)

    def write_bytes(self, path: str | Path, data: bytes) -> None:
        label = f"write_bytes:{path}"
        self._track(path)
        if self._fault(label):
            torn = self._partial(data)
            if torn:
                with open(path, "wb") as handle:
                    handle.write(torn)
            self._raise(label)
        with open(path, "wb") as handle:
            handle.write(data)

    def truncate_file(self, path: str | Path, size: int) -> None:
        label = f"truncate_file:{path}"
        key = self._track(path)
        if self._fault(label):
            self._raise(label)
        with open(path, "rb+") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())
        # A truncation that completed is durable by construction; bytes
        # beyond it can never come back.
        self.durable[key] = min(self.durable.get(key, size), size)

    def fsync_path(self, path: str | Path) -> None:
        label = f"fsync_path:{path}"
        self._track(path)
        if self._fault(label):
            self._raise(label)
        super().fsync_path(path)
        self._mark_durable(path)

    def fsync_dir(self, path: str | Path) -> None:
        label = f"fsync_dir:{path}"
        if self._fault(label):
            self._raise(label)
        super().fsync_dir(path)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        label = f"replace:{src}->{dst}"
        if self._fault(label):
            self._raise(label)
        os.replace(src, dst)
        self._rekey(src, dst)

    def rmtree(self, path: str | Path) -> None:
        label = f"rmtree:{path}"
        if self._fault(label):
            self._raise(label)
        shutil.rmtree(path)
        prefix = os.path.abspath(str(path))
        for key in [k for k in self.durable if self._under(k, prefix)]:
            del self.durable[key]

    def _rekey(self, src: str | Path, dst: str | Path) -> None:
        """Move volatile/durable tracking across a rename (file or tree)."""
        src_key = os.path.abspath(str(src))
        dst_key = os.path.abspath(str(dst))
        moved = {
            k: v for k, v in self.durable.items() if self._under(k, src_key)
        }
        for key in moved:
            del self.durable[key]
        for key, value in moved.items():
            self.durable[dst_key + key[len(src_key):]] = value

    @staticmethod
    def _under(key: str, prefix: str) -> bool:
        return key == prefix or key.startswith(prefix + os.sep)

    # -- the power-loss event ----------------------------------------------

    def lose_volatile(self, worst_case: bool = True) -> list[str]:
        """Rewind every tracked file to its durable length.

        The disk image afterwards is what survives a power loss at the
        crash point: fsynced bytes stay, everything newer is gone.  With
        ``worst_case=False`` and an rng attached, each file keeps a
        random amount of its volatile suffix instead (power loss flushed
        *some* pages) — both outcomes are admissible, recovery must
        handle either.  Returns the paths that lost bytes.
        """
        lost: list[str] = []
        for key, durable_len in self.durable.items():
            try:
                size = os.path.getsize(key)
            except OSError:
                continue  # deleted/renamed away: nothing to rewind
            if size <= durable_len:
                continue
            keep = durable_len
            if not worst_case and self.rng is not None:
                keep = int(self.rng.integers(durable_len, size + 1))
            if keep >= size:
                continue
            with open(key, "rb+") as handle:
                handle.truncate(keep)
            lost.append(key)
        return lost
