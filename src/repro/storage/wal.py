"""Append-only write-ahead log of JSON records.

The durable ingestion path (paper §9: Podium "may be easily executed
multiple times, e.g., to incorporate data updates") acknowledges a
profile delta only after it is on disk.  The log is a single append-only
file of length-prefixed, CRC-checksummed records:

.. code-block:: text

    record := length  : uint32 big-endian   (payload byte count)
              crc32   : uint32 big-endian   (CRC32 of the payload bytes)
              payload : `length` bytes of UTF-8 JSON

A crash can only damage the *tail* of the file (appends are sequential
and earlier bytes are never rewritten), so recovery scans records from
the start and stops at the first one that is short or fails its CRC —
everything before it is intact by construction.  :class:`WriteAheadLog`
truncates that torn tail on open, which restores the append invariant:
the file always ends on a record boundary.

Records carry monotonically increasing sequence numbers (stored inside
the payload envelope) so replay can be resumed from a snapshot's
sequence number and duplicates/regressions are detected loudly.

``fsync`` is on by default — an acknowledged append survives the
process *and* the OS dying.  ``fsync=False`` trades that for raw
throughput (the bytes still leave the process on every append via
``flush``; only the OS page cache is trusted), which the ingest bench
quantifies.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from ..core.errors import StorageError
from .faults import REAL_FS, FilesystemShim

_HEADER = struct.Struct(">II")  # (payload length, payload crc32)

#: Upper bound on a single record's payload; a corrupt length prefix
#: decoding to something absurd is treated as a torn tail, not an
#: attempted multi-gigabyte allocation.
MAX_RECORD_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class WalRecord:
    """One recovered log record: sequence number + JSON payload."""

    seq: int
    payload: dict[str, Any]
    offset: int  # file offset the record starts at
    length: int  # total on-disk size (header + payload)


@dataclass(frozen=True)
class WalScan:
    """Outcome of scanning a log file: intact records + torn-tail info."""

    records: tuple[WalRecord, ...]
    valid_bytes: int
    torn_bytes: int

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0


def _encode(seq: int, payload: dict[str, Any]) -> bytes:
    body = json.dumps(
        {"seq": seq, **payload}, sort_keys=True, separators=(",", ":")
    ).encode()
    return _HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


def scan_wal(path: str | Path) -> WalScan:
    """Scan a WAL file, returning every intact record and the torn tail.

    The scan never raises on damage: a short header, short payload,
    implausible length or CRC mismatch ends the scan at that offset and
    everything from there on is reported as ``torn_bytes``.  Sequence
    regressions *within the intact prefix*, however, are a real
    corruption of the writer protocol and raise :class:`StorageError`.
    """
    path = Path(path)
    if not path.exists():
        return WalScan(records=(), valid_bytes=0, torn_bytes=0)
    data = path.read_bytes()
    records: list[WalRecord] = []
    offset = 0
    last_seq = 0
    while offset + _HEADER.size <= len(data):
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if length > MAX_RECORD_BYTES or start + length > len(data):
            break  # torn tail: short or implausible payload
        body = data[start:start + length]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            break  # torn tail: checksum mismatch
        try:
            payload = json.loads(body.decode())
            seq = int(payload.pop("seq"))
        except (ValueError, KeyError, UnicodeDecodeError):
            break  # checksummed but undecodable: treat as tail damage
        if seq <= last_seq:
            raise StorageError(
                f"WAL {path} sequence regression at offset {offset}: "
                f"{seq} after {last_seq}"
            )
        records.append(
            WalRecord(
                seq=seq,
                payload=payload,
                offset=offset,
                length=_HEADER.size + length,
            )
        )
        last_seq = seq
        offset = start + length
    return WalScan(
        records=tuple(records),
        valid_bytes=offset,
        torn_bytes=len(data) - offset,
    )


class WriteAheadLog:
    """Append-only, crash-safe record log.

    Opening scans the existing file, truncates any torn tail and
    positions the writer after the last intact record.  Appends are
    serialized by an internal lock, flushed, and (by default) fsynced
    before the new sequence number is returned — the durability point
    the service acknowledges deltas at.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: bool = True,
        fs: FilesystemShim | None = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._fs = fs if fs is not None else REAL_FS
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        scan = scan_wal(self.path)
        self.truncated_bytes = scan.torn_bytes
        if scan.torn_bytes:
            self._fs.truncate_file(self.path, scan.valid_bytes)
        self._last_seq = scan.last_seq
        self._bytes = scan.valid_bytes
        self._handle = open(self.path, "ab")
        # Resume hint for sequential tail readers (WAL shipping): the
        # (seq, offset) record boundary the previous read_since ended at.
        self._read_hint: tuple[int, int] = (0, 0)

    # -- introspection -----------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (0 when empty)."""
        return self._last_seq

    @property
    def size_bytes(self) -> int:
        """Bytes of intact records currently in the log."""
        return self._bytes

    # -- writing -----------------------------------------------------------

    def append(self, payload: dict[str, Any]) -> int:
        """Durably append one record; returns its sequence number.

        The payload must be a JSON object; ``seq`` is reserved for the
        log's own envelope.

        A failed append (``ENOSPC`` mid-write, a torn device write)
        never corrupts the log: the tail is rolled back to the last
        intact record boundary before the error propagates, so
        ``last_seq`` does not advance and the *next* append lands on a
        clean boundary instead of burying itself behind garbage bytes
        that recovery would treat as the torn tail.
        """
        if "seq" in payload:
            raise StorageError("payload field 'seq' is reserved by the WAL")
        with self._lock:
            if self._handle.closed:
                raise StorageError(f"WAL {self.path} is closed")
            seq = self._last_seq + 1
            record = _encode(seq, payload)
            try:
                self._fs.file_write(self._handle, record)
                if self.fsync:
                    self._fs.file_fsync(self._handle)
            except OSError:
                self._heal_tail()
                raise
            self._last_seq = seq
            self._bytes += len(record)
            return seq

    def _heal_tail(self) -> None:
        """Roll a partially-written record back off the log (lock held).

        Best effort by necessity — on a full disk even the truncate can
        fail, but truncation releases space rather than consuming it, so
        in practice the tail is restored and the logical state
        (``last_seq``, ``size_bytes``) stays at the last acknowledged
        record either way.
        """
        try:
            self._handle.close()
        except OSError:
            pass
        try:
            self._fs.truncate_file(self.path, self._bytes)
        except OSError:
            pass
        self._handle = open(self.path, "ab")

    def truncate(self, base_seq: int | None = None) -> None:
        """Drop every record (log compaction).

        ``base_seq`` restarts numbering after the snapshot that made the
        records disposable, so post-compaction appends continue the
        pre-compaction sequence; defaults to the current ``last_seq``.
        """
        with self._lock:
            if self._handle.closed:
                raise StorageError(f"WAL {self.path} is closed")
            self._handle.close()
            self._fs.truncate_file(self.path, 0)
            self._handle = open(self.path, "ab")
            self._last_seq = (
                self._last_seq if base_seq is None else int(base_seq)
            )
            self._bytes = 0
            self._read_hint = (0, 0)

    def advance_seq(self, seq: int) -> None:
        """Raise the sequence counter to at least ``seq``.

        Used after recovery from a snapshot whose ``wal_seq`` outruns the
        (compacted, empty) log, so post-recovery appends continue the
        global numbering instead of restarting at 1.  Only legal on an
        empty log — renumbering around existing records would corrupt
        the replay order.
        """
        with self._lock:
            if seq <= self._last_seq:
                return
            if self._bytes:
                raise StorageError(
                    f"cannot advance WAL sequence to {seq}: log still "
                    f"holds records up to {self._last_seq}"
                )
            self._last_seq = int(seq)

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                if self.fsync:
                    self._fs.file_fsync(self._handle)
                self._handle.close()

    def release_fd(self) -> None:
        """Close the underlying descriptor without flushing or locking.

        For forked children that inherited the log open: the parent owns
        the file offset and buffered state, and the child must not touch
        either (its copy of ``self._lock`` may be held by a thread that
        did not survive the fork).  The Python file object is left as-is
        — the child never appends, and child exit goes through
        ``os._exit`` so no finalizer will trip over the dead fd.
        """
        try:
            os.close(self._handle.fileno())
        except (OSError, ValueError):
            pass

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def records(self) -> Iterator[WalRecord]:
        """Re-scan the on-disk log (used by inspect/replay tooling)."""
        yield from scan_wal(self.path).records

    # -- tail reading (WAL shipping) ----------------------------------------

    def read_since(
        self, from_seq: int, limit: int = 512
    ) -> tuple[tuple[WalRecord, ...], int]:
        """Records with ``seq > from_seq`` (at most ``limit``), plus the
        newest sequence number known.

        Reads the on-disk file independently of the writer handle, so a
        follower can tail the log while appends are in flight (an
        append's bytes appear atomically at the tail; a half-flushed
        record parses as torn and is simply picked up by the next
        poll).  Sequential pollers are O(new bytes): the scan resumes
        from the record boundary the previous call ended at whenever
        that boundary is at or before ``from_seq``.
        """
        with self._lock:
            hint_seq, hint_offset = self._read_hint
            known_last = self._last_seq
        start_seq, offset = (
            (hint_seq, hint_offset) if hint_seq <= from_seq else (0, 0)
        )
        try:
            data = self.path.read_bytes()
        except OSError:
            return (), known_last
        records: list[WalRecord] = []
        last_seq = start_seq
        boundary = (last_seq, offset)
        while offset + _HEADER.size <= len(data) and len(records) < limit:
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            if length > MAX_RECORD_BYTES or start + length > len(data):
                break  # torn/in-flight tail: re-read next poll
            body = data[start:start + length]
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                break
            try:
                payload = json.loads(body.decode())
                seq = int(payload.pop("seq"))
            except (ValueError, KeyError, UnicodeDecodeError):
                break
            if seq <= last_seq:
                raise StorageError(
                    f"WAL {self.path} sequence regression at offset "
                    f"{offset}: {seq} after {last_seq}"
                )
            offset = start + length
            last_seq = seq
            boundary = (seq, offset)
            if seq > from_seq:
                records.append(
                    WalRecord(
                        seq=seq,
                        payload=payload,
                        offset=offset - _HEADER.size - length,
                        length=_HEADER.size + length,
                    )
                )
        with self._lock:
            # Only advance the hint: truncation resets it under the same
            # lock, and a stale racing reader must not resurrect it.
            if boundary[1] > self._read_hint[1] and boundary[1] <= (
                self._bytes
            ):
                self._read_hint = boundary
            known_last = self._last_seq
        return tuple(records), max(known_last, last_seq)
