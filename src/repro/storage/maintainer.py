"""Streaming maintenance of a selection under profile deltas.

Re-running the full greedy after every ingested delta is wasteful: a
delta touches a handful of users, and the previous selection is almost
always still (near-)optimal.  :class:`StreamingMaintainer` keeps a
selection continuously valid with the repair rules of the streaming
submodular-maximization literature (sieve-streaming / swap-streaming):

* **drop** — selected users that vanish from the index (removed from the
  repository, or left every group after re-bucketing) are evicted;
* **fill** — free budget slots are refilled greedily (argmax marginal
  gain over the current coverage remainder, exactly the matrix greedy's
  step rule, so ties break on the minimal user id);
* **swap** — an outside candidate displaces the weakest selected member
  when its marginal gain on ``S \\ {m*}`` exceeds
  ``(1 + swap_margin) · contribution(m*)``.  The margin is the classic
  streaming-threshold trick: demanding strictly *more* than parity
  bounds the number of swaps per element and stops oscillation;
* **re-solve** — repair quality degrades as churn accumulates, so when
  the cumulative number of touched users since the last full solve
  reaches ``staleness_fraction`` of the population, the maintainer runs
  a fresh :func:`~repro.core.greedy.select_from_index` and resets.

Everything is vectorized against the :class:`InstanceIndex` CSR arrays;
a refresh costs O(degree) array work per repair step, not a full greedy
pass.  The ingest benchmark pins the resulting quality at ≥ 0.95 of the
from-scratch matrix greedy.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from ..core.errors import StorageError
from ..core.greedy import select_from_index
from ..core.index import InstanceIndex, _segment_sums

#: Safety cap on swap iterations per refresh: each swap strictly
#: increases the score by a (1 + margin) factor on the displaced
#: contribution, so convergence is fast; the cap only guards against
#: pathological float-free cycles that the strict inequality already
#: excludes.
_MAX_SWAPS_PER_REFRESH = 64


class StreamingMaintainer:
    """Keeps a budget-``B`` selection repaired across index refreshes.

    The maintainer owns no repository state: the serving layer hands it
    a fresh :class:`InstanceIndex` after each applied delta (cheap —
    index builds are already incremental-friendly and cached) together
    with the touched-user count, and reads back ``selection``.
    """

    def __init__(
        self,
        index: InstanceIndex,
        budget: int,
        swap_margin: float = 0.1,
        staleness_fraction: float = 0.25,
    ) -> None:
        if not index.vectorizable:
            raise StorageError(
                "StreamingMaintainer requires a vectorizable index"
            )
        if budget < 1:
            raise StorageError(f"budget must be >= 1, got {budget}")
        if swap_margin < 0:
            raise StorageError(
                f"swap_margin must be >= 0, got {swap_margin}"
            )
        if not 0 < staleness_fraction:
            raise StorageError(
                f"staleness_fraction must be positive, "
                f"got {staleness_fraction}"
            )
        self.budget = budget
        self.swap_margin = swap_margin
        self.staleness_fraction = staleness_fraction
        self.swaps = 0
        self.fills = 0
        self.drops = 0
        self.resolves = 0
        self.touched_since_solve = 0
        self._index = index
        self._solve()

    # -- public surface ----------------------------------------------------

    @property
    def selection(self) -> tuple[str, ...]:
        """The maintained user ids, in greedy-pick order."""
        return tuple(self._selected)

    @property
    def index(self) -> InstanceIndex:
        return self._index

    def score(self) -> int:
        """Exact score of the maintained selection on the current index."""
        return int(self._index.subset_score(self._selected))

    def refresh(self, index: InstanceIndex, touched: int = 0) -> None:
        """Adopt a new index (post-delta) and repair the selection.

        ``touched`` is the number of users the delta affected; it feeds
        the staleness trigger.  Repair order is drop → fill → swap so a
        removal's freed slot is refilled before swaps are evaluated.
        """
        if not index.vectorizable:
            raise StorageError(
                "StreamingMaintainer requires a vectorizable index"
            )
        self._index = index
        self.touched_since_solve += max(int(touched), 0)
        if self._stale():
            self._solve()
            return
        kept = [u for u in self._selected if u in index.user_pos]
        self.drops += len(self._selected) - len(kept)
        self._selected = kept
        self._fill()
        self._swap_pass()

    def stats(self) -> dict[str, Any]:
        return {
            "budget": self.budget,
            "selected": len(self._selected),
            "score": self.score(),
            "swaps": self.swaps,
            "fills": self.fills,
            "drops": self.drops,
            "resolves": self.resolves,
            "touched_since_solve": self.touched_since_solve,
        }

    # -- internals ---------------------------------------------------------

    def _stale(self) -> bool:
        population = max(self._index.n_users, 1)
        return self.touched_since_solve >= (
            self.staleness_fraction * population
        )

    def _solve(self) -> None:
        """Full from-scratch greedy (initial build and staleness resets)."""
        result = select_from_index(self._index, self.budget, method="matrix")
        self._selected = list(result.selected)
        self.touched_since_solve = 0
        self.resolves += 1

    def _remaining(self, selected: Iterable[str]) -> np.ndarray:
        """Per-group coverage still open under ``selected`` (int64 ≥ 0)."""
        index = self._index
        hits = index.group_hits(index.selection_mask(selected))
        return np.maximum(index.cov - hits, 0)

    def _gain_vector(self, remaining: np.ndarray) -> np.ndarray:
        """Marginal gain of every user against a coverage remainder.

        Adding a user gains each of its groups' weights once while the
        group still has open coverage: ``Σ_{G ∋ u} wei(G)·[rem(G) > 0]``,
        computed as one CSR segment sum.
        """
        index = self._index
        assert index.wei is not None
        live = np.where(remaining > 0, index.wei, np.int64(0))
        return _segment_sums(live[index.u_indices], index.u_indptr)

    def _fill(self) -> None:
        """Greedily refill free budget slots (matrix-greedy step rule)."""
        index = self._index
        remaining = self._remaining(self._selected)
        blocked = index.selection_mask(self._selected)
        while len(self._selected) < self.budget:
            gain = self._gain_vector(remaining)
            gain[blocked] = -1
            row = int(np.argmax(gain))  # first max = minimal user id
            if gain[row] <= 0:
                break  # nothing contributes; leave slots open
            user = index.users[row]
            self._selected.append(user)
            blocked[row] = True
            touched = index.groups_of_row(row)
            hit = touched[remaining[touched] > 0]
            remaining[hit] -= 1
            self.fills += 1

    def _contributions(self) -> list[int]:
        """``score(S) - score(S \\ {m})`` for every selected member."""
        return [
            int(
                self._index.subset_score(self._selected)
                - self._index.subset_score(
                    [u for u in self._selected if u != member]
                )
            )
            for member in self._selected
        ]

    def _swap_pass(self) -> None:
        """Swap-streaming repair: displace the weakest member while an
        outsider beats its contribution by the (1 + margin) threshold."""
        index = self._index
        for _ in range(_MAX_SWAPS_PER_REFRESH):
            if not self._selected:
                return
            contributions = self._contributions()
            weakest = int(np.argmin(contributions))
            weakest_user = self._selected[weakest]
            rest = [u for u in self._selected if u != weakest_user]
            remaining = self._remaining(rest)
            gain = self._gain_vector(remaining)
            gain[index.selection_mask(self._selected)] = -1
            row = int(np.argmax(gain))
            threshold = (1.0 + self.swap_margin) * contributions[weakest]
            if float(gain[row]) <= threshold:
                return
            self._selected[weakest] = index.users[row]
            self.swaps += 1
