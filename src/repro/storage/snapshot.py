"""Point-in-time snapshots of the durable repository state.

A snapshot is a directory under ``<data_dir>/snapshots/`` holding
everything the serving layer needs to answer selections exactly as it
did before a restart:

.. code-block:: text

    snapshots/
      CURRENT              # name of the live snapshot directory
      snap-000000000042/
        manifest.json      # generation, wal_seq, per-config metadata
        profiles.json      # full repository (podium-profiles-v1)
        groups-<name>.json # frozen bucket group set per configuration
        index-<name>.npz   # optional cached CSR index per configuration

Frozen group sets are part of the snapshot because restart-identical
selection depends on them: bucket boundaries computed by the grouping
module drift as the population changes, so a post-restart *re-grouping*
could legally pick different boundaries than the incremental
reassignment path did.  Persisting the buckets (and replaying
post-snapshot deltas through the same ``reassign_groups`` code) removes
that degree of freedom.

Writes are atomic: the snapshot is staged in a temp directory, renamed
into place, and only then does ``CURRENT`` flip (itself via
``os.replace``).  A crash mid-snapshot leaves either the old ``CURRENT``
or no pointer at all — never a pointer to a half-written directory.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.errors import DatasetError, StorageError
from ..core.groups import GroupSet
from ..core.index import InstanceIndex
from ..core.persistence import (
    CHECKPOINT_VERSION,
    group_set_from_dict,
    group_set_to_dict,
    index_npz_mappable,
    load_index_npz,
    open_index_npz,
    payload_checksum,
    save_index_npz,
)
from ..core.profiles import UserRepository
from ..datasets.io import profiles_from_dict, profiles_to_dict

_MANIFEST_FORMAT = "podium-snapshot-v1"
_CURRENT = "CURRENT"
_SNAP_PREFIX = "snap-"


@dataclass(frozen=True)
class SnapshotArtifact:
    """One configuration's frozen serving state inside a snapshot."""

    config: dict[str, Any]  # DiversificationConfiguration.to_dict()
    groups: GroupSet
    index: InstanceIndex | None = None


@dataclass
class SnapshotState:
    """Everything a snapshot captures (also the recovery result shape)."""

    repository: UserRepository
    artifacts: dict[str, SnapshotArtifact] = field(default_factory=dict)
    wal_seq: int = 0
    generation: int = 0


def snapshots_dir(data_dir: str | Path) -> Path:
    return Path(data_dir) / "snapshots"


def _snap_name(wal_seq: int) -> str:
    return f"{_SNAP_PREFIX}{wal_seq:012d}"


def current_snapshot_path(data_dir: str | Path) -> Path | None:
    """Resolve the live snapshot directory, or ``None`` if there is none."""
    root = snapshots_dir(data_dir)
    pointer = root / _CURRENT
    if not pointer.exists():
        return None
    name = pointer.read_text().strip()
    path = root / name
    if not name.startswith(_SNAP_PREFIX) or not path.is_dir():
        raise StorageError(
            f"snapshot pointer {pointer} names missing or invalid "
            f"snapshot {name!r}"
        )
    return path


def write_snapshot(data_dir: str | Path, state: SnapshotState) -> Path:
    """Atomically write ``state`` as the new live snapshot.

    Returns the final snapshot directory.  Older snapshot directories
    are pruned after the pointer flips (keeping only the new one), so a
    crash during pruning at worst leaves an orphan directory that the
    next snapshot removes.
    """
    root = snapshots_dir(data_dir)
    root.mkdir(parents=True, exist_ok=True)
    name = _snap_name(state.wal_seq)
    final = root / name
    stage = root / f".tmp-{name}"
    if stage.exists():
        shutil.rmtree(stage)
    stage.mkdir()

    (stage / "profiles.json").write_text(
        json.dumps(profiles_to_dict(state.repository))
    )
    configs: dict[str, dict[str, Any]] = {}
    for cfg_name, artifact in state.artifacts.items():
        groups_doc = group_set_to_dict(artifact.groups)
        (stage / f"groups-{cfg_name}.json").write_text(json.dumps(groups_doc))
        has_index = False
        if artifact.index is not None and artifact.index.vectorizable:
            # Stored (uncompressed) members so recovery can memory-map
            # the CSR payload straight out of the archive; forked
            # serving workers then share one page-cache copy.
            save_index_npz(
                artifact.index,
                stage / f"index-{cfg_name}.npz",
                compressed=False,
            )
            has_index = True
        configs[cfg_name] = {
            "config": artifact.config,
            "groups_crc32": payload_checksum(groups_doc),
            "has_index": has_index,
        }

    manifest = {
        "format": _MANIFEST_FORMAT,
        "format_version": CHECKPOINT_VERSION,
        "generation": state.generation,
        "wal_seq": state.wal_seq,
        "n_users": len(state.repository),
        "created_unix": time.time(),
        "configs": configs,
    }
    (stage / "manifest.json").write_text(json.dumps(manifest, indent=1))

    if final.exists():  # re-snapshot at the same seq: replace wholesale
        shutil.rmtree(final)
    os.replace(stage, final)

    pointer = root / _CURRENT
    tmp_pointer = root / f".{_CURRENT}.tmp"
    tmp_pointer.write_text(name + "\n")
    os.replace(tmp_pointer, pointer)
    _fsync_dir(root)

    for entry in root.iterdir():
        if entry.name.startswith(_SNAP_PREFIX) and entry.name != name:
            shutil.rmtree(entry, ignore_errors=True)
    return final


def load_snapshot(
    path: str | Path, mmap_indexes: bool = False
) -> SnapshotState:
    """Load a snapshot directory written by :func:`write_snapshot`.

    ``mmap_indexes=True`` opens each configuration's index fully lazily
    via :func:`~repro.core.persistence.open_index_npz` (after checksum
    verification): CSR payload, integer arrays *and* the user-id array
    become read-only memory maps of the snapshot file, so recovery and
    every forked serving worker share one page-cache copy instead of
    private heap pages.  Snapshots written by this version store the
    arrays uncompressed exactly so this works; legacy
    DEFLATE-compressed snapshots transparently fall back to eager
    loads.
    """
    path = Path(path)
    try:
        manifest = json.loads((path / "manifest.json").read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(
            f"snapshot {path} has a missing or invalid manifest: {exc}"
        ) from exc
    if manifest.get("format") != _MANIFEST_FORMAT:
        raise StorageError(
            f"snapshot {path}: expected format {_MANIFEST_FORMAT!r}, "
            f"got {manifest.get('format')!r}"
        )
    version = manifest.get("format_version")
    if not isinstance(version, int) or version > CHECKPOINT_VERSION:
        raise StorageError(
            f"snapshot {path} format_version {version!r} is newer than "
            f"this reader (supports <= {CHECKPOINT_VERSION})"
        )
    try:
        repository = profiles_from_dict(
            json.loads((path / "profiles.json").read_text())
        )
    except (OSError, json.JSONDecodeError, DatasetError) as exc:
        raise StorageError(
            f"snapshot {path} has unreadable profiles: {exc}"
        ) from exc

    artifacts: dict[str, SnapshotArtifact] = {}
    for cfg_name, meta in manifest.get("configs", {}).items():
        groups_path = path / f"groups-{cfg_name}.json"
        try:
            groups_doc = json.loads(groups_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(
                f"snapshot {path} has unreadable groups for "
                f"{cfg_name!r}: {exc}"
            ) from exc
        stored_crc = meta.get("groups_crc32")
        if stored_crc is not None:
            actual = payload_checksum(groups_doc)
            if stored_crc != actual:
                raise StorageError(
                    f"snapshot {path} group checksum mismatch for "
                    f"{cfg_name!r} (stored {stored_crc}, computed {actual})"
                )
        index = None
        if meta.get("has_index"):
            index_path = path / f"index-{cfg_name}.npz"
            try:
                if mmap_indexes and index_npz_mappable(index_path):
                    index = open_index_npz(index_path)
                else:
                    index = load_index_npz(index_path, mmap=mmap_indexes)
            except DatasetError as exc:
                raise StorageError(
                    f"snapshot {path} has a corrupt index for "
                    f"{cfg_name!r}: {exc}"
                ) from exc
        artifacts[cfg_name] = SnapshotArtifact(
            config=dict(meta.get("config") or {}),
            groups=group_set_from_dict(groups_doc),
            index=index,
        )
    return SnapshotState(
        repository=repository,
        artifacts=artifacts,
        wal_seq=int(manifest.get("wal_seq", 0)),
        generation=int(manifest.get("generation", 0)),
    )


def _fsync_dir(path: Path) -> None:
    """Flush directory metadata so renames survive power loss (POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds: best effort
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
