"""Point-in-time snapshots of the durable repository state.

A snapshot is a directory under ``<data_dir>/snapshots/`` holding
everything the serving layer needs to answer selections exactly as it
did before a restart:

.. code-block:: text

    snapshots/
      CURRENT              # name of the live snapshot directory
      snap-000000000042/
        manifest.json      # generation, wal_seq, per-config metadata
        profiles.json      # full repository (podium-profiles-v1)
        groups-<name>.json # frozen bucket group set per configuration
        index-<name>.npz   # optional cached CSR index per configuration

Frozen group sets are part of the snapshot because restart-identical
selection depends on them: bucket boundaries computed by the grouping
module drift as the population changes, so a post-restart *re-grouping*
could legally pick different boundaries than the incremental
reassignment path did.  Persisting the buckets (and replaying
post-snapshot deltas through the same ``reassign_groups`` code) removes
that degree of freedom.

Writes are atomic *and power-loss safe*: every staged file is written
and fsynced, the stage directory is fsynced, the stage is renamed to a
final directory name that is never reused (re-snapshots at the same
sequence get a ``.N`` suffix instead of deleting the live directory
first), the rename is made durable with a directory fsync, and only
then does ``CURRENT`` flip (its temp file fsynced before the
``os.replace``).  A crash at any point leaves either the old
``CURRENT`` or the new one — never a pointer to a half-written,
half-synced or deleted directory.  Should a legacy layout still present
a dangling pointer, loading falls back to the newest snapshot directory
that carries a manifest.

All state-changing syscalls go through the injectable filesystem shim
(:mod:`.faults`), which is how the chaos harness proves the ordering
above actually holds at every crash point.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core.errors import DatasetError, StorageError
from ..core.groups import GroupSet
from ..core.index import InstanceIndex
from ..core.persistence import (
    CHECKPOINT_VERSION,
    group_set_from_dict,
    group_set_to_dict,
    index_npz_mappable,
    load_index_npz,
    open_index_npz,
    payload_checksum,
    save_index_npz,
)
from ..core.profiles import UserRepository
from ..datasets.io import profiles_from_dict, profiles_to_dict
from .faults import REAL_FS, FilesystemShim

_MANIFEST_FORMAT = "podium-snapshot-v1"
_CURRENT = "CURRENT"
_SNAP_PREFIX = "snap-"


@dataclass(frozen=True)
class SnapshotArtifact:
    """One configuration's frozen serving state inside a snapshot."""

    config: dict[str, Any]  # DiversificationConfiguration.to_dict()
    groups: GroupSet
    index: InstanceIndex | None = None


@dataclass
class SnapshotState:
    """Everything a snapshot captures (also the recovery result shape)."""

    repository: UserRepository
    artifacts: dict[str, SnapshotArtifact] = field(default_factory=dict)
    wal_seq: int = 0
    generation: int = 0


def snapshots_dir(data_dir: str | Path) -> Path:
    return Path(data_dir) / "snapshots"


def _snap_name(wal_seq: int) -> str:
    return f"{_SNAP_PREFIX}{wal_seq:012d}"


def current_snapshot_path(data_dir: str | Path) -> Path | None:
    """Resolve the live snapshot directory, or ``None`` if there is none.

    A damaged pointer — empty, torn, or naming a directory that no
    longer exists (the pre-fix re-snapshot path could delete the live
    directory before renaming its replacement in) — falls back to the
    newest snapshot directory holding a manifest, because only committed
    snapshots survive pruning.  Recovery raises only when no usable
    snapshot exists at all.
    """
    root = snapshots_dir(data_dir)
    pointer = root / _CURRENT
    if not pointer.exists():
        return None
    name = pointer.read_text().strip()
    path = root / name
    if name.startswith(_SNAP_PREFIX) and path.is_dir():
        return path
    fallback = _newest_valid_snapshot(root)
    if fallback is None:
        raise StorageError(
            f"snapshot pointer {pointer} names missing or invalid "
            f"snapshot {name!r} and no other snapshot is recoverable"
        )
    warnings.warn(
        f"snapshot pointer {pointer} names missing or invalid snapshot "
        f"{name!r}; falling back to {fallback.name}",
        RuntimeWarning,
        stacklevel=2,
    )
    return fallback


def _snap_sort_key(name: str) -> tuple[int, int]:
    """Order snapshot names by (sequence, re-snapshot suffix)."""
    body = name[len(_SNAP_PREFIX):]
    seq_text, _, suffix = body.partition(".")
    try:
        seq = int(seq_text)
    except ValueError:
        seq = -1
    try:
        revision = int(suffix) if suffix else 0
    except ValueError:
        revision = 0
    return (seq, revision)


def _newest_valid_snapshot(root: Path) -> Path | None:
    """Newest ``snap-*`` directory that still holds a manifest."""
    candidates = sorted(
        (
            entry
            for entry in root.iterdir()
            if entry.name.startswith(_SNAP_PREFIX)
            and entry.is_dir()
            and (entry / "manifest.json").is_file()
        ),
        key=lambda entry: _snap_sort_key(entry.name),
    )
    return candidates[-1] if candidates else None


def write_snapshot(
    data_dir: str | Path,
    state: SnapshotState,
    fs: FilesystemShim | None = None,
) -> Path:
    """Atomically write ``state`` as the new live snapshot.

    Crash-safety ordering (each step durable before the next):

    1. stage every payload file, then fsync each one *and* the stage
       directory — a crash after the later pointer flip must never
       leave ``CURRENT`` naming a directory whose file contents were
       still sitting in the page cache;
    2. rename the stage to a never-before-used final name (re-snapshots
       at the same sequence take a ``.N`` suffix rather than deleting
       the live directory — the old snapshot stays intact until the new
       pointer is durable) and fsync the snapshots root;
    3. write the pointer's temp file, fsync it, ``os.replace`` it over
       ``CURRENT``, and fsync the root again — the commit point;
    4. prune superseded snapshot directories and stale stage leftovers.
       A crash during pruning at worst leaves orphans that the next
       snapshot removes.

    Returns the final snapshot directory.
    """
    fs = fs if fs is not None else REAL_FS
    root = snapshots_dir(data_dir)
    root.mkdir(parents=True, exist_ok=True)
    name = _snap_name(state.wal_seq)
    revision = 0
    while (root / name).exists():
        revision += 1
        name = f"{_snap_name(state.wal_seq)}.{revision}"
    final = root / name
    stage = root / f".tmp-{name}"
    if stage.exists():
        fs.rmtree(stage)
    stage.mkdir()

    fs.write_bytes(
        stage / "profiles.json",
        json.dumps(profiles_to_dict(state.repository)).encode(),
    )
    configs: dict[str, dict[str, Any]] = {}
    for cfg_name, artifact in state.artifacts.items():
        groups_doc = group_set_to_dict(artifact.groups)
        fs.write_bytes(
            stage / f"groups-{cfg_name}.json", json.dumps(groups_doc).encode()
        )
        has_index = False
        if artifact.index is not None and artifact.index.vectorizable:
            # Stored (uncompressed) members so recovery can memory-map
            # the CSR payload straight out of the archive; forked
            # serving workers then share one page-cache copy.  The
            # write goes through the fault shim like every other staged
            # file (direct streaming only in production, where the shim
            # is REAL_FS and an in-memory archive copy buys nothing).
            save_index_npz(
                artifact.index,
                stage / f"index-{cfg_name}.npz",
                compressed=False,
                fs=None if fs is REAL_FS else fs,
            )
            has_index = True
        configs[cfg_name] = {
            "config": artifact.config,
            "groups_crc32": payload_checksum(groups_doc),
            "has_index": has_index,
        }

    manifest = {
        "format": _MANIFEST_FORMAT,
        "format_version": CHECKPOINT_VERSION,
        "generation": state.generation,
        "wal_seq": state.wal_seq,
        "n_users": len(state.repository),
        "created_unix": time.time(),
        "configs": configs,
    }
    fs.write_bytes(
        stage / "manifest.json", json.dumps(manifest, indent=1).encode()
    )

    # Durability point of the payload: every staged file's *content*
    # must be on disk before any rename makes the directory reachable.
    for staged in sorted(stage.iterdir()):
        fs.fsync_path(staged)
    fs.fsync_dir(stage)

    fs.replace(stage, final)
    fs.fsync_dir(root)

    pointer = root / _CURRENT
    tmp_pointer = root / f".{_CURRENT}.tmp"
    fs.write_bytes(tmp_pointer, (name + "\n").encode())
    fs.fsync_path(tmp_pointer)
    fs.replace(tmp_pointer, pointer)
    fs.fsync_dir(root)

    for entry in root.iterdir():
        stale_stage = (
            entry.name.startswith(".tmp-") and entry.name != stage.name
        )
        superseded = (
            entry.name.startswith(_SNAP_PREFIX) and entry.name != name
        )
        if stale_stage or superseded:
            try:
                fs.rmtree(entry)
            except OSError:
                pass  # orphan: the next snapshot retries
    return final


def load_snapshot(
    path: str | Path, mmap_indexes: bool = False
) -> SnapshotState:
    """Load a snapshot directory written by :func:`write_snapshot`.

    ``mmap_indexes=True`` opens each configuration's index fully lazily
    via :func:`~repro.core.persistence.open_index_npz` (after checksum
    verification): CSR payload, integer arrays *and* the user-id array
    become read-only memory maps of the snapshot file, so recovery and
    every forked serving worker share one page-cache copy instead of
    private heap pages.  Snapshots written by this version store the
    arrays uncompressed exactly so this works; legacy
    DEFLATE-compressed snapshots transparently fall back to eager
    loads.
    """
    path = Path(path)
    try:
        manifest = json.loads((path / "manifest.json").read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(
            f"snapshot {path} has a missing or invalid manifest: {exc}"
        ) from exc
    if manifest.get("format") != _MANIFEST_FORMAT:
        raise StorageError(
            f"snapshot {path}: expected format {_MANIFEST_FORMAT!r}, "
            f"got {manifest.get('format')!r}"
        )
    version = manifest.get("format_version")
    if not isinstance(version, int) or version > CHECKPOINT_VERSION:
        raise StorageError(
            f"snapshot {path} format_version {version!r} is newer than "
            f"this reader (supports <= {CHECKPOINT_VERSION})"
        )
    try:
        repository = profiles_from_dict(
            json.loads((path / "profiles.json").read_text())
        )
    except (OSError, json.JSONDecodeError, DatasetError) as exc:
        raise StorageError(
            f"snapshot {path} has unreadable profiles: {exc}"
        ) from exc

    artifacts: dict[str, SnapshotArtifact] = {}
    for cfg_name, meta in manifest.get("configs", {}).items():
        groups_path = path / f"groups-{cfg_name}.json"
        try:
            groups_doc = json.loads(groups_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(
                f"snapshot {path} has unreadable groups for "
                f"{cfg_name!r}: {exc}"
            ) from exc
        stored_crc = meta.get("groups_crc32")
        if stored_crc is not None:
            actual = payload_checksum(groups_doc)
            if stored_crc != actual:
                raise StorageError(
                    f"snapshot {path} group checksum mismatch for "
                    f"{cfg_name!r} (stored {stored_crc}, computed {actual})"
                )
        index = None
        if meta.get("has_index"):
            index_path = path / f"index-{cfg_name}.npz"
            try:
                if mmap_indexes and index_npz_mappable(index_path):
                    index = open_index_npz(index_path)
                else:
                    index = load_index_npz(index_path, mmap=mmap_indexes)
            except DatasetError as exc:
                raise StorageError(
                    f"snapshot {path} has a corrupt index for "
                    f"{cfg_name!r}: {exc}"
                ) from exc
        artifacts[cfg_name] = SnapshotArtifact(
            config=dict(meta.get("config") or {}),
            groups=group_set_from_dict(groups_doc),
            index=index,
        )
    return SnapshotState(
        repository=repository,
        artifacts=artifacts,
        wal_seq=int(manifest.get("wal_seq", 0)),
        generation=int(manifest.get("generation", 0)),
    )
