"""Durable repository store: snapshot + write-ahead log + replay.

:class:`DurableRepositoryStore` is the facade the serving layer and the
CLI talk to.  On open it recovers the newest snapshot (if any), then
replays every WAL record with a sequence number past the snapshot's
``wal_seq`` — through the *same* incremental-update code the live path
uses (:func:`apply_delta_to_repository` + :func:`reassign_groups`), so a
recovered process holds byte-identical serving state.

Durability contract: :meth:`append_delta` validates the delta against
the current repository, writes it to the WAL (fsync by default) and only
then applies it in memory.  The WAL therefore never contains a record
that cannot be replayed, and a delta is acknowledged only once it is on
disk.  Compaction folds the applied log into a fresh snapshot and
truncates the WAL; sequence numbering survives compaction and restarts.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Callable

from ..core.errors import StorageError, UnknownUserError
from ..core.persistence import index_source_path
from ..core.profiles import UserRepository
from ..core.triplestore import find_triple_stores, inspect_triple_store
from ..core.updates import (
    ProfileDelta,
    apply_delta_to_repository,
    profile_delta_from_dict,
    profile_delta_to_dict,
    reassign_groups,
)
from .faults import REAL_FS, FilesystemShim
from .snapshot import (
    SnapshotArtifact,
    SnapshotState,
    current_snapshot_path,
    load_snapshot,
    write_snapshot,
)
from .wal import WalRecord, WriteAheadLog, scan_wal

_KIND_DELTA = "delta"


class DurableRepositoryStore:
    """Crash-safe repository state rooted at one data directory.

    Layout: ``<data_dir>/wal.log`` plus ``<data_dir>/snapshots/`` (see
    :mod:`repro.storage.snapshot`).  All mutation goes through this
    object; callers serialize concurrent writers (the service holds its
    write lock around :meth:`append_delta`), but the store also carries
    its own lock so CLI tooling is safe standalone.
    """

    def __init__(
        self,
        data_dir: str | Path,
        fsync: bool = True,
        mmap_indexes: bool = True,
        fs: FilesystemShim | None = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.mmap_indexes = mmap_indexes
        self._fs = fs if fs is not None else REAL_FS
        self._lock = threading.RLock()

        started = time.monotonic()
        snapshot_path = current_snapshot_path(self.data_dir)
        if snapshot_path is not None:
            # Recovered CSR indexes are memory-mapped by default: the
            # serving tier forks worker processes that all reference the
            # same page-cache copy of the snapshot payload, instead of
            # each holding a private heap copy.
            state = load_snapshot(snapshot_path, mmap_indexes=mmap_indexes)
        else:
            state = SnapshotState(repository=UserRepository(()))
        self.repository = state.repository
        self.artifacts: dict[str, SnapshotArtifact] = dict(state.artifacts)
        self.generation = state.generation
        self.snapshot_seq = state.wal_seq
        # Counts wholesale epoch replacements (reset) this process
        # performed.  Sequence numbering survives a reset, so this
        # counter is what tells a replication follower that history was
        # rewritten and a contiguous tail no longer means convergence.
        self.reset_epoch = 0

        self._wal = WriteAheadLog(self.wal_path, fsync=fsync, fs=self._fs)
        if self._wal.last_seq < state.wal_seq:
            # Post-compaction restart: the log was truncated after the
            # snapshot; resume global numbering from the snapshot.
            self._wal.truncate(base_seq=state.wal_seq)
        self.replayed_records = 0
        for record in self._wal.records():
            if record.seq <= state.wal_seq:
                continue  # already folded into the snapshot
            self._apply(self._decode(record.payload))
            self.replayed_records += 1
        if self.replayed_records:
            # Any cached indexes in the snapshot predate the replayed
            # deltas; drop them rather than serve stale incidence.
            self.artifacts = {
                name: SnapshotArtifact(a.config, a.groups, index=None)
                for name, a in self.artifacts.items()
            }
        self.replay_seconds = time.monotonic() - started

    # -- recovery ----------------------------------------------------------

    @property
    def wal_path(self) -> Path:
        return self.data_dir / "wal.log"

    @property
    def fsync(self) -> bool:
        return self._wal.fsync

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record."""
        return self._wal.last_seq

    @staticmethod
    def _decode(payload: dict[str, Any]) -> ProfileDelta:
        if payload.get("kind") != _KIND_DELTA:
            raise StorageError(
                f"unknown WAL record kind {payload.get('kind')!r}"
            )
        return profile_delta_from_dict(payload.get("delta") or {})

    def _apply(self, delta: ProfileDelta) -> None:
        """Apply a delta to the in-memory state (repository + groups)."""
        self.repository = apply_delta_to_repository(self.repository, delta)
        self.artifacts = {
            name: SnapshotArtifact(
                a.config,
                reassign_groups(a.groups, self.repository, delta),
                index=None,  # incidence changed; caller rebuilds lazily
            )
            for name, a in self.artifacts.items()
        }
        self.generation += 1

    # -- writing -----------------------------------------------------------

    def initialize(self, repository: UserRepository) -> None:
        """Seed an empty store with a full repository (first boot).

        Writes an immediate snapshot so the repository is durable before
        any delta arrives.  Raises if the store already holds users —
        wholesale replacement must go through :meth:`reset` so the
        caller is explicit about discarding history.
        """
        with self._lock:
            if len(self.repository) or self.snapshot_seq or self.last_seq:
                raise StorageError(
                    "store already holds data; use reset() to replace it"
                )
            self.repository = repository
            self.generation += 1
            self.snapshot()

    def append_delta(self, delta: ProfileDelta) -> int:
        """Durably log then apply one delta; returns its sequence number.

        Removals are validated *before* the WAL write so the log never
        holds a record that replay would refuse.
        """
        with self._lock:
            for user_id in delta.removals:
                if user_id not in self.repository:
                    raise UnknownUserError(
                        f"cannot remove unknown user {user_id!r}"
                    )
            seq = self._wal.append(
                {"kind": _KIND_DELTA, "delta": profile_delta_to_dict(delta)}
            )
            self._apply(delta)
            return seq

    def log_delta(self, delta: ProfileDelta) -> int:
        """Durably log a delta WITHOUT applying it; returns its sequence.

        The serving layer's ingest path uses this so the delta is applied
        exactly once — by the service's own incremental machinery — and
        then mirrored back via :meth:`adopt`.  Removals are validated
        against the store's repository first, preserving the invariant
        that the WAL never holds an unapplyable record (the caller must
        keep the store's repository current via :meth:`adopt`).
        """
        with self._lock:
            for user_id in delta.removals:
                if user_id not in self.repository:
                    raise UnknownUserError(
                        f"cannot remove unknown user {user_id!r}"
                    )
            return self._wal.append(
                {"kind": _KIND_DELTA, "delta": profile_delta_to_dict(delta)}
            )

    def adopt(
        self,
        repository: UserRepository,
        artifacts: dict[str, SnapshotArtifact] | None = None,
    ) -> None:
        """Mirror the serving layer's post-apply state into the store.

        Pairs with :meth:`log_delta`: the service applies the logged
        delta through its own cache-refresh path and hands the resulting
        repository (and optionally rebuilt artifacts) back, so snapshots
        capture exactly what is being served.
        """
        with self._lock:
            self.repository = repository
            if artifacts is not None:
                self.artifacts = dict(artifacts)
            self.generation += 1

    def set_artifacts(
        self, artifacts: dict[str, SnapshotArtifact]
    ) -> None:
        """Adopt the serving layer's built artifacts for future snapshots."""
        with self._lock:
            self.artifacts = dict(artifacts)

    def snapshot(self) -> Path:
        """Write the current state as the live snapshot (WAL kept)."""
        with self._lock:
            path = write_snapshot(
                self.data_dir,
                SnapshotState(
                    repository=self.repository,
                    artifacts=self.artifacts,
                    wal_seq=self.last_seq,
                    generation=self.generation,
                ),
                fs=self._fs,
            )
            self.snapshot_seq = self.last_seq
            return path

    def compact(self) -> Path:
        """Fold the WAL into a fresh snapshot and truncate the log."""
        with self._lock:
            path = self.snapshot()
            self._wal.truncate()
            return path

    def reset(
        self,
        repository: UserRepository,
        base_seq: int | None = None,
    ) -> None:
        """Replace the repository wholesale (new epoch).

        The previous history is discarded: artifacts are cleared (their
        group sets describe the old population), a fresh snapshot makes
        the new repository durable, and only then is the WAL truncated.
        Snapshot-before-truncate is the crash-safety point: the snapshot
        captures ``wal_seq == last_seq``, so every pre-reset WAL record
        is ``<= snapshot_seq`` and skipped on replay — a crash anywhere
        in between recovers the *new* epoch, never the replaced
        population over an already-emptied log.

        ``base_seq`` lets a replication follower adopt the primary's
        sequence numbering before its own appends continue it.
        """
        with self._lock:
            self.repository = repository
            self.artifacts = {}
            self.generation += 1
            self.reset_epoch += 1
            if base_seq is not None:
                self._wal.truncate(base_seq=int(base_seq))
            self.snapshot()
            self._wal.truncate()

    def records_since(
        self, from_seq: int, limit: int = 512
    ) -> tuple[tuple[WalRecord, ...], int, bool]:
        """WAL records past ``from_seq`` for a replication follower.

        Returns ``(records, last_seq, resync)``.  ``resync`` is true when
        the log can no longer serve a contiguous continuation from
        ``from_seq`` — compaction or a reset discarded the records the
        follower still needs — in which case the follower must fall back
        to a full state transfer.
        """
        with self._lock:
            if from_seq > self.last_seq:
                # The follower is ahead of us: divergent histories
                # (e.g. it was promoted and we are the stale primary).
                return (), self.last_seq, True
        records, last_seq = self._wal.read_since(from_seq, limit=limit)
        if records and records[0].seq != from_seq + 1:
            return (), last_seq, True
        if not records and from_seq < last_seq:
            # Behind, but the log holds nothing to ship (compacted away).
            return (), last_seq, True
        return records, last_seq, False

    def close(self) -> None:
        self._wal.close()

    def release_after_fork(self) -> None:
        """Drop the inherited WAL descriptor in a forked worker process.

        Deliberately lock-free: the fork may have happened while a
        parent thread held ``self._lock`` (that thread does not exist in
        the child), so taking locks here could deadlock.  The child
        never writes through this store — it only needs to stop sharing
        the WAL file offset with the parent.
        """
        self._wal.release_fd()

    def __enter__(self) -> "DurableRepositoryStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Storage gauges for ``/metrics`` and ``repro store inspect``."""
        with self._lock:
            return {
                "data_dir": str(self.data_dir),
                "fsync": self.fsync,
                "generation": self.generation,
                "reset_epoch": self.reset_epoch,
                "wal_seq": self.last_seq,
                "wal_bytes": self._wal.size_bytes,
                "wal_records_pending": self.last_seq - self.snapshot_seq,
                "wal_truncated_bytes_on_open": self._wal.truncated_bytes,
                "snapshot_seq": self.snapshot_seq,
                "replayed_records": self.replayed_records,
                "replay_seconds": self.replay_seconds,
                "n_users": len(self.repository),
                "configs": sorted(self.artifacts),
                "mmap_indexes": self.mmap_indexes,
                "mapped_artifact_indexes": sum(
                    1
                    for a in self.artifacts.values()
                    if a.index is not None
                    and index_source_path(a.index) is not None
                ),
            }


def inspect_data_dir(data_dir: str | Path) -> dict[str, Any]:
    """Read-only summary of a data directory (no recovery, no writes)."""
    data_dir = Path(data_dir)
    wal = scan_wal(data_dir / "wal.log")
    summary: dict[str, Any] = {
        "data_dir": str(data_dir),
        "wal_records": len(wal.records),
        "wal_bytes": wal.valid_bytes,
        "wal_torn_bytes": wal.torn_bytes,
        "wal_last_seq": wal.last_seq,
        "snapshot": None,
    }
    path = current_snapshot_path(data_dir)
    if path is not None:
        state = load_snapshot(path)
        summary["snapshot"] = {
            "path": str(path),
            "wal_seq": state.wal_seq,
            "generation": state.generation,
            "n_users": len(state.repository),
            "configs": sorted(state.artifacts),
        }
        summary["replay_pending"] = sum(
            1 for r in wal.records if r.seq > state.wal_seq
        )
    else:
        summary["replay_pending"] = len(wal.records)
    stores = [
        inspect_triple_store(store_dir)
        for store_dir in find_triple_stores(data_dir)
    ]
    if stores:
        summary["triple_stores"] = stores
    return summary
