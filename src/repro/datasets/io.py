"""JSON input/output for profiles and review datasets (paper §7).

"The input to Podium is a set of user profiles ... in JSON format" —
:func:`save_profiles` / :func:`load_profiles` implement that interchange
format.  Review datasets get their own format so generated ground truth
can be checkpointed and replayed across experiment runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..core.errors import DatasetError
from ..core.profiles import UserProfile, UserRepository
from .schema import Business, RawUser, Review, ReviewDataset, TopicMention

_PROFILE_FORMAT = "podium-profiles-v1"
_DATASET_FORMAT = "podium-reviews-v1"


def profiles_to_dict(repository: UserRepository) -> dict[str, Any]:
    """Serialize a repository to the JSON-ready profile document."""
    return {
        "format": _PROFILE_FORMAT,
        "users": [
            {"id": profile.user_id, "properties": dict(profile.scores)}
            for profile in repository
        ],
    }


def profiles_from_dict(document: dict[str, Any]) -> UserRepository:
    """Parse a profile document back into a repository."""
    if document.get("format") != _PROFILE_FORMAT:
        raise DatasetError(
            f"expected format {_PROFILE_FORMAT!r}, got {document.get('format')!r}"
        )
    try:
        return UserRepository(
            UserProfile(str(entry["id"]), entry.get("properties", {}))
            for entry in document["users"]
        )
    except (KeyError, TypeError) as exc:
        raise DatasetError(f"malformed profile document: {exc}") from exc


def save_profiles(repository: UserRepository, path: str | Path) -> None:
    """Write a repository to ``path`` as JSON."""
    Path(path).write_text(json.dumps(profiles_to_dict(repository), indent=1))


def load_profiles(path: str | Path) -> UserRepository:
    """Read a repository previously saved with :func:`save_profiles`."""
    return profiles_from_dict(json.loads(Path(path).read_text()))


def dataset_to_dict(dataset: ReviewDataset) -> dict[str, Any]:
    """Serialize a review dataset (ground truth) to a JSON document."""
    return {
        "format": _DATASET_FORMAT,
        "users": [
            {"id": u.user_id, "city": u.city, "age_group": u.age_group}
            for u in (dataset.user(uid) for uid in dataset.user_ids)
        ],
        "businesses": [
            {
                "id": b.business_id,
                "city": b.city,
                "categories": list(b.categories),
                "topics": list(b.topics),
                "quality": b.quality,
            }
            for b in (dataset.business(bid) for bid in dataset.business_ids)
        ],
        "reviews": [
            {
                "user": r.user_id,
                "business": r.business_id,
                "rating": r.rating,
                "mentions": [[m.topic, m.sentiment] for m in r.mentions],
                "useful_votes": r.useful_votes,
            }
            for r in dataset.reviews
        ],
    }


def dataset_from_dict(document: dict[str, Any]) -> ReviewDataset:
    """Parse a dataset document produced by :func:`dataset_to_dict`."""
    if document.get("format") != _DATASET_FORMAT:
        raise DatasetError(
            f"expected format {_DATASET_FORMAT!r}, got {document.get('format')!r}"
        )
    try:
        users = [
            RawUser(str(u["id"]), u.get("city"), u.get("age_group"))
            for u in document["users"]
        ]
        businesses = [
            Business(
                business_id=str(b["id"]),
                city=str(b["city"]),
                categories=tuple(b["categories"]),
                topics=tuple(b.get("topics", ())),
                quality=float(b.get("quality", 0.5)),
            )
            for b in document["businesses"]
        ]
        reviews = [
            Review(
                user_id=str(r["user"]),
                business_id=str(r["business"]),
                rating=int(r["rating"]),
                mentions=tuple(
                    TopicMention(topic, sentiment)
                    for topic, sentiment in r.get("mentions", ())
                ),
                useful_votes=int(r.get("useful_votes", 0)),
            )
            for r in document["reviews"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"malformed dataset document: {exc}") from exc
    return ReviewDataset(users, businesses, reviews)


def save_dataset(dataset: ReviewDataset, path: str | Path) -> None:
    """Write a review dataset to ``path`` as JSON."""
    Path(path).write_text(json.dumps(dataset_to_dict(dataset)))


def load_dataset(path: str | Path) -> ReviewDataset:
    """Read a dataset previously saved with :func:`save_dataset`."""
    return dataset_from_dict(json.loads(Path(path).read_text()))
