"""Derive profile properties from raw platform activity (paper §8.1).

The paper aggregates user activity into three derived families plus the
explicit demographics:

* **Average Rating** — mean rating for a category, *normalized by the
  user's overall average rating*.  We map the ratio
  ``avg_category / avg_overall`` into ``[0, 1]`` with 0.5 meaning "rates
  this category exactly like everything else" (ratio 1), saturating at a
  ratio of 2.
* **Visit Frequency** — fraction of the user's visited restaurants that
  belong to the category.
* **Enthusiasm Level** — fraction of the user's total rating points given
  to the category.
* ``livesIn <city>`` / ``ageGroup <g>`` Booleans from self-reported data,
  and an ``activityLevel`` score (log-scaled review count) capturing the
  low-to-high activity range §2 motivates.

Enrichment (when enabled) applies the §3.1 inference rules: functional
closure of ``livesIn``, city → region generalization, and cuisine
taxonomy generalization of every numeric family.  The TripAdvisor preset
enables everything (richer semantics → more groups); the Yelp preset
derives fewer families and skips enrichment, reproducing the paper's
"more users but less groups" contrast.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, replace

import numpy as np

from ..core.profiles import UserProfile, UserRepository
from ..taxonomy.rules import (
    FunctionalPropertyRule,
    GeneralizationRule,
    RuleEngine,
    category_property,
)
from . import catalog
from .schema import Review, ReviewDataset

#: Property family templates (shared with the running example's labels).
AVG_RATING = "avgRating"
VISIT_FREQ = "visitFreq"
ENTHUSIASM = "enthusiasm"
LIVES_IN = "livesIn"
AGE_GROUP = "ageGroup"
ACTIVITY_LEVEL = "activityLevel"


@dataclass(frozen=True)
class DeriveConfig:
    """Which property families to derive and how.

    ``exclude_businesses`` hides a set of destinations from the derived
    profiles — the holdout mechanism of the opinion-procurement
    experiments (§8.2): select users on profiles *excluding* a
    destination, then judge the diversity of their reviews *of* it.
    """

    include_avg_rating: bool = True
    include_visit_freq: bool = True
    include_enthusiasm: bool = True
    include_demographics: bool = True
    include_activity: bool = True
    min_category_reviews: int = 1
    enrich_taxonomy: bool = True
    functional_lives_in: bool = True
    exclude_businesses: frozenset[str] = frozenset()

    def excluding(self, business_ids: Iterable[str]) -> "DeriveConfig":
        """Copy of this config with extra held-out businesses."""
        return replace(
            self,
            exclude_businesses=self.exclude_businesses | set(business_ids),
        )


def tripadvisor_derive_config(**overrides) -> DeriveConfig:
    """All families + taxonomy enrichment (rich TripAdvisor semantics)."""
    return replace(DeriveConfig(), **overrides)


def yelp_derive_config(**overrides) -> DeriveConfig:
    """Fewer families, no enrichment (simpler Yelp semantics)."""
    base = DeriveConfig(
        include_enthusiasm=False,
        enrich_taxonomy=False,
        functional_lives_in=False,
    )
    return replace(base, **overrides)


def _normalize_avg_rating(category_mean: float, overall_mean: float) -> float:
    """Ratio-to-[0,1] mapping: 0.5 at parity, 1.0 at double the usual."""
    if overall_mean <= 0:
        return 0.5
    return float(np.clip(category_mean / (2.0 * overall_mean), 0.0, 1.0))


def _activity_score(n_reviews: int, max_reviews: int) -> float:
    """Log-scaled review count relative to the most active user."""
    if max_reviews <= 1:
        return 1.0
    return float(np.log1p(n_reviews) / np.log1p(max_reviews))


def derive_profile(
    dataset: ReviewDataset,
    user_id: str,
    config: DeriveConfig,
    max_reviews: int,
) -> UserProfile:
    """Build one user's raw (pre-enrichment) profile."""
    scores: dict[str, float] = {}
    raw_user = dataset.user(user_id)

    if config.include_demographics:
        if raw_user.city:
            scores[category_property(LIVES_IN, raw_user.city)] = 1.0
        if raw_user.age_group:
            scores[category_property(AGE_GROUP, raw_user.age_group)] = 1.0

    reviews = [
        r
        for r in dataset.reviews_by(user_id)
        if r.business_id not in config.exclude_businesses
    ]
    if not reviews:
        return UserProfile(user_id, scores)

    if config.include_activity:
        scores[ACTIVITY_LEVEL] = _activity_score(len(reviews), max_reviews)

    overall_mean = float(np.mean([r.rating for r in reviews]))
    total_points = float(sum(r.rating for r in reviews))

    by_category: dict[str, list[Review]] = {}
    for review in reviews:
        for category in dataset.business(review.business_id).categories:
            by_category.setdefault(category, []).append(review)

    for category, cat_reviews in by_category.items():
        if len(cat_reviews) < config.min_category_reviews:
            continue
        if config.include_avg_rating:
            cat_mean = float(np.mean([r.rating for r in cat_reviews]))
            scores[category_property(AVG_RATING, category)] = (
                _normalize_avg_rating(cat_mean, overall_mean)
            )
        if config.include_visit_freq:
            scores[category_property(VISIT_FREQ, category)] = (
                len(cat_reviews) / len(reviews)
            )
        if config.include_enthusiasm and total_points > 0:
            scores[category_property(ENTHUSIASM, category)] = (
                sum(r.rating for r in cat_reviews) / total_points
            )

    return UserProfile(user_id, scores)


def enrichment_engine(config: DeriveConfig) -> RuleEngine:
    """The §3.1 rule engine matching ``config``'s enabled families."""
    rules = []
    if config.functional_lives_in:
        rules.append(
            FunctionalPropertyRule(LIVES_IN, tuple(catalog.cities()))
        )
    if config.enrich_taxonomy:
        city_tax = catalog.city_taxonomy()
        cuisine_tax = catalog.cuisine_taxonomy()
        rules.append(GeneralizationRule(LIVES_IN, city_tax, aggregate="max"))
        for template, enabled in (
            (AVG_RATING, config.include_avg_rating),
            (VISIT_FREQ, config.include_visit_freq),
            (ENTHUSIASM, config.include_enthusiasm),
        ):
            if enabled:
                rules.append(GeneralizationRule(template, cuisine_tax))
    return RuleEngine(rules)


def build_repository(
    dataset: ReviewDataset,
    config: DeriveConfig | None = None,
    user_ids: Iterable[str] | None = None,
) -> UserRepository:
    """Derive a :class:`UserRepository` from a review dataset.

    This is the pre-processing pipeline of Fig. 1's grouping module input:
    aggregate raw activity into scored properties, then apply the
    inference rules.  ``user_ids`` restricts the repository to a sub-
    population (the procurement simulation derives profiles only for a
    destination's reviewers); activity normalization still uses the full
    population's maximum so scores stay comparable.
    """
    config = config or DeriveConfig()
    max_reviews = max(
        (
            len(
                [
                    r
                    for r in dataset.reviews_by(u)
                    if r.business_id not in config.exclude_businesses
                ]
            )
            for u in dataset.user_ids
        ),
        default=1,
    )
    targets = list(user_ids) if user_ids is not None else dataset.user_ids
    repository = UserRepository(
        derive_profile(dataset, user_id, config, max_reviews)
        for user_id in targets
    )
    engine = enrichment_engine(config)
    if engine.rules:
        repository = engine.enrich(repository)
    return repository
