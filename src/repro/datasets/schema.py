"""Raw review-platform records backing the synthetic datasets (paper §8.1).

The paper's experiments run over TripAdvisor and Yelp restaurant-review
data: users, businesses ("destinations") and reviews with ratings, topic
mentions and — on Yelp — useful-vote counts.  These records are the
*ground truth* layer: the selection algorithms only ever see the profile
properties derived from them (:mod:`repro.datasets.derive`), while the
opinion-diversity metrics read the reviews directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..core.errors import DatasetError

#: Review ratings are integer "stars" in this inclusive range.
RATING_MIN = 1
RATING_MAX = 5

#: Sentiment poles a topic mention can carry.
SENTIMENTS = ("positive", "negative")


@dataclass(frozen=True)
class RawUser:
    """Account-level data a user submitted to the platform."""

    user_id: str
    city: str | None = None
    age_group: str | None = None


@dataclass(frozen=True)
class Business:
    """A reviewable restaurant/destination.

    ``categories`` are leaf taxonomy categories (cuisines and price
    tiers); ``topics`` are the prevalent review topics extracted for this
    destination (what the Topic+Sentiment coverage metric enumerates).
    """

    business_id: str
    city: str
    categories: tuple[str, ...]
    topics: tuple[str, ...] = ()
    quality: float = 0.5

    def __post_init__(self) -> None:
        if not self.categories:
            raise DatasetError(
                f"business {self.business_id!r} must have >= 1 category"
            )


@dataclass(frozen=True)
class TopicMention:
    """One (topic, sentiment) pair appearing in a review."""

    topic: str
    sentiment: str

    def __post_init__(self) -> None:
        if self.sentiment not in SENTIMENTS:
            raise DatasetError(
                f"sentiment must be one of {SENTIMENTS}, got {self.sentiment!r}"
            )


@dataclass(frozen=True)
class Review:
    """A user's review of a business: rating, topic mentions, usefulness."""

    user_id: str
    business_id: str
    rating: int
    mentions: tuple[TopicMention, ...] = ()
    useful_votes: int = 0

    def __post_init__(self) -> None:
        if not RATING_MIN <= self.rating <= RATING_MAX:
            raise DatasetError(
                f"rating must be in [{RATING_MIN}, {RATING_MAX}], "
                f"got {self.rating}"
            )
        if self.useful_votes < 0:
            raise DatasetError("useful_votes cannot be negative")


class ReviewDataset:
    """Users, businesses and reviews with by-user / by-business indexes."""

    def __init__(
        self,
        users: Iterable[RawUser],
        businesses: Iterable[Business],
        reviews: Iterable[Review],
    ) -> None:
        self._users = {u.user_id: u for u in users}
        self._businesses = {b.business_id: b for b in businesses}
        self._reviews: list[Review] = []
        self._by_user: dict[str, list[Review]] = {}
        self._by_business: dict[str, list[Review]] = {}
        for review in reviews:
            self.add_review(review)

    def add_review(self, review: Review) -> None:
        """Append a review; both endpoints must exist."""
        if review.user_id not in self._users:
            raise DatasetError(f"review by unknown user {review.user_id!r}")
        if review.business_id not in self._businesses:
            raise DatasetError(
                f"review of unknown business {review.business_id!r}"
            )
        self._reviews.append(review)
        self._by_user.setdefault(review.user_id, []).append(review)
        self._by_business.setdefault(review.business_id, []).append(review)

    # -- access --------------------------------------------------------------

    @property
    def user_ids(self) -> list[str]:
        return list(self._users)

    @property
    def business_ids(self) -> list[str]:
        return list(self._businesses)

    @property
    def reviews(self) -> list[Review]:
        return list(self._reviews)

    def user(self, user_id: str) -> RawUser:
        try:
            return self._users[user_id]
        except KeyError:
            raise DatasetError(f"unknown user {user_id!r}") from None

    def business(self, business_id: str) -> Business:
        try:
            return self._businesses[business_id]
        except KeyError:
            raise DatasetError(f"unknown business {business_id!r}") from None

    def reviews_by(self, user_id: str) -> list[Review]:
        """All reviews authored by ``user_id`` (empty when none)."""
        return list(self._by_user.get(user_id, ()))

    def reviews_of(self, business_id: str) -> list[Review]:
        """All reviews of ``business_id`` (empty when none)."""
        return list(self._by_business.get(business_id, ()))

    def __len__(self) -> int:
        return len(self._reviews)

    def __iter__(self) -> Iterator[Review]:
        return iter(self._reviews)

    def destinations(self, min_reviews: int = 1) -> list[str]:
        """Business ids with at least ``min_reviews`` reviews — the
        candidates for the opinion-procurement experiments (§8.4 uses 50
        TripAdvisor / 130 Yelp destinations)."""
        return [
            business_id
            for business_id in self._businesses
            if len(self._by_business.get(business_id, ())) >= min_reviews
        ]

    def categories(self) -> list[str]:
        """Every leaf category mentioned by any business."""
        seen: dict[str, None] = {}
        for business in self._businesses.values():
            for category in business.categories:
                seen.setdefault(category, None)
        return list(seen)

    def cities(self) -> list[str]:
        """Every city a user or business declares."""
        seen: dict[str, None] = {}
        for user in self._users.values():
            if user.city:
                seen.setdefault(user.city, None)
        for business in self._businesses.values():
            seen.setdefault(business.city, None)
        return list(seen)

    def __repr__(self) -> str:
        return (
            f"ReviewDataset(users={len(self._users)}, "
            f"businesses={len(self._businesses)}, reviews={len(self._reviews)})"
        )
