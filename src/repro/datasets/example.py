"""The paper's running example (Table 2: Alice, Bob, Carol, David, Eve).

Six properties over five users of a travel website.  ``livesIn <city>``
and ``ageGroup <X-Y>`` are Boolean; the four restaurant properties carry
normalized scores.  Examples 3.5, 3.8, 4.3, 5.2, 6.2 and 6.4 of the paper
all run over this repository, and the unit tests in
``tests/core/test_running_example.py`` replay them step by step.

Note: Example 4.3 lists David's initial marginal contribution as 6, but
its own update arithmetic (7 − 2 − 3 = 2 after Alice is picked) shows the
intended value is 7 — the "6" is a typo in the paper; this module and the
tests use 7.
"""

from __future__ import annotations

from ..core.groups import GroupingConfig
from ..core.profiles import UserProfile, UserRepository

#: Interior split points of Example 3.8: low [0, 0.4), medium [0.4, 0.65),
#: high [0.65, 1].
EXAMPLE_SPLITS: tuple[float, float] = (0.4, 0.65)

#: Property labels of Table 2.
LIVES_IN_TOKYO = "livesIn Tokyo"
LIVES_IN_NYC = "livesIn NYC"
LIVES_IN_BALI = "livesIn Bali"
LIVES_IN_PARIS = "livesIn Paris"
AGE_50_64 = "ageGroup 50-64"
AVG_MEXICAN = "avgRating Mexican"
FREQ_MEXICAN = "visitFreq Mexican"
AVG_CHEAP = "avgRating CheapEats"
FREQ_CHEAP = "visitFreq CheapEats"

_TABLE_2: dict[str, dict[str, float]] = {
    "Alice": {
        LIVES_IN_TOKYO: 1.0,
        AGE_50_64: 1.0,
        AVG_MEXICAN: 0.95,
        FREQ_MEXICAN: 0.8,
        AVG_CHEAP: 0.1,
        FREQ_CHEAP: 0.6,
    },
    "Bob": {
        LIVES_IN_NYC: 1.0,
        AVG_MEXICAN: 0.3,
        FREQ_MEXICAN: 0.25,
        AVG_CHEAP: 0.9,
        FREQ_CHEAP: 0.85,
    },
    "Carol": {
        LIVES_IN_BALI: 1.0,
        AGE_50_64: 1.0,
        AVG_CHEAP: 0.45,
        FREQ_CHEAP: 0.2,
    },
    "David": {
        LIVES_IN_TOKYO: 1.0,
        AVG_MEXICAN: 0.75,
        FREQ_MEXICAN: 0.6,
    },
    "Eve": {
        LIVES_IN_PARIS: 1.0,
        AVG_MEXICAN: 0.8,
        FREQ_MEXICAN: 0.45,
        AVG_CHEAP: 0.6,
        FREQ_CHEAP: 0.3,
    },
}


def example_repository() -> UserRepository:
    """Build the Table 2 repository."""
    return UserRepository(
        UserProfile(user_id, scores) for user_id, scores in _TABLE_2.items()
    )


def example_grouping_config() -> GroupingConfig:
    """Grouping configuration reproducing Example 3.8's buckets."""
    return GroupingConfig(fixed_splits=EXAMPLE_SPLITS)
