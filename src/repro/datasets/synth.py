"""Synthetic review-platform generator (substitute for paper §8.1 data).

The paper evaluates on a TripAdvisor crawl and the Yelp Open Dataset —
neither redistributable here — so this module generates populations with
the structural traits the algorithms are sensitive to:

* heavy-tailed user activity (a few prolific reviewers, many casual ones),
  giving the heavily skewed, overlapping group sizes §2 discusses;
* per-user sparse cuisine preferences (Dirichlet over a sampled support),
  so visit frequencies and ratings correlate within a user;
* business quality + user harshness + affinity rating model, producing
  the full low-to-high rating ranges diversification must cover;
* per-destination prevalent topics with rating-correlated sentiment and
  Yelp-style useful votes, feeding the opinion-diversity metrics.

Two presets mirror the paper's dataset contrast (§8.1): the TripAdvisor
preset has richer semantics (more demographic data, more activity per
user, taxonomy enrichment downstream → more groups), while the Yelp
preset has more users but simpler semantics (fewer property families →
fewer groups), which is what widens Podium's lead in Fig. 3c/3d.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.errors import DatasetError
from . import catalog
from .schema import Business, RawUser, Review, ReviewDataset, TopicMention


@dataclass(frozen=True)
class SynthConfig:
    """Knobs of the synthetic platform generator.

    Attributes
    ----------
    name:
        Preset name recorded in reports ("tripadvisor" / "yelp" / custom).
    n_users, n_businesses:
        Population sizes.
    n_cities:
        How many catalog cities the platform spans.
    activity_mu, activity_sigma:
        Log-normal parameters of reviews-per-user (heavy tail).
    min_reviews_per_user:
        Floor on user activity, so every user has some profile.
    preference_support:
        Typical number of cuisines a user actually cares about.
    preference_alpha:
        Dirichlet concentration of the user's preference weights.
    demographic_rate:
        Probability a user self-reports city and age group.
    topics_per_business:
        ``(lo, hi)`` range of prevalent topics per destination.
    mentions_per_review:
        ``(lo, hi)`` range of topic mentions in one review.
    has_useful_votes:
        Whether reviews accumulate useful votes (Yelp only in the paper).
    rating_noise:
        Std-dev of the Gaussian noise in the latent rating.
    """

    name: str = "custom"
    n_users: int = 500
    n_businesses: int = 120
    n_cities: int = 12
    activity_mu: float = 2.2
    activity_sigma: float = 0.9
    min_reviews_per_user: int = 3
    preference_support: int = 6
    preference_alpha: float = 0.7
    demographic_rate: float = 0.6
    topics_per_business: tuple[int, int] = (6, 10)
    mentions_per_review: tuple[int, int] = (1, 4)
    has_useful_votes: bool = False
    rating_noise: float = 0.12

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.n_businesses < 1:
            raise DatasetError("n_users and n_businesses must be >= 1")
        if not 0.0 <= self.demographic_rate <= 1.0:
            raise DatasetError("demographic_rate must be in [0, 1]")
        if self.n_cities < 1 or self.n_cities > len(catalog.cities()):
            raise DatasetError(
                f"n_cities must be in [1, {len(catalog.cities())}]"
            )
        lo, hi = self.topics_per_business
        if not 1 <= lo <= hi <= len(catalog.REVIEW_TOPICS):
            raise DatasetError("invalid topics_per_business range")
        lo, hi = self.mentions_per_review
        if not 1 <= lo <= hi:
            raise DatasetError("invalid mentions_per_review range")


def tripadvisor_config(n_users: int = 900, **overrides) -> SynthConfig:
    """TripAdvisor-like preset: rich semantics, very active reviewers.

    The paper's crawl has 4,475 users; pass ``n_users=4475`` to match.
    """
    base = SynthConfig(
        name="tripadvisor",
        n_users=n_users,
        n_businesses=max(60, n_users // 4),
        n_cities=18,
        activity_mu=2.6,
        activity_sigma=1.0,
        min_reviews_per_user=4,
        preference_support=8,
        preference_alpha=0.6,
        demographic_rate=0.75,
        topics_per_business=(8, 12),
        mentions_per_review=(2, 5),
        has_useful_votes=False,
    )
    return replace(base, **overrides)


def yelp_config(n_users: int = 3000, **overrides) -> SynthConfig:
    """Yelp-like preset: more users, simpler semantics, useful votes.

    The paper uses the 60K most active Yelp users; pass a larger
    ``n_users`` to approach that scale.
    """
    base = SynthConfig(
        name="yelp",
        n_users=n_users,
        n_businesses=max(80, n_users // 6),
        n_cities=8,
        activity_mu=2.0,
        activity_sigma=0.8,
        min_reviews_per_user=3,
        preference_support=4,
        preference_alpha=0.9,
        demographic_rate=0.35,
        topics_per_business=(5, 8),
        mentions_per_review=(1, 3),
        has_useful_votes=True,
    )
    return replace(base, **overrides)


def generate(config: SynthConfig, seed: int = 0) -> ReviewDataset:
    """Generate a full :class:`ReviewDataset` for ``config``.

    Deterministic for a given ``(config, seed)`` pair.
    """
    rng = np.random.default_rng(seed)
    cities = list(catalog.cities()[: config.n_cities])
    cuisines = list(catalog.leaf_cuisines())

    businesses = _generate_businesses(config, rng, cities, cuisines)
    users = _generate_users(config, rng, cities)
    reviews = _generate_reviews(config, rng, users, businesses, cuisines)
    return ReviewDataset(users, businesses, reviews)


def _generate_businesses(
    config: SynthConfig,
    rng: np.random.Generator,
    cities: list[str],
    cuisines: list[str],
) -> list[Business]:
    # City popularity is skewed: restaurants cluster in big cities.
    city_weights = rng.dirichlet(np.full(len(cities), 0.8))
    cuisine_weights = rng.dirichlet(np.full(len(cuisines), 0.5))
    topic_pool = list(catalog.REVIEW_TOPICS)
    lo, hi = config.topics_per_business

    businesses = []
    for i in range(config.n_businesses):
        n_cuisines = int(rng.integers(1, 3))
        picked = rng.choice(
            len(cuisines), size=n_cuisines, replace=False, p=cuisine_weights
        )
        categories = tuple(cuisines[j] for j in picked)
        categories += (catalog.PRICE_TIERS[int(rng.integers(3))],)
        n_topics = int(rng.integers(lo, hi + 1))
        topics = tuple(
            topic_pool[j]
            for j in sorted(
                rng.choice(len(topic_pool), size=n_topics, replace=False)
            )
        )
        businesses.append(
            Business(
                business_id=f"b{i:05d}",
                city=cities[int(rng.choice(len(cities), p=city_weights))],
                categories=categories,
                topics=topics,
                quality=float(rng.beta(4.0, 2.5)),
            )
        )
    return businesses


def _generate_users(
    config: SynthConfig, rng: np.random.Generator, cities: list[str]
) -> list[RawUser]:
    users = []
    for i in range(config.n_users):
        declares = rng.random() < config.demographic_rate
        users.append(
            RawUser(
                user_id=f"u{i:06d}",
                city=cities[int(rng.integers(len(cities)))] if declares else None,
                age_group=(
                    catalog.AGE_GROUPS[int(rng.integers(len(catalog.AGE_GROUPS)))]
                    if declares
                    else None
                ),
            )
        )
    return users


def _latent_rating(
    quality: float,
    affinity: float,
    harshness: float,
    noise: float,
) -> int:
    """Map the latent satisfaction to a 1..5 star rating."""
    latent = 0.15 + 0.45 * quality + 0.35 * affinity - 0.2 * harshness + noise
    return int(np.clip(round(1 + 4 * latent), 1, 5))


def _generate_reviews(
    config: SynthConfig,
    rng: np.random.Generator,
    users: list[RawUser],
    businesses: list[Business],
    cuisines: list[str],
) -> list[Review]:
    cuisine_index = {name: i for i, name in enumerate(cuisines)}
    # Per-business main-cuisine vector for preference-driven visit choice.
    biz_cuisine = np.array(
        [cuisine_index[b.categories[0]] for b in businesses]
    )
    biz_popularity = rng.pareto(2.5, size=len(businesses)) + 1.0
    biz_popularity /= biz_popularity.sum()

    reviews: list[Review] = []
    n_biz = len(businesses)
    for user in users:
        activity = int(rng.lognormal(config.activity_mu, config.activity_sigma))
        activity = max(config.min_reviews_per_user, min(activity, n_biz))
        harshness = float(rng.normal(0.0, 0.35))

        # Sparse cuisine preferences: support + Dirichlet weights on it.
        support_size = min(
            max(2, int(rng.poisson(config.preference_support))), len(cuisines)
        )
        support = rng.choice(len(cuisines), size=support_size, replace=False)
        weights = rng.dirichlet(np.full(support_size, config.preference_alpha))
        preference = np.zeros(len(cuisines))
        preference[support] = weights

        # Visit probability mixes preference affinity with popularity.
        affinity_per_biz = preference[biz_cuisine]
        visit_p = 0.25 * biz_popularity + 0.75 * (
            affinity_per_biz / max(affinity_per_biz.sum(), 1e-12)
            if affinity_per_biz.sum() > 0
            else biz_popularity
        )
        visit_p = visit_p / visit_p.sum()
        visited = rng.choice(n_biz, size=activity, replace=False, p=visit_p)

        for biz_idx in visited:
            business = businesses[int(biz_idx)]
            affinity = float(preference[biz_cuisine[int(biz_idx)]])
            rating = _latent_rating(
                business.quality,
                min(affinity * support_size, 1.0),
                harshness,
                float(rng.normal(0.0, config.rating_noise)),
            )
            mentions = _sample_mentions(config, rng, business, rating)
            useful = (
                _sample_useful_votes(rng, business, rating)
                if config.has_useful_votes
                else 0
            )
            reviews.append(
                Review(
                    user_id=user.user_id,
                    business_id=business.business_id,
                    rating=rating,
                    mentions=mentions,
                    useful_votes=useful,
                )
            )
    return reviews


def _sample_mentions(
    config: SynthConfig,
    rng: np.random.Generator,
    business: Business,
    rating: int,
) -> tuple[TopicMention, ...]:
    lo, hi = config.mentions_per_review
    count = min(int(rng.integers(lo, hi + 1)), len(business.topics))
    picked = rng.choice(len(business.topics), size=count, replace=False)
    positive_p = {1: 0.1, 2: 0.25, 3: 0.5, 4: 0.8, 5: 0.95}[rating]
    return tuple(
        TopicMention(
            topic=business.topics[int(i)],
            sentiment="positive" if rng.random() < positive_p else "negative",
        )
        for i in picked
    )


def generate_profile_repository(
    n_users: int,
    n_properties: int,
    mean_profile_size: float,
    seed: int = 0,
    boolean_fraction: float = 0.3,
):
    """Directly generate a :class:`~repro.core.profiles.UserRepository`.

    Bypasses the review pipeline for the scalability experiments (Figs.
    5–6), which need precise control over ``|U|`` and the average profile
    size.  Property popularity is Zipf-distributed so group sizes are
    skewed like in the real datasets; a ``boolean_fraction`` of the
    properties are 0/1-valued, the rest carry Beta-distributed scores.
    """
    from ..core.errors import DatasetError
    from ..core.profiles import UserProfile, UserRepository

    if not 0 < mean_profile_size <= n_properties:
        raise DatasetError(
            f"mean_profile_size must be in (0, {n_properties}]"
        )
    rng = np.random.default_rng(seed)
    labels = [f"prop{p:05d}" for p in range(n_properties)]
    is_bool = rng.random(n_properties) < boolean_fraction
    popularity = 1.0 / np.arange(1, n_properties + 1) ** 0.8
    popularity /= popularity.sum()

    profiles = []
    for i in range(n_users):
        size = int(
            np.clip(
                rng.poisson(mean_profile_size), 1, n_properties
            )
        )
        picked = rng.choice(
            n_properties, size=size, replace=False, p=popularity
        )
        scores = {
            labels[int(p)]: (
                float(rng.integers(2)) if is_bool[p] else float(rng.beta(2, 2))
            )
            for p in picked
        }
        profiles.append(UserProfile(f"u{i:06d}", scores))
    return UserRepository(profiles)


def generate_profile_columns(
    n_users: int,
    n_properties: int,
    mean_profile_size: float,
    seed: int = 0,
    boolean_fraction: float = 0.3,
    chunk: int = 16384,
    store_dir=None,
):
    """Generate a population directly as triple columns — the scale path.

    Returns a :class:`~repro.core.columnar.ColumnarProfiles` with the
    same structural traits as :func:`generate_profile_repository` (Zipf
    property popularity with exponent 0.8, Poisson profile sizes clipped
    to ``[1, n_properties]``, a ``boolean_fraction`` of 0/1 properties,
    Beta(2, 2) scores elsewhere) but without instantiating a single
    Python dict, so a million users materialize in seconds.

    Per-user without-replacement popularity-weighted property draws are
    vectorized with the Gumbel top-k trick: adding i.i.d. Gumbel noise to
    log-popularities and taking the ``size`` largest keys per row samples
    exactly ``size`` distinct properties with the correct (successive
    softmax) probabilities.  Users are processed in ``chunk``-row blocks
    to bound the ``(chunk, n_properties)`` noise matrix.

    With ``store_dir`` set, chunks spill straight into an on-disk
    :class:`~repro.core.triplestore.TripleStore` at that directory
    instead of concatenating in RAM, and the store is returned.  Peak
    memory is then bounded by the chunk size regardless of ``n_users``
    (the out-of-core tier's entry point), and the spilled triples are
    byte-identical to the in-RAM columns for the same arguments: numpy's
    ``Generator`` draws the same stream whether a distribution is
    sampled in one call or chunked, so the spill path replays the exact
    in-RAM draw order (sizes+keys per user chunk, then all coin flips,
    then all betas).

    Deterministic for a given ``(args, seed)`` pair, but the stream
    differs from :func:`generate_profile_repository` — the two generators
    produce statistically matched, not identical, populations.  Pipelines
    comparing dict vs columnar construction must feed both the *same*
    columns (see :func:`~repro.core.columnar.columnar_to_repository`).
    """
    from ..core.columnar import ColumnarProfiles

    if not 0 < mean_profile_size <= n_properties:
        raise DatasetError(
            f"mean_profile_size must be in (0, {n_properties}]"
        )
    if chunk < 1:
        raise DatasetError(f"chunk must be >= 1, got {chunk}")
    rng = np.random.default_rng(seed)
    labels = tuple(f"prop{p:05d}" for p in range(n_properties))
    is_bool = rng.random(n_properties) < boolean_fraction
    popularity = 1.0 / np.arange(1, n_properties + 1) ** 0.8
    popularity /= popularity.sum()
    log_pop = np.log(popularity)

    if store_dir is not None:
        return _spill_profile_columns(
            n_users,
            n_properties,
            mean_profile_size,
            rng,
            labels,
            is_bool,
            log_pop,
            chunk,
            store_dir,
        )

    user_parts: list[np.ndarray] = []
    prop_parts: list[np.ndarray] = []
    for start in range(0, n_users, chunk):
        rows = min(chunk, n_users - start)
        sizes = np.clip(
            rng.poisson(mean_profile_size, size=rows), 1, n_properties
        )
        keys = log_pop[None, :] + rng.gumbel(size=(rows, n_properties))
        order = np.argsort(-keys, axis=1, kind="stable")
        take = np.arange(n_properties)[None, :] < sizes[:, None]
        prop_parts.append(order[take].astype(np.int64))
        user_parts.append(
            np.repeat(np.arange(start, start + rows, dtype=np.int64), sizes)
        )
    user_col = np.concatenate(user_parts) if user_parts else np.empty(0, np.int64)
    prop_col = np.concatenate(prop_parts) if prop_parts else np.empty(0, np.int64)
    m = len(prop_col)
    score_col = np.where(
        is_bool[prop_col],
        rng.integers(0, 2, size=m).astype(np.float64),
        rng.beta(2.0, 2.0, size=m),
    )

    width = max(6, len(str(max(n_users - 1, 0))))
    user_ids = np.char.add(
        "u", np.char.zfill(np.arange(n_users).astype(str), width)
    )
    return ColumnarProfiles(
        user_ids=user_ids.astype(object),
        property_labels=labels,
        user_col=user_col,
        prop_col=prop_col,
        score_col=score_col,
    )


def _spill_profile_columns(
    n_users: int,
    n_properties: int,
    mean_profile_size: float,
    rng: np.random.Generator,
    labels: tuple[str, ...],
    is_bool: np.ndarray,
    log_pop: np.ndarray,
    chunk: int,
    store_dir,
):
    """Spill-to-disk tail of :func:`generate_profile_columns`.

    Streams ``(user, prop)`` chunks into the store's column files during
    the Gumbel top-k pass, then scores in two more bounded passes that
    replay the in-RAM draw order exactly: every 0/1 coin flip is drawn
    (and parked in a temp file) before the first Beta variate, because
    the concatenating path draws ``integers(0, 2, size=m)`` in full
    before ``beta(2, 2, size=m)``.
    """
    from pathlib import Path

    from ..core.triplestore import TripleStoreWriter

    writer = TripleStoreWriter(
        store_dir, n_users=n_users, property_labels=labels
    )
    for start in range(0, n_users, chunk):
        rows = min(chunk, n_users - start)
        sizes = np.clip(
            rng.poisson(mean_profile_size, size=rows), 1, n_properties
        )
        keys = log_pop[None, :] + rng.gumbel(size=(rows, n_properties))
        order = np.argsort(-keys, axis=1, kind="stable")
        take = np.arange(n_properties)[None, :] < sizes[:, None]
        writer.append("prop_col", order[take])
        writer.append(
            "user_col",
            np.repeat(np.arange(start, start + rows, dtype=np.int64), sizes),
        )
    writer.flush()
    m = writer.count("prop_col")

    entry_chunk = max(chunk * 8, 1 << 16)
    flips_path = Path(store_dir) / "tmp_flips.u1"
    with open(flips_path, "wb") as tmp:
        for lo in range(0, m, entry_chunk):
            count = min(entry_chunk, m - lo)
            tmp.write(
                rng.integers(0, 2, size=count).astype(np.uint8).tobytes()
            )
    if m:
        prop_view = np.memmap(
            writer.column_path("prop_col"),
            mode="r",
            dtype=writer.column_dtype("prop_col"),
            shape=(m,),
        )
        flips = np.memmap(flips_path, mode="r", dtype=np.uint8, shape=(m,))
        for lo in range(0, m, entry_chunk):
            hi = min(lo + entry_chunk, m)
            betas = rng.beta(2.0, 2.0, size=hi - lo)
            props = np.asarray(prop_view[lo:hi], dtype=np.int64)
            writer.append(
                "score_col",
                np.where(
                    is_bool[props], flips[lo:hi].astype(np.float64), betas
                ),
            )
        del prop_view, flips
    flips_path.unlink()
    return writer.finalize()


def _sample_useful_votes(
    rng: np.random.Generator, business: Business, rating: int
) -> int:
    """Mainstream reviews (rating near the business's quality) gather more
    useful votes — the mechanism behind the paper's Usefulness metric
    rewarding representative opinions."""
    expected_rating = 1 + 4 * business.quality
    closeness = max(0.0, 1.0 - abs(rating - expected_rating) / 4.0)
    return int(rng.poisson(0.5 + 4.0 * closeness))
