"""Built-in domain catalog: cuisines, price tiers, cities, topics, ages.

The synthetic generators draw categories from this catalog and the
enrichment step (paper §3.1) generalizes along its taxonomies —
``Mexican → Latin → AnyCuisine`` for cuisines, ``Tokyo → Japan → Asia``
for residence locations.
"""

from __future__ import annotations

from ..taxonomy.tree import Taxonomy

#: Leaf cuisine -> parent cuisine family.
CUISINE_PARENTS: dict[str, str] = {
    "Mexican": "Latin",
    "Tex-Mex": "Latin",
    "Brazilian": "Latin",
    "Peruvian": "Latin",
    "Argentinian": "Latin",
    "Spanish": "European",
    "Italian": "European",
    "French": "European",
    "Greek": "European",
    "Portuguese": "European",
    "German": "European",
    "Chinese": "Asian",
    "Japanese": "Asian",
    "Sushi": "Asian",
    "Korean": "Asian",
    "Thai": "Asian",
    "Vietnamese": "Asian",
    "Indian": "Asian",
    "Lebanese": "MiddleEastern",
    "Turkish": "MiddleEastern",
    "Israeli": "MiddleEastern",
    "Moroccan": "MiddleEastern",
    "Burgers": "American",
    "BBQ": "American",
    "Steakhouse": "American",
    "Diner": "American",
    "Cajun": "American",
    "Pizza": "FastCasual",
    "Sandwiches": "FastCasual",
    "FoodTrucks": "FastCasual",
    "Vegan": "Health",
    "Vegetarian": "Health",
    "GlutenFree": "Health",
}

#: Cuisine family -> root.
CUISINE_FAMILY_PARENTS: dict[str, str] = {
    "Latin": "AnyCuisine",
    "European": "AnyCuisine",
    "Asian": "AnyCuisine",
    "MiddleEastern": "AnyCuisine",
    "American": "AnyCuisine",
    "FastCasual": "AnyCuisine",
    "Health": "AnyCuisine",
}

#: Price tiers are flat categories (no taxonomy above them).
PRICE_TIERS: tuple[str, ...] = ("CheapEats", "MidRange", "FineDining")

#: City -> region for the livesIn generalization.
CITY_REGIONS: dict[str, str] = {
    "Tokyo": "Asia-Pacific",
    "Osaka": "Asia-Pacific",
    "Seoul": "Asia-Pacific",
    "Singapore": "Asia-Pacific",
    "Sydney": "Asia-Pacific",
    "Bali": "Asia-Pacific",
    "NYC": "North-America",
    "Chicago": "North-America",
    "Toronto": "North-America",
    "Austin": "North-America",
    "Vancouver": "North-America",
    "Mexico-City": "North-America",
    "Paris": "Europe",
    "London": "Europe",
    "Berlin": "Europe",
    "Rome": "Europe",
    "Barcelona": "Europe",
    "Lisbon": "Europe",
    "Tel-Aviv": "Middle-East",
    "Istanbul": "Middle-East",
    "Dubai": "Middle-East",
    "Sao-Paulo": "South-America",
    "Buenos-Aires": "South-America",
    "Lima": "South-America",
}

#: Age-group buckets users may self-report.
AGE_GROUPS: tuple[str, ...] = ("18-24", "25-34", "35-49", "50-64", "65+")

#: Review topics TripAdvisor-style extraction would surface.
REVIEW_TOPICS: tuple[str, ...] = (
    "service",
    "food-quality",
    "ambiance",
    "price",
    "wait-time",
    "cleanliness",
    "portion-size",
    "location",
    "drinks",
    "dessert",
    "staff",
    "parking",
    "noise-level",
    "seating",
    "menu-variety",
)


def cuisine_taxonomy() -> Taxonomy:
    """The three-level cuisine taxonomy (leaf → family → AnyCuisine)."""
    taxonomy = Taxonomy()
    for leaf, family in CUISINE_PARENTS.items():
        taxonomy.add_edge(leaf, family)
    for family, root in CUISINE_FAMILY_PARENTS.items():
        taxonomy.add_edge(family, root)
    return taxonomy


def city_taxonomy() -> Taxonomy:
    """The two-level residence taxonomy (city → region)."""
    taxonomy = Taxonomy()
    for city, region in CITY_REGIONS.items():
        taxonomy.add_edge(city, region)
    return taxonomy


def leaf_cuisines() -> tuple[str, ...]:
    """All leaf cuisine categories, in stable order."""
    return tuple(CUISINE_PARENTS)


def cities() -> tuple[str, ...]:
    """All catalog cities, in stable order."""
    return tuple(CITY_REGIONS)
