"""Command-line interface: ``python -m repro <command>``.

Commands mirror the Fig. 1 pipeline:

* ``generate`` — synthesize a review dataset (ground truth) to JSON;
* ``derive``   — derive user profiles from a dataset (grouping-module input);
* ``select``   — run diverse user selection over a profile document,
  optionally with customization feedback, printing a JSON response;
* ``serve``    — start the prototype HTTP service on a profile document;
  with ``--data-dir`` the service write-ahead-logs every delta before
  acknowledging it and recovers snapshot + WAL on boot;
* ``store``    — inspect / replay / compact a ``--data-dir`` offline;
* ``report``   — regenerate EXPERIMENTS.md (``--jobs N`` parallelizes the
  engine-backed experiments);
* ``bench``    — benchmark suites: ``--suite selection`` times the greedy
  backends (eager/lazy/matrix) on the Fig. 5 sweep
  (``BENCH_selection.json``); ``--suite experiments`` times a fig3-style
  experiment end-to-end on the parallel engine at several job counts
  (``BENCH_experiments.json``); ``--suite scale`` drives the columnar
  construction + sharded/stochastic selection path to hundreds of
  thousands of users (``BENCH_scale.json``); ``--suite ingest`` measures
  durable delta throughput, recovery time and streaming-maintainer
  quality (``BENCH_ingest.json``).

Group keys on the command line use the ``property::bucket`` form, e.g.
``--must-have "avgRating Mexican::high"``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .core.customization import CustomizationFeedback
from .core.errors import PodiumError
from .core.groups import GroupKey
from .service.app import PodiumService, serve
from .service.config import DiversificationConfiguration


def _parse_group_key(text: str) -> GroupKey:
    prop, sep, bucket = text.rpartition("::")
    if not sep or not prop or not bucket:
        raise PodiumError(
            f"group key must look like 'property::bucket', got {text!r}"
        )
    return GroupKey(prop, bucket)


def _cmd_generate(args: argparse.Namespace) -> int:
    from .datasets.io import save_dataset
    from .datasets.synth import generate, tripadvisor_config, yelp_config

    presets = {"tripadvisor": tripadvisor_config, "yelp": yelp_config}
    config = presets[args.preset](n_users=args.users)
    dataset = generate(config, seed=args.seed)
    save_dataset(dataset, args.out)
    print(
        f"wrote {args.out}: {len(dataset.user_ids)} users, "
        f"{len(dataset.business_ids)} businesses, {len(dataset)} reviews"
    )
    return 0


def _cmd_derive(args: argparse.Namespace) -> int:
    from .datasets.derive import (
        build_repository,
        tripadvisor_derive_config,
        yelp_derive_config,
    )
    from .datasets.io import load_dataset, save_profiles

    presets = {
        "tripadvisor": tripadvisor_derive_config,
        "yelp": yelp_derive_config,
    }
    dataset = load_dataset(args.dataset)
    repository = build_repository(dataset, presets[args.preset]())
    save_profiles(repository, args.out)
    print(
        f"wrote {args.out}: {len(repository)} profiles, "
        f"{len(repository.property_labels)} properties, mean size "
        f"{repository.mean_profile_size():.1f}"
    )
    return 0


def _load_service(
    profiles_path: str | None,
    args: argparse.Namespace,
    store=None,
) -> PodiumService:
    from .datasets.io import load_profiles

    service = PodiumService(store=store)
    service.configurations.put(
        DiversificationConfiguration(
            name="cli",
            description="configuration assembled from CLI flags",
            budget=args.budget,
            weight_scheme=args.weights,
            coverage_scheme=args.coverage,
            bucketing_strategy=args.strategy,
            min_support=args.min_support,
        )
    )
    if profiles_path is not None:
        # Explicit --profiles starts a new epoch: with a store attached
        # this snapshots the fresh repository and truncates the WAL.
        service.load_repository(load_profiles(profiles_path))
    elif store is not None and len(store.repository):
        restored = service.restore_artifacts()
        print(
            f"recovered {len(store.repository)} users from {store.data_dir} "
            f"(wal_seq={store.last_seq}, replayed={store.replayed_records} "
            f"records in {store.replay_seconds:.3f}s, "
            f"restored configs: {restored or 'none'})",
            file=sys.stderr,
        )
    else:
        raise PodiumError(
            "no profiles: pass --profiles, or --data-dir pointing at a "
            "directory with recoverable state"
        )
    return service


def _cmd_select(args: argparse.Namespace) -> int:
    service = _load_service(args.profiles, args)
    feedback = CustomizationFeedback(
        must_have=frozenset(_parse_group_key(t) for t in args.must_have),
        must_not=frozenset(_parse_group_key(t) for t in args.must_not),
        priority=frozenset(_parse_group_key(t) for t in args.priority),
    )
    if feedback == CustomizationFeedback.none():
        feedback = None
    response = service.select(
        "cli",
        feedback=feedback,
        explain=args.explain,
        distribution_properties=tuple(args.distribution or ()),
    )
    if args.html:
        Path(args.html).write_text(service.explanation_page("cli"))
        print(f"wrote explanation page to {args.html}", file=sys.stderr)
    json.dump(response, sys.stdout, indent=1)
    print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    logging.basicConfig(
        level=getattr(logging, args.log_level.upper(), logging.INFO),
        format="%(asctime)s %(name)s %(message)s",
        stream=sys.stderr,
    )
    store = None
    if args.data_dir:
        from .storage import DurableRepositoryStore

        store = DurableRepositoryStore(
            args.data_dir,
            fsync=args.fsync,
            mmap_indexes=not args.eager_artifacts,
        )
    follower = None
    if args.follow:
        if args.workers >= 2:
            raise PodiumError(
                "--follow runs single-process: pass --workers 1 (the "
                "pre-fork pool does not forward the WAL tail, and a "
                "standby's read traffic is served by one process)"
            )
        if args.profiles:
            raise PodiumError(
                "--follow bootstraps its state from the primary; drop "
                "--profiles (a local --data-dir is still honoured for "
                "the standby's own durability)"
            )
        from .service.replication import WalFollower

        service = PodiumService(store=store)
        service.read_only = True
        follower = WalFollower(
            service, args.follow, poll_interval=args.poll_interval
        )
        service.follower = follower
        follower.start()
        print(
            f"following {args.follow} "
            f"(applied_seq={follower.applied_seq}, read-only until "
            f"POST /admin/promote)",
            file=sys.stderr,
        )
    else:
        service = _load_service(args.profiles, args, store=store)
    try:
        if args.workers >= 2:
            from .service.workers import serve_pool

            snapshot = serve_pool(
                service,
                host=args.host,
                port=args.port,
                workers=args.workers,
            )
        else:
            snapshot = serve(service, host=args.host, port=args.port)
    finally:
        if follower is not None:
            follower.stop()
        if store is not None:
            store.close()
    from .service.viz import render_metrics_text

    print(render_metrics_text(snapshot), file=sys.stderr)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .storage import DurableRepositoryStore, inspect_data_dir

    if args.action == "inspect":
        json.dump(inspect_data_dir(args.data_dir), sys.stdout, indent=1)
        print()
        return 0
    # compact / replay both perform a full recovery first.
    store = DurableRepositoryStore(args.data_dir, fsync=args.fsync)
    try:
        if args.action == "compact":
            store.compact()
        stats = store.stats()
        stats["replayed_records"] = store.replayed_records
        stats["replay_seconds"] = round(store.replay_seconds, 6)
        json.dump(stats, sys.stdout, indent=1)
        print()
        return 0
    finally:
        store.close()


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.suite == "experiments":
        return _bench_experiments(args)
    if args.suite == "scale":
        return _bench_scale(args)
    if args.suite == "ingest":
        return _bench_ingest(args)
    if args.suite == "serve":
        return _bench_serve(args)
    if args.suite == "constraints":
        return _bench_constraints(args)
    return _bench_selection(args)


def _bench_constraints(args: argparse.Namespace) -> int:
    from .experiments.constraints import (
        ConstraintsSetup,
        benchmark_constraints,
        constraints_report_failures,
    )

    defaults = ConstraintsSetup()
    setup = ConstraintsSetup(
        users=args.users,
        budget=(
            args.budget if args.budget is not None else defaults.budget
        ),
        seed=args.seed,
        jobs=args.jobs if args.jobs is not None else defaults.jobs,
    )
    report = benchmark_constraints(setup)
    out = args.out or "BENCH_constraints.json"
    Path(out).write_text(json.dumps(report, indent=1) + "\n")
    for row in report["rows"]:
        rate = row["floor_satisfaction_rate"]
        rate_note = f", floors {rate:.0%}" if rate is not None else ""
        print(
            f"{row['scenario']}: score {row['constrained_score']:.0f} "
            f"({row['price_of_fairness']:.3f}x of unconstrained"
            f"{rate_note}) in {row['constrained_seconds']:.3f}s "
            f"(exact {row['exact_seconds']:.3f}s)"
        )
    failures = constraints_report_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print(f"wrote {out}")
    return 0 if not failures else 1


def _bench_serve(args: argparse.Namespace) -> int:
    from .experiments.serve import (
        ServeBenchSetup,
        benchmark_serving,
        serve_report_failures,
    )

    defaults = ServeBenchSetup()
    setup = ServeBenchSetup(
        users=args.users,
        worker_counts=(
            _parse_sizes(args.workers_list)
            if args.workers_list
            else defaults.worker_counts
        ),
        duration_seconds=args.duration,
        client_processes=args.client_procs,
        client_threads=args.client_threads,
        delta_every=args.delta_every,
        rps_floor=args.rps_floor,
        seed=args.seed,
    )
    report = benchmark_serving(setup)
    out = args.out or "BENCH_serve.json"
    Path(out).write_text(json.dumps(report, indent=1) + "\n")
    for row in report["rows"]:
        spread = row["per_worker_select_share"]
        spread_note = (
            " spread=" + "/".join(f"{s:.0%}" for s in spread)
            if len(spread) > 1
            else ""
        )
        print(
            f"serve workers={row['workers']}: {row['requests']} reqs in "
            f"{row['seconds']:.1f}s = {row['requests_per_second']:.0f}/s "
            f"(p50 {row['select_p50_ms']:.1f}ms, "
            f"p99 {row['select_p99_ms']:.1f}ms, "
            f"deltas {row['deltas_acked']}{spread_note})"
        )
    rss = report.get("worker_rss")
    if rss:
        for row in rss["rows"]:
            mean = row["mean_worker_rss_kb"]
            mean_note = (
                f"{mean / 1024.0:.1f} MiB/worker" if mean else "RSS n/a"
            )
            print(
                f"serve boot {row['mode']} (workers={rss['workers']}, "
                f"|U|={rss['users']}): {row['boot_seconds']:.2f}s, "
                f"{mean_note}, "
                f"{row['mapped_artifact_indexes']} mapped index(es)"
            )
    for gate in report["gates"]:
        print(f"gate: {gate['name']}: {gate['status']} ({gate['detail']})")
    failures = serve_report_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print(f"wrote {out}")
    return 0 if not failures else 1


def _bench_ingest(args: argparse.Namespace) -> int:
    from .experiments.ingest import (
        IngestSetup,
        benchmark_ingest,
        ingest_report_failures,
    )

    defaults = IngestSetup()
    setup = IngestSetup(
        users=args.users,
        budget=args.budget if args.budget is not None else defaults.budget,
        seed=args.seed,
        throughput_deltas=args.deltas,
        churn_rounds=args.churn_rounds,
    )
    report = benchmark_ingest(setup)
    out = args.out or "BENCH_ingest.json"
    Path(out).write_text(json.dumps(report, indent=1) + "\n")
    for row in report["throughput"]:
        mode = "fsync" if row["fsync"] else "no-fsync"
        print(
            f"ingest [{mode}]: {row['deltas']} deltas in "
            f"{row['seconds']:.2f}s = {row['deltas_per_second']:.0f}/s"
        )
    for row in report["recovery"]:
        print(
            f"recovery: {row['wal_records']} WAL records replayed in "
            f"{row['replay_seconds']:.3f}s "
            f"({row['records_per_second']:.0f}/s)"
        )
    worst = min(r["quality_ratio"] for r in report["maintainer"])
    last = report["maintainer"][-1]
    print(
        f"maintainer: worst quality ratio {worst:.4f} over "
        f"{len(report['maintainer'])} churn rounds "
        f"(swaps={last['swaps']}, fills={last['fills']}, "
        f"drops={last['drops']}, resolves={last['resolves']}; "
        f"floor {report['quality_floor']})"
    )
    failures = ingest_report_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print(f"wrote {out}")
    return 0 if not failures else 1


def _parse_sizes(text: str) -> tuple[int, ...]:
    try:
        sizes = tuple(int(s) for s in text.split(",") if s)
    except ValueError:
        sizes = ()
    if not sizes or any(size <= 0 for size in sizes):
        raise PodiumError(
            f"--sizes must be a comma-separated list of positive "
            f"integers, got {text!r}"
        )
    return sizes


def _bench_scale(args: argparse.Namespace) -> int:
    from .experiments.scale import (
        ScaleSetup,
        benchmark_scale_path,
        scale_report_failures,
    )

    defaults = ScaleSetup()
    setup = ScaleSetup(
        user_sizes=(
            _parse_sizes(args.sizes) if args.sizes else defaults.user_sizes
        ),
        budget=args.budget if args.budget is not None else defaults.budget,
        seed=args.seed,
        shards=args.shards,
        jobs=args.jobs if args.jobs is not None else defaults.jobs,
        epsilon=args.epsilon,
        dict_cap=args.dict_cap,
        out_of_core=args.out_of_core,
        rss_cap_mb=args.rss_cap_mb,
        run_entries=(
            args.run_entries
            if args.run_entries is not None
            else defaults.run_entries
        ),
        workdir=args.workdir,
    )
    report = benchmark_scale_path(setup)
    out = args.out or "BENCH_scale.json"
    Path(out).write_text(json.dumps(report, indent=1) + "\n")
    for row in report["rows"]:
        ratios = ", ".join(
            f"{backend}={ratio:.4f}"
            for backend, ratio in row["quality_ratio"].items()
        )
        if row.get("mode") == "out_of_core":
            build_note = (
                f"external build {row['external_build_seconds']:.2f}s "
                f"({row['runs']} runs), mmap open "
                f"{row['open_seconds']:.2f}s"
            )
        else:
            speedup = row["columnar_speedup"]
            dict_note = (
                f", dict {row['dict_build_seconds']:.2f}s ({speedup:.1f}x)"
                if speedup is not None
                else ""
            )
            build_note = (
                f"columnar build "
                f"{row['columnar_build_seconds']:.2f}s{dict_note}"
            )
        print(
            f"|U|={row['users']}: gen {row['generate_seconds']:.2f}s, "
            f"{build_note}; "
            f"select matrix={row['select_seconds']['matrix']:.2f}s "
            f"sharded={row['select_seconds']['sharded']:.2f}s "
            f"stochastic={row['select_seconds']['stochastic']:.2f}s; "
            f"quality {ratios}; peak RSS {row['peak_rss_mb']:.0f} MiB"
        )
    failures = scale_report_failures(report)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print(f"wrote {out}")
    return 0 if not failures else 1


def _bench_experiments(args: argparse.Namespace) -> int:
    from .experiments.engine import benchmark_experiment_engine

    report = benchmark_experiment_engine(
        users=args.users,
        budget=args.budget if args.budget is not None else 8,
        repetitions=args.repetitions,
        seed=args.seed,
        jobs=args.jobs if args.jobs is not None else 4,
    )
    out = args.out or "BENCH_experiments.json"
    Path(out).write_text(json.dumps(report, indent=1) + "\n")
    print(
        f"build (shared, untimed): {report['build_seconds']:.2f}s; "
        f"cpu_count={report['cpu_count']}"
    )
    matches = True
    for row in report["rows"]:
        if row["mode"] == "serial-legacy":
            print(f"serial-legacy: {row['seconds']:.2f}s (baseline)")
            continue
        matches = matches and row["selections_match"] and row["table_matches"]
        flag = "ok" if row["selections_match"] and row["table_matches"] else "MISMATCH"
        print(
            f"engine jobs={row['jobs']}: {row['seconds']:.2f}s "
            f"({row['speedup_vs_legacy']:.1f}x) [{flag}]"
        )
    print(f"wrote {out}")
    return 0 if matches else 1


def _bench_selection(args: argparse.Namespace) -> int:
    from .experiments.scalability import (
        ScalabilitySetup,
        benchmark_index_native_stages,
        benchmark_selection_backends,
    )

    sizes = _parse_sizes(args.sizes or "500,1000,2000,4000")
    setup = ScalabilitySetup(
        budget=args.budget if args.budget is not None else 8,
        user_sizes=sizes,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    report = benchmark_selection_backends(setup)
    stages = benchmark_index_native_stages(setup)
    report["stages"] = stages
    out = args.out or "BENCH_selection.json"
    Path(out).write_text(json.dumps(report, indent=1) + "\n")
    for row in report["rows"]:
        timings = ", ".join(
            f"{backend}={row['seconds'][backend]:.4f}s"
            for backend in report["backends"]
        )
        speedup = row.get("speedup_matrix_vs_eager")
        extra = f", matrix speedup {speedup:.1f}x" if speedup else ""
        match = "ok" if row["selections_match"] else "MISMATCH"
        print(f"|U|={row['users']}: {timings}{extra} [{match}]")
    for row in stages["rows"]:
        parity = (
            "ok"
            if row["explanation_parity"] and row["customization_parity"]
            else "MISMATCH"
        )
        print(
            f"|U|={row['users']} stages (B={stages['budget']}): "
            f"explain {row['explanation_seconds']['python']:.4f}s -> "
            f"{row['explanation_seconds']['index']:.4f}s "
            f"({row['speedup_explanation']:.1f}x), "
            f"customize {row['customization_seconds']['eager']:.4f}s -> "
            f"{row['customization_seconds']['matrix']:.4f}s "
            f"({row['speedup_customization']:.1f}x) [{parity}]"
        )
    print(f"wrote {out}")
    ok = all(r["selections_match"] for r in report["rows"]) and all(
        r["explanation_parity"] and r["customization_parity"]
        for r in stages["rows"]
    )
    return 0 if ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import build_report

    report = build_report(fast=args.fast, jobs=args.jobs)
    Path(args.out).write_text(report)
    print(f"wrote {args.out}")
    return 0


def _add_selection_flags(
    parser: argparse.ArgumentParser, profiles_required: bool = True
) -> None:
    parser.add_argument(
        "--profiles",
        required=profiles_required,
        default=None,
        help="profile JSON path"
        + (
            ""
            if profiles_required
            else " (optional when --data-dir holds recoverable state)"
        ),
    )
    parser.add_argument("--budget", type=int, default=8)
    parser.add_argument(
        "--weights", default="LBS", choices=("Iden", "LBS", "EBS")
    )
    parser.add_argument(
        "--coverage", default="Single", choices=("Single", "Prop")
    )
    parser.add_argument("--strategy", default="jenks")
    parser.add_argument("--min-support", type=int, default=1)


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argparse tree for every CLI command."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesize a review dataset"
    )
    generate.add_argument(
        "--preset", default="tripadvisor", choices=("tripadvisor", "yelp")
    )
    generate.add_argument("--users", type=int, default=500)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=_cmd_generate)

    derive = commands.add_parser(
        "derive", help="derive profiles from a dataset"
    )
    derive.add_argument("--dataset", required=True)
    derive.add_argument(
        "--preset", default="tripadvisor", choices=("tripadvisor", "yelp")
    )
    derive.add_argument("--out", required=True)
    derive.set_defaults(handler=_cmd_derive)

    select = commands.add_parser("select", help="run diverse user selection")
    _add_selection_flags(select)
    select.add_argument(
        "--must-have", action="append", default=[], metavar="PROP::BUCKET"
    )
    select.add_argument(
        "--must-not", action="append", default=[], metavar="PROP::BUCKET"
    )
    select.add_argument(
        "--priority", action="append", default=[], metavar="PROP::BUCKET"
    )
    select.add_argument(
        "--distribution", action="append", metavar="PROPERTY",
        help="include a population-vs-subset distribution for PROPERTY",
    )
    select.add_argument("--explain", action="store_true")
    select.add_argument(
        "--html", metavar="PATH",
        help="also write the Fig. 2 explanation page as HTML to PATH",
    )
    select.set_defaults(handler=_cmd_select)

    server = commands.add_parser("serve", help="start the HTTP service")
    _add_selection_flags(server, profiles_required=False)
    server.add_argument("--host", default="127.0.0.1")
    server.add_argument("--port", type=int, default=8808)
    server.add_argument(
        "--data-dir", default=None,
        help="durable storage directory: deltas are write-ahead-logged "
        "before acknowledgment and the service recovers snapshot + WAL "
        "on boot (omit --profiles to boot from recovered state)",
    )
    server.add_argument(
        "--fsync", action=argparse.BooleanOptionalAction, default=True,
        help="fsync the WAL on every delta (--no-fsync trades OS-crash "
        "durability for throughput)",
    )
    server.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="per-request structured log verbosity",
    )
    server.add_argument(
        "--follow",
        default=None,
        metavar="URL",
        help="boot as a warm standby of the primary at URL: bootstrap "
        "its profiles + configurations, tail its WAL over HTTP and "
        "serve read traffic (writes answer 503 until POST "
        "/admin/promote); replication lag is exported under "
        "'replication' in /metrics",
    )
    server.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="seconds between WAL tail polls when following (default "
        "0.5)",
    )
    server.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_SERVE_WORKERS", "1") or "1"),
        help="serving processes: 1 (default) runs the in-process threaded "
        "server; >= 2 pre-forks that many worker processes sharing the "
        "warmed artifacts copy-on-write, with writes routed to a single "
        "writer (env REPRO_SERVE_WORKERS overrides the default)",
    )
    server.add_argument(
        "--eager-artifacts",
        action="store_true",
        default=bool(os.environ.get("REPRO_EAGER_ARTIFACTS")),
        help="load recovered snapshot indexes into private heap memory "
        "instead of memory-mapping the checkpoint (the default maps, so "
        "pre-forked workers share one page-cache copy of the CSR "
        "payload; this flag exists for the serve benchmark's "
        "mmap-vs-eager RSS comparison, env REPRO_EAGER_ARTIFACTS "
        "also enables it)",
    )
    server.set_defaults(handler=_cmd_serve)

    store = commands.add_parser(
        "store",
        help="durable data-directory tooling: 'inspect' summarizes the "
        "WAL and live snapshot read-only, 'replay' performs a full "
        "recovery and prints the resulting stats, 'compact' folds the "
        "WAL into a fresh snapshot and truncates it",
    )
    store.add_argument(
        "action", choices=("inspect", "replay", "compact")
    )
    store.add_argument("--data-dir", required=True)
    store.add_argument(
        "--fsync", action=argparse.BooleanOptionalAction, default=True
    )
    store.set_defaults(handler=_cmd_store)

    report = commands.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("--fast", action="store_true")
    report.add_argument("--out", default="EXPERIMENTS.md")
    report.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for engine-backed experiments (0 = all cores)",
    )
    report.set_defaults(handler=_cmd_report)

    bench = commands.add_parser(
        "bench",
        help="benchmark suites: 'selection' times the greedy backends on "
        "the Fig. 5 sweep (BENCH_selection.json); 'experiments' times a "
        "fig3-style experiment end-to-end on the parallel engine "
        "(BENCH_experiments.json); 'scale' drives columnar construction "
        "plus sharded/stochastic selection to 500k+ users "
        "(BENCH_scale.json); 'ingest' measures durable delta throughput "
        "with/without fsync, WAL recovery time and streaming-maintainer "
        "quality vs fresh greedy (BENCH_ingest.json); 'serve' load-tests "
        "the HTTP service across worker counts with a mixed "
        "/select + delta workload and gates on throughput and read "
        "scaling (BENCH_serve.json); 'constraints' measures the price "
        "of fairness of floor/ceiling and cluster-budgeted selection "
        "vs the unconstrained greedy and gates on a quality-ratio "
        "floor (BENCH_constraints.json)",
    )
    bench.add_argument(
        "--suite",
        default="selection",
        choices=(
            "selection",
            "experiments",
            "scale",
            "ingest",
            "serve",
            "constraints",
        ),
    )
    bench.add_argument(
        "--sizes", default=None,
        help="[selection/scale] comma-separated population sizes "
        "(defaults: 500,1000,2000,4000 / 100000,250000,500000)",
    )
    bench.add_argument(
        "--budget", type=int, default=None,
        help="selection budget (default: 8; scale suite: 50)",
    )
    bench.add_argument("--repetitions", type=int, default=3)
    bench.add_argument("--seed", type=int, default=3)
    bench.add_argument(
        "--users", type=int, default=2000,
        help="[experiments/ingest/constraints] population size",
    )
    bench.add_argument(
        "--deltas", type=int, default=300,
        help="[ingest] deltas per throughput run",
    )
    bench.add_argument(
        "--churn-rounds", type=int, default=12,
        help="[ingest] churn rounds of the maintainer quality sweep",
    )
    bench.add_argument(
        "--jobs", type=int, default=None,
        help="[experiments/scale/constraints] worker processes (engine "
        "cells / shard solves; default: 4; scale/constraints suites: 1)",
    )
    bench.add_argument(
        "--shards", type=int, default=4,
        help="[scale] shard count of the GreeDi backend",
    )
    bench.add_argument(
        "--epsilon", type=float, default=0.1,
        help="[scale] stochastic-greedy guarantee slack",
    )
    bench.add_argument(
        "--dict-cap", type=int, default=250_000,
        help="[scale] largest size at which the dict-based construction "
        "path is also timed for the speedup comparison",
    )
    bench.add_argument(
        "--out-of-core", action="store_true",
        help="[scale] run the disk-backed tier: spill-generated triple "
        "store, external-sort index build, mmap-opened checkpoint, and "
        "streaming sharded selection",
    )
    bench.add_argument(
        "--rss-cap-mb", type=float, default=None,
        help="[scale] fail the bench (nonzero exit) if any row's peak "
        "RSS — parent and reaped children combined — exceeds this "
        "many MiB",
    )
    bench.add_argument(
        "--run-entries", type=int, default=None,
        help="[scale --out-of-core] entries per sorted run of the "
        "external-sort build (default: 2097152)",
    )
    bench.add_argument(
        "--workdir", default=None,
        help="[scale --out-of-core] directory for spill files "
        "(default: system temp)",
    )
    bench.add_argument(
        "--workers-list", default=None,
        help="[serve] comma-separated worker counts to load-test "
        "(default: 1,2,4)",
    )
    bench.add_argument(
        "--duration", type=float, default=6.0,
        help="[serve] seconds of sustained load per worker count",
    )
    bench.add_argument(
        "--client-procs", type=int, default=2,
        help="[serve] load-generator processes",
    )
    bench.add_argument(
        "--client-threads", type=int, default=4,
        help="[serve] request threads per load-generator process",
    )
    bench.add_argument(
        "--delta-every", type=int, default=50,
        help="[serve] interleave one profile delta every N selects "
        "(0 disables writes)",
    )
    bench.add_argument(
        "--rps-floor", type=float, default=25.0,
        help="[serve] minimum acceptable read throughput (req/s) for "
        "every worker count",
    )
    bench.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_<suite>.json)",
    )
    bench.set_defaults(handler=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except PodiumError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
