"""Explanations of diversification results (paper §5, Def. 5.1).

Three complementary explanation types are produced:

* **Group explanation** — ``⟨label, wei(G), cov(G)⟩``: what the group is
  and how important it was to the selection.
* **User explanation** — the groups a selected user represents (why the
  user was picked).
* **Subset-group explanation** — ``⟨cov(G), |U ∩ G|⟩``: required versus
  actual coverage of a group by the whole subset.

:func:`explain_selection` assembles these into the payload behind the
prototype's explanation page (Fig. 2): per-user top-weight groups, the
fraction of top-weight groups covered, the full weighted group list with
covered flags, and per-property score distributions of population versus
subset.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from .greedy import SelectionResult
from .groups import GroupKey
from .instance import DiversificationInstance
from .weights import Weight


@dataclass(frozen=True)
class GroupExplanation:
    """Def. 5.1 group explanation: ``⟨l_G, wei(G), cov(G)⟩``."""

    key: GroupKey
    label: str
    weight: Weight
    coverage: int

    def as_tuple(self) -> tuple[str, Weight, int]:
        return (self.label, self.weight, self.coverage)


@dataclass(frozen=True)
class UserExplanation:
    """Def. 5.1 user explanation: the groups ``u`` represents."""

    user_id: str
    groups: tuple[GroupExplanation, ...]

    def top(self, k: int) -> tuple[GroupExplanation, ...]:
        """The user's ``k`` heaviest groups (what the UI's left pane shows)."""
        return tuple(
            sorted(self.groups, key=lambda g: (-g.weight, str(g.key)))[:k]
        )


@dataclass(frozen=True)
class SubsetGroupExplanation:
    """Def. 5.1 subset-group explanation: ``⟨cov(G), |U ∩ G|⟩``."""

    key: GroupKey
    label: str
    required: int
    actual: int

    @property
    def covered(self) -> bool:
        return self.actual >= self.required

    def as_tuple(self) -> tuple[int, int]:
        return (self.required, self.actual)


@dataclass(frozen=True)
class DistributionComparison:
    """Population-vs-subset score distribution for one property.

    This backs the right pane of Fig. 2: for each bucket of the property,
    the fraction of the population weight versus the subset weight that
    falls in it.
    """

    property_label: str
    bucket_labels: tuple[str, ...]
    population: tuple[float, ...]
    subset: tuple[float, ...]


@dataclass(frozen=True)
class SelectionExplanation:
    """Full explanation payload for a selection result."""

    group_explanations: tuple[GroupExplanation, ...]
    user_explanations: tuple[UserExplanation, ...]
    subset_group_explanations: tuple[SubsetGroupExplanation, ...]
    top_coverage_fraction: float
    distributions: tuple[DistributionComparison, ...] = field(default=())

    def for_user(self, user_id: str) -> UserExplanation:
        for ue in self.user_explanations:
            if ue.user_id == user_id:
                return ue
        raise KeyError(f"user {user_id!r} is not part of the selection")

    def covered(self) -> tuple[SubsetGroupExplanation, ...]:
        return tuple(e for e in self.subset_group_explanations if e.covered)

    def uncovered(self) -> tuple[SubsetGroupExplanation, ...]:
        return tuple(
            e for e in self.subset_group_explanations if not e.covered
        )


def explain_group(
    instance: DiversificationInstance, key: GroupKey
) -> GroupExplanation:
    """Build the Def. 5.1 explanation of a single group."""
    group = instance.groups.group(key)
    return GroupExplanation(
        key=key,
        label=group.label,
        weight=instance.wei[key],
        coverage=instance.cov[key],
    )


def explain_user(
    instance: DiversificationInstance, user_id: str
) -> UserExplanation:
    """Build the Def. 5.1 explanation of one selected user."""
    keys = sorted(instance.groups.groups_of(user_id), key=str)
    return UserExplanation(
        user_id=user_id,
        groups=tuple(explain_group(instance, k) for k in keys),
    )


def explain_subset_group(
    instance: DiversificationInstance,
    selected: Iterable[str],
    key: GroupKey,
) -> SubsetGroupExplanation:
    """Build the Def. 5.1 subset-group explanation ``⟨cov, |U ∩ G|⟩``."""
    group = instance.groups.group(key)
    selected_set = set(selected)
    return SubsetGroupExplanation(
        key=key,
        label=group.label,
        required=instance.cov[key],
        actual=len(group.members & selected_set),
    )


def compare_distributions(
    instance: DiversificationInstance,
    selected: Iterable[str],
    property_label: str,
) -> DistributionComparison:
    """Weight-share per bucket for population vs selected subset.

    Follows §8.2's group-bucket distribution construction:
    ``f_all(b) = wei(G_{p,b}) / Σ_b' wei(G_{p,b'})`` and the analogue for
    the subset restricted to each bucket's members.
    """
    selected_set = set(selected)
    buckets = instance.groups.buckets_of_property(property_label)
    buckets = sorted(
        buckets, key=lambda g: (g.bucket.lo if g.bucket else 0.0, g.label)
    )
    pop_weights = [float(instance.wei[g.key]) for g in buckets]
    sub_weights = [float(len(g.members & selected_set)) for g in buckets]
    pop_total = sum(pop_weights) or 1.0
    sub_total = sum(sub_weights) or 1.0
    return DistributionComparison(
        property_label=property_label,
        bucket_labels=tuple(
            g.bucket.label if g.bucket else g.label for g in buckets
        ),
        population=tuple(w / pop_total for w in pop_weights),
        subset=tuple(w / sub_total for w in sub_weights),
    )


def explain_selection(
    result: SelectionResult,
    top_k: int = 200,
    distribution_properties: Iterable[str] = (),
) -> SelectionExplanation:
    """Assemble the full explanation payload for ``result``.

    ``top_k`` bounds the "top-weight relevant groups" the coverage
    percentage is computed over, mirroring the middle pane of Fig. 2.
    """
    instance = result.instance
    selected = list(result.selected)

    by_weight = sorted(
        instance.groups.keys,
        key=lambda k: (-instance.wei[k], str(k)),
    )
    top_keys = by_weight[:top_k]

    subset_groups = tuple(
        explain_subset_group(instance, selected, key) for key in by_weight
    )
    covered_top = sum(
        1
        for key in top_keys
        if explain_subset_group(instance, selected, key).covered
    )
    top_fraction = covered_top / len(top_keys) if top_keys else 1.0

    return SelectionExplanation(
        group_explanations=tuple(
            explain_group(instance, key) for key in by_weight
        ),
        user_explanations=tuple(
            explain_user(instance, user_id) for user_id in selected
        ),
        subset_group_explanations=subset_groups,
        top_coverage_fraction=top_fraction,
        distributions=tuple(
            compare_distributions(instance, selected, p)
            for p in distribution_properties
        ),
    )
