"""Explanations of diversification results (paper §5, Def. 5.1).

Three complementary explanation types are produced:

* **Group explanation** — ``⟨label, wei(G), cov(G)⟩``: what the group is
  and how important it was to the selection.
* **User explanation** — the groups a selected user represents (why the
  user was picked).
* **Subset-group explanation** — ``⟨cov(G), |U ∩ G|⟩``: required versus
  actual coverage of a group by the whole subset.

:func:`explain_selection` assembles these into the payload behind the
prototype's explanation page (Fig. 2): per-user top-weight groups, the
fraction of top-weight groups covered, the full weighted group list with
covered flags, and per-property score distributions of population versus
subset.

Two implementations produce byte-identical payloads:

* ``method="index"`` (the default, :func:`explain_selection_index`)
  answers every membership question off the CSR
  :class:`~repro.core.index.InstanceIndex`: one ``group_hits`` segment
  sum yields all subset-group actuals and distribution subset counts,
  and user explanations are per-row CSR slices.  Only group *metadata*
  (labels, weights, coverage) is read from the dict-based instance —
  O(|G|) scalar lookups, never O(Σ_G |G|) member walks — so the path
  runs unchanged on a memory-mapped checkpoint index without
  materializing its lazy id sequence.
* ``method="python"`` is the dict-walking original, kept verbatim as
  the parity oracle (`tests/core/test_explanations.py`).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from .errors import PodiumError
from .greedy import SelectionResult
from .groups import GroupKey
from .index import InstanceIndex, instance_index
from .instance import DiversificationInstance
from .weights import Weight

#: Attribute under which the selection-independent explanation state
#: (sort orders + memoized group explanations) is cached on an instance.
_EXPLAIN_CACHE_ATTR = "_podium_explain_cache"


@dataclass(frozen=True)
class GroupExplanation:
    """Def. 5.1 group explanation: ``⟨l_G, wei(G), cov(G)⟩``."""

    key: GroupKey
    label: str
    weight: Weight
    coverage: int

    def as_tuple(self) -> tuple[str, Weight, int]:
        return (self.label, self.weight, self.coverage)


@dataclass(frozen=True)
class UserExplanation:
    """Def. 5.1 user explanation: the groups ``u`` represents."""

    user_id: str
    groups: tuple[GroupExplanation, ...]

    def top(self, k: int) -> tuple[GroupExplanation, ...]:
        """The user's ``k`` heaviest groups (what the UI's left pane shows)."""
        return tuple(
            sorted(self.groups, key=lambda g: (-g.weight, str(g.key)))[:k]
        )


@dataclass(frozen=True)
class SubsetGroupExplanation:
    """Def. 5.1 subset-group explanation: ``⟨cov(G), |U ∩ G|⟩``."""

    key: GroupKey
    label: str
    required: int
    actual: int

    @property
    def covered(self) -> bool:
        return self.actual >= self.required

    def as_tuple(self) -> tuple[int, int]:
        return (self.required, self.actual)


@dataclass(frozen=True)
class DistributionComparison:
    """Population-vs-subset score distribution for one property.

    This backs the right pane of Fig. 2: for each bucket of the property,
    the fraction of the population weight versus the subset weight that
    falls in it.
    """

    property_label: str
    bucket_labels: tuple[str, ...]
    population: tuple[float, ...]
    subset: tuple[float, ...]


@dataclass(frozen=True)
class SelectionExplanation:
    """Full explanation payload for a selection result."""

    group_explanations: tuple[GroupExplanation, ...]
    user_explanations: tuple[UserExplanation, ...]
    subset_group_explanations: tuple[SubsetGroupExplanation, ...]
    top_coverage_fraction: float
    distributions: tuple[DistributionComparison, ...] = field(default=())

    def for_user(self, user_id: str) -> UserExplanation:
        for ue in self.user_explanations:
            if ue.user_id == user_id:
                return ue
        raise KeyError(f"user {user_id!r} is not part of the selection")

    def covered(self) -> tuple[SubsetGroupExplanation, ...]:
        return tuple(e for e in self.subset_group_explanations if e.covered)

    def uncovered(self) -> tuple[SubsetGroupExplanation, ...]:
        return tuple(
            e for e in self.subset_group_explanations if not e.covered
        )


def explain_group(
    instance: DiversificationInstance, key: GroupKey
) -> GroupExplanation:
    """Build the Def. 5.1 explanation of a single group."""
    group = instance.groups.group(key)
    return GroupExplanation(
        key=key,
        label=group.label,
        weight=instance.wei[key],
        coverage=instance.cov[key],
    )


def explain_user(
    instance: DiversificationInstance, user_id: str
) -> UserExplanation:
    """Build the Def. 5.1 explanation of one selected user."""
    keys = sorted(instance.groups.groups_of(user_id), key=str)
    return UserExplanation(
        user_id=user_id,
        groups=tuple(explain_group(instance, k) for k in keys),
    )


def explain_subset_group(
    instance: DiversificationInstance,
    selected: Iterable[str],
    key: GroupKey,
) -> SubsetGroupExplanation:
    """Build the Def. 5.1 subset-group explanation ``⟨cov, |U ∩ G|⟩``."""
    group = instance.groups.group(key)
    selected_set = set(selected)
    return SubsetGroupExplanation(
        key=key,
        label=group.label,
        required=instance.cov[key],
        actual=len(group.members & selected_set),
    )


def compare_distributions(
    instance: DiversificationInstance,
    selected: Iterable[str],
    property_label: str,
) -> DistributionComparison:
    """Weight-share per bucket for population vs selected subset.

    Follows §8.2's group-bucket distribution construction:
    ``f_all(b) = wei(G_{p,b}) / Σ_b' wei(G_{p,b'})`` and the analogue for
    the subset restricted to each bucket's members.
    """
    selected_set = set(selected)
    buckets = instance.groups.buckets_of_property(property_label)
    buckets = sorted(
        buckets, key=lambda g: (g.bucket.lo if g.bucket else 0.0, g.label)
    )
    pop_weights = [float(instance.wei[g.key]) for g in buckets]
    sub_weights = [float(len(g.members & selected_set)) for g in buckets]
    pop_total = sum(pop_weights) or 1.0
    sub_total = sum(sub_weights) or 1.0
    return DistributionComparison(
        property_label=property_label,
        bucket_labels=tuple(
            g.bucket.label if g.bucket else g.label for g in buckets
        ),
        population=tuple(w / pop_total for w in pop_weights),
        subset=tuple(w / sub_total for w in sub_weights),
    )


def explain_selection(
    result: SelectionResult,
    top_k: int = 200,
    distribution_properties: Iterable[str] = (),
    method: str = "index",
) -> SelectionExplanation:
    """Assemble the full explanation payload for ``result``.

    ``top_k`` bounds the "top-weight relevant groups" the coverage
    percentage is computed over, mirroring the middle pane of Fig. 2.
    ``method="index"`` (default) answers membership questions off the
    cached CSR index; ``method="python"`` walks the dict structures —
    both produce byte-identical payloads.
    """
    if method == "index":
        return explain_selection_index(
            result, top_k=top_k,
            distribution_properties=distribution_properties,
        )
    if method != "python":
        raise PodiumError(
            f"unknown explanation method {method!r}; use 'index' or 'python'"
        )
    instance = result.instance
    selected = list(result.selected)

    by_weight = sorted(
        instance.groups.keys,
        key=lambda k: (-instance.wei[k], str(k)),
    )
    top_keys = by_weight[:top_k]

    subset_groups = tuple(
        explain_subset_group(instance, selected, key) for key in by_weight
    )
    covered_top = sum(
        1
        for key in top_keys
        if explain_subset_group(instance, selected, key).covered
    )
    top_fraction = covered_top / len(top_keys) if top_keys else 1.0

    return SelectionExplanation(
        group_explanations=tuple(
            explain_group(instance, key) for key in by_weight
        ),
        user_explanations=tuple(
            explain_user(instance, user_id) for user_id in selected
        ),
        subset_group_explanations=subset_groups,
        top_coverage_fraction=top_fraction,
        distributions=tuple(
            compare_distributions(instance, selected, p)
            for p in distribution_properties
        ),
    )


def explain_selection_index(
    result: SelectionResult,
    top_k: int = 200,
    distribution_properties: Iterable[str] = (),
    index: InstanceIndex | None = None,
) -> SelectionExplanation:
    """Index-native :func:`explain_selection` (byte-identical payload).

    One ``group_hits`` segment sum over the CSR incidence yields every
    subset-group actual, the top-coverage fraction *and* the subset side
    of every distribution comparison; user explanations are per-row CSR
    slices resolved through ``user_pos`` (which on a memory-mapped
    checkpoint decodes only the looked-up ids, never the full sequence).
    The dict-based instance supplies labels, weights and coverage — O(1)
    metadata per group — so no membership set is ever intersected in
    Python.  Weights are taken from ``instance.wei`` directly, keeping
    the path exact for EBS big-ints the int64 index refuses to encode.

    ``index`` overrides the instance's cached index — the serving path
    passes the checkpoint-mapped index here.
    """
    instance = result.instance
    if instance is None:
        raise PodiumError(
            "explain_selection requires a result carrying its instance"
        )
    idx = instance_index(instance) if index is None else index
    selected = list(result.selected)
    groups = instance.groups
    wei, cov = instance.wei, instance.cov

    hits = idx.selection_hits(selected)
    group_keys = idx.group_keys

    # Selection-independent per-group state — the weight-sorted order,
    # the sort-by-str(key) ranks and the memoized group-explanation
    # objects — is cached on the instance (same invalidation contract as
    # the cached index: drop when the group set mutates or the index is
    # swapped), so a serving process explaining many selections against
    # one artifact pays the O(|G| log |G|) sorts once.
    cached = instance.__dict__.get(_EXPLAIN_CACHE_ATTR)
    if (
        cached is not None
        and cached[0] == groups.version
        and cached[1] is idx
    ):
        _, _, by_weight, str_rank, labels, memo = cached
    else:
        by_weight = sorted(
            range(idx.n_groups),
            key=lambda g: (-wei[group_keys[g]], str(group_keys[g])),
        )
        # Rank of every dense group id under the sort-by-str(key) order
        # the per-user explanations use; computed once so each user's
        # CSR row is ordered by one small argsort instead of a per-user
        # key sort.  str(key) determines the key's fields, so the order
        # has no ties and matches the oracle's ``sorted(keys, key=str)``
        # exactly.
        str_order = sorted(
            range(idx.n_groups), key=lambda g: str(group_keys[g])
        )
        str_rank = np.empty(idx.n_groups, dtype=np.int64)
        str_rank[str_order] = np.arange(idx.n_groups, dtype=np.int64)
        labels = [None] * idx.n_groups
        memo = [None] * idx.n_groups
        object.__setattr__(
            instance,
            _EXPLAIN_CACHE_ATTR,
            (groups.version, idx, by_weight, str_rank, labels, memo),
        )

    def label_of(gid: int) -> str:
        cached = labels[gid]
        if cached is None:
            cached = groups.group(group_keys[gid]).label
            labels[gid] = cached
        return cached

    def group_explanation(gid: int) -> GroupExplanation:
        """Memoized Def. 5.1 group explanation, keyed by dense group id.

        The triple is user-independent, so one frozen object per group
        is shared between the group list and every user explanation —
        the oracle builds equal (``==``) copies instead.  Indexing by
        dense id keeps the hot per-membership lookups free of
        ``GroupKey`` hashing.
        """
        cached = memo[gid]
        if cached is None:
            key = group_keys[gid]
            cached = GroupExplanation(
                key=key,
                label=label_of(gid),
                weight=wei[key],
                coverage=cov[key],
            )
            memo[gid] = cached
        return cached

    top_gids = by_weight[:top_k]

    # idx.cov holds exactly instance.cov[key] per dense id (int64), so
    # requirements come off the array without re-hashing keys.
    required = idx.cov
    subset_groups = [
        SubsetGroupExplanation(
            key=group_keys[g],
            label=label_of(g),
            required=int(required[g]),
            actual=int(hits[g]),
        )
        for g in by_weight
    ]
    if top_gids:
        top = np.asarray(top_gids, dtype=np.int64)
        covered_top = int(np.count_nonzero(hits[top] >= required[top]))
        top_fraction = covered_top / len(top_gids)
    else:
        top_fraction = 1.0

    user_explanations = []
    for user_id in selected:
        pos = idx.user_pos.get(user_id)
        if pos is None:
            ordered = ()
        else:
            rows = np.asarray(idx.groups_of_row(int(pos)), dtype=np.int64)
            ordered = rows[np.argsort(str_rank[rows])]
        user_explanations.append(
            UserExplanation(
                user_id=user_id,
                groups=tuple(
                    group_explanation(int(g)) for g in ordered
                ),
            )
        )

    distributions = []
    for property_label in distribution_properties:
        buckets = sorted(
            groups.buckets_of_property(property_label),
            key=lambda g: (g.bucket.lo if g.bucket else 0.0, g.label),
        )
        pop_weights = [float(wei[g.key]) for g in buckets]
        sub_weights = [
            float(int(hits[idx.group_pos[g.key]])) for g in buckets
        ]
        pop_total = sum(pop_weights) or 1.0
        sub_total = sum(sub_weights) or 1.0
        distributions.append(
            DistributionComparison(
                property_label=property_label,
                bucket_labels=tuple(
                    g.bucket.label if g.bucket else g.label for g in buckets
                ),
                population=tuple(w / pop_total for w in pop_weights),
                subset=tuple(w / sub_total for w in sub_weights),
            )
        )

    return SelectionExplanation(
        group_explanations=tuple(
            group_explanation(g) for g in by_weight
        ),
        user_explanations=tuple(user_explanations),
        subset_group_explanations=tuple(subset_groups),
        top_coverage_fraction=top_fraction,
        distributions=tuple(distributions),
    )
