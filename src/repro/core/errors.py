"""Exception hierarchy for the Podium reproduction.

Every error raised by the library derives from :class:`PodiumError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class PodiumError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidScoreError(PodiumError, ValueError):
    """A property score fell outside the normalized ``[0, 1]`` range."""


class DuplicateUserError(PodiumError, ValueError):
    """A user id was inserted twice into a repository."""


class UnknownUserError(PodiumError, KeyError):
    """A user id was requested that is not present in the repository."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable
        return Exception.__str__(self)


class UnknownPropertyError(PodiumError, KeyError):
    """A property label was requested that no user in scope possesses."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class UnknownGroupError(PodiumError, KeyError):
    """A group key was requested that is not part of the group set."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class EmptyRepositoryError(PodiumError, ValueError):
    """An operation that needs at least one user ran on an empty repository."""


class InvalidDeltaError(PodiumError, ValueError):
    """A profile delta is self-inconsistent (duplicate or clashing ids).

    Distinct from :class:`UnknownUserError`: the delta itself is
    malformed regardless of the repository it would be applied to.
    """


class StorageError(PodiumError):
    """The durable storage layer hit an invalid state or corrupt file."""


class InvalidBudgetError(PodiumError, ValueError):
    """The selection budget ``B`` must be a positive integer."""


class InvalidBucketError(PodiumError, ValueError):
    """A bucket definition is malformed (empty, reversed, or out of range)."""


class InvalidInstanceError(PodiumError, ValueError):
    """A diversification instance is inconsistent (e.g. non-positive weight)."""


class InvalidFeedbackError(PodiumError, ValueError):
    """A customization feedback references groups outside the instance."""


class InfeasibleSelectionError(PodiumError, ValueError):
    """Customization filters left no eligible user to select from."""


class InvalidConstraintError(PodiumError, ValueError):
    """A constraint specification is malformed or references unknown groups."""


class InfeasibleConstraintError(InfeasibleSelectionError):
    """No selection of the given budget can satisfy the constraint floors.

    The message names the violated floor (or property), so callers can
    surface an actionable diagnosis instead of a generic failure.
    """


class DatasetError(PodiumError, ValueError):
    """A dataset file or generator configuration is invalid."""


class TaxonomyError(PodiumError, ValueError):
    """A taxonomy is malformed (cycle, unknown node, duplicate edge)."""


class ServiceError(PodiumError):
    """The prototype service received an invalid request."""
