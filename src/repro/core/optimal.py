"""Exhaustive optimal selection (paper §8.3, "Optimal Selection").

Iterates over every user subset of size ``B`` and returns the one with the
maximal ``score_G``.  Exponential in ``B`` — the paper only runs it for
tiny populations (e.g. 5 of 40 users, 443 s on their machine) to measure
how close the greedy approximation lands in practice (§8.4 reports .998).

A branch-and-bound pruning cut is applied on top of the naive iteration:
subsets are extended in a fixed user order and a partial subset is
abandoned when its score plus an optimistic bound on the remaining picks
cannot beat the incumbent.  The bound uses submodularity (each remaining
pick gains at most the best single-user marginal at the partial state), so
pruning never discards an optimal subset.
"""

from __future__ import annotations

from itertools import combinations

from .errors import InvalidBudgetError
from .greedy import SelectionResult, greedy_select
from .instance import DiversificationInstance
from .profiles import UserRepository
from .scoring import CoverageState, subset_score
from .weights import Weight


def optimal_select(
    repository: UserRepository,
    instance: DiversificationInstance,
    budget: int | None = None,
    candidates: list[str] | None = None,
    prune: bool = True,
) -> SelectionResult:
    """Return an optimal subset of size ≤ ``budget`` by exhaustive search.

    ``prune=False`` forces the textbook full enumeration (useful for
    validating the pruned search in tests); ``prune=True`` seeds the
    incumbent with the greedy solution and applies the submodular bound.
    """
    budget = instance.budget if budget is None else budget
    if budget < 1:
        raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
    pool = candidates if candidates is not None else repository.user_ids
    pool = [u for u in pool if u in repository]
    budget = min(budget, len(pool))
    if budget == 0:
        return SelectionResult((), 0, (), instance)

    if not prune:
        best_subset: tuple[str, ...] = ()
        best_score: Weight = -1
        for subset in combinations(sorted(pool), budget):
            score = subset_score(instance, subset)
            if score > best_score:
                best_subset, best_score = subset, score
        return _as_result(best_subset, instance)

    # Seed the incumbent with the greedy answer: a strong lower bound that
    # lets the search prune aggressively from the first branch.
    incumbent = greedy_select(repository, instance, budget, candidates=pool)
    best_subset = incumbent.selected
    best_score = incumbent.score

    ordered = sorted(pool)
    chosen: list[str] = []
    state_stack: list[CoverageState] = [CoverageState(instance)]

    def bound(state: CoverageState, start: int, slots: int) -> Weight:
        """Optimistic gain for ``slots`` more picks from ordered[start:]."""
        gains = sorted(
            (state.marginal_gain(ordered[i]) for i in range(start, len(ordered))),
            reverse=True,
        )
        return sum(gains[:slots])

    def search(start: int, slots: int) -> None:
        nonlocal best_subset, best_score
        state = state_stack[-1]
        if slots == 0:
            if state.score > best_score:
                best_subset, best_score = tuple(chosen), state.score
            return
        if len(ordered) - start < slots:
            return
        if state.score + bound(state, start, slots) <= best_score:
            return
        for i in range(start, len(ordered) - slots + 1):
            user_id = ordered[i]
            child = CoverageState(instance)
            for u in chosen:
                child.add(u)
            child.add(user_id)
            chosen.append(user_id)
            state_stack.append(child)
            search(i + 1, slots - 1)
            state_stack.pop()
            chosen.pop()

    search(0, budget)
    return _as_result(best_subset, instance)


def _as_result(
    subset: tuple[str, ...], instance: DiversificationInstance
) -> SelectionResult:
    """Replay ``subset`` through a coverage state to recover per-pick gains."""
    state = CoverageState(instance)
    gains = tuple(state.add(u) for u in subset)
    return SelectionResult(
        selected=subset, score=state.score, gains=gains, instance=instance
    )


def approximation_ratio(
    repository: UserRepository,
    instance: DiversificationInstance,
    budget: int | None = None,
) -> float:
    """Greedy score divided by optimal score (1.0 = greedy is optimal).

    This is the quantity §8.4 reports as ".998 approximation ratio of the
    optimal" for 5-of-40 selection.
    """
    greedy = greedy_select(repository, instance, budget)
    best = optimal_select(repository, instance, budget)
    if best.score == 0:
        return 1.0
    return float(greedy.score / best.score)
