"""Incremental repository updates (paper §9).

The paper contrasts Podium with manually-curated surveys: "our solution
applies to a given user repository as-is and may be easily executed
multiple times, e.g., to incorporate data updates".  Re-running the full
grouping module on every profile change is wasteful, so this module
applies a *profile delta* to an existing group set in place of a rebuild:

* bucket boundaries are kept frozen (they move slowly on large
  populations — re-bucket periodically, not per update);
* changed users are re-assigned to the frozen buckets;
* weights and coverage are re-materialized from the updated group sizes.

:func:`apply_delta` returns new objects; nothing is mutated, so an
in-flight selection keeps a consistent snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .errors import InvalidDeltaError, UnknownUserError
from .groups import Group, GroupingConfig, GroupSet
from .instance import DiversificationInstance
from .profiles import UserProfile, UserRepository
from .weights import CoverageScheme, LBSWeights, SingleCoverage, WeightScheme


@dataclass(frozen=True)
class ProfileDelta:
    """A batch of repository changes: upserts and removals.

    ``upserts`` replace a user's whole profile (or insert a new user);
    ``removals`` delete users.  A user id may appear in only one of the
    two collections.
    """

    upserts: tuple[UserProfile, ...] = ()
    removals: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        upsert_ids = {p.user_id for p in self.upserts}
        if len(upsert_ids) != len(self.upserts):
            counts: dict[str, int] = {}
            for profile in self.upserts:
                counts[profile.user_id] = counts.get(profile.user_id, 0) + 1
            dupes = sorted(u for u, c in counts.items() if c > 1)
            raise InvalidDeltaError(
                f"duplicate user ids in upserts: {dupes[:3]}"
            )
        clash = upsert_ids & self.removals
        if clash:
            raise InvalidDeltaError(
                f"user ids both upserted and removed: {sorted(clash)[:3]}"
            )

    @property
    def touched(self) -> frozenset[str]:
        """Every user id affected by this delta."""
        return frozenset(p.user_id for p in self.upserts) | self.removals


def profile_delta_to_dict(delta: ProfileDelta) -> dict[str, Any]:
    """Serialize a delta to the JSON interchange form.

    The same shape the service's ``/profiles/delta`` route accepts, so
    write-ahead-log records replay through one parser.
    """
    return {
        "upserts": {
            p.user_id: dict(p.scores) for p in delta.upserts
        },
        "removals": sorted(delta.removals),
    }


def profile_delta_from_dict(document: dict[str, Any]) -> ProfileDelta:
    """Rebuild a delta serialized by :func:`profile_delta_to_dict`."""
    upserts_raw = document.get("upserts") or {}
    if not isinstance(upserts_raw, dict):
        raise InvalidDeltaError(
            "delta field 'upserts' must map user ids to {property: score}"
        )
    removals_raw = document.get("removals") or []
    if not isinstance(removals_raw, (list, tuple)):
        raise InvalidDeltaError(
            "delta field 'removals' must be a list of user ids"
        )
    return ProfileDelta(
        upserts=tuple(
            UserProfile(str(user_id), scores)
            for user_id, scores in upserts_raw.items()
        ),
        removals=frozenset(str(u) for u in removals_raw),
    )


def apply_delta_to_repository(
    repository: UserRepository, delta: ProfileDelta
) -> UserRepository:
    """Return a new repository with the delta applied.

    Removals of unknown users raise; upserting an existing user replaces
    the profile wholesale (the derive pipeline recomputes aggregates).
    """
    for user_id in delta.removals:
        if user_id not in repository:
            raise UnknownUserError(f"cannot remove unknown user {user_id!r}")
    upserted = {p.user_id: p for p in delta.upserts}
    profiles = [
        upserted.pop(p.user_id, p)
        for p in repository
        if p.user_id not in delta.removals
    ]
    profiles.extend(upserted.values())
    return UserRepository(profiles)


def reassign_groups(
    groups: GroupSet,
    repository: UserRepository,
    delta: ProfileDelta,
) -> GroupSet:
    """Re-assign the delta's users to the existing (frozen) buckets.

    ``repository`` must already have the delta applied.  Group member
    sets shrink/grow; bucket boundaries, labels and keys are unchanged.
    Buckets that become empty are kept (weights of 0-size LBS groups are
    clamped by the instance builder below).
    """
    touched = delta.touched
    updated = GroupSet()
    for group in groups:
        members = set(group.members) - touched
        if group.bucket is not None:
            for user_id in touched - delta.removals:
                profile = repository.profile(user_id)
                label = group.key.property_label
                if label in profile and group.bucket.contains(
                    profile.score(label)
                ):
                    members.add(user_id)
        updated.add(
            Group(group.key, frozenset(members), group.bucket, group.label)
        )
    return updated


def rebuild_instance(
    groups: GroupSet,
    repository: UserRepository,
    budget: int,
    weight_scheme: WeightScheme | None = None,
    coverage_scheme: CoverageScheme | None = None,
) -> DiversificationInstance:
    """Re-materialize weights/coverage on updated groups.

    Empty groups get a floor weight of 1 so the instance stays valid;
    they can never be covered and never attract the greedy (no members),
    so the floor is behaviour-neutral.
    """
    weight_scheme = weight_scheme or LBSWeights()
    coverage_scheme = coverage_scheme or SingleCoverage()
    population = max(len(repository), 1)
    wei = weight_scheme.weights(groups, budget, population)
    wei = {key: (value if value > 0 else 1) for key, value in wei.items()}
    cov = coverage_scheme.coverage(groups, budget, population)
    return DiversificationInstance(
        groups=groups,
        wei=wei,
        cov=cov,
        budget=budget,
        population_size=population,
    )


@dataclass
class IncrementalPodium:
    """Convenience wrapper holding (repository, groups, instance) in sync.

    ``update(delta)`` applies a batch and refreshes all three snapshots;
    ``rebucket()`` forces the periodic full grouping-module run.

    Bucket boundaries are frozen across updates and drift as the
    population changes, so a deterministic *rebucket trigger policy*
    bounds the drift: when the cumulative number of touched users since
    the last full grouping run reaches ``rebucket_threshold`` as a
    fraction of the current population, :meth:`update` re-runs the
    grouping module (with ``grouping``, the config reused by every
    triggered run) before returning.  The policy depends only on the
    delta sequence — no clocks, no randomness — so replaying the same
    deltas always rebuilds at the same points.  ``rebucket_threshold=None``
    (the default) disables the trigger and preserves the manual-only
    behaviour.
    """

    repository: UserRepository
    groups: GroupSet
    budget: int
    weight_scheme: WeightScheme = field(default_factory=LBSWeights)
    coverage_scheme: CoverageScheme = field(default_factory=SingleCoverage)
    rebucket_threshold: float | None = None
    grouping: GroupingConfig | None = None

    def __post_init__(self) -> None:
        if self.rebucket_threshold is not None and self.rebucket_threshold <= 0:
            raise InvalidDeltaError(
                f"rebucket_threshold must be positive, "
                f"got {self.rebucket_threshold}"
            )
        self.touched_since_rebucket = 0
        self.rebucket_count = 0
        self.instance = rebuild_instance(
            self.groups,
            self.repository,
            self.budget,
            self.weight_scheme,
            self.coverage_scheme,
        )

    def update(self, delta: ProfileDelta) -> None:
        """Apply a profile delta incrementally (frozen buckets).

        May end with a full grouping-module run when the touched-users
        fraction crosses :attr:`rebucket_threshold`.
        """
        self.repository = apply_delta_to_repository(self.repository, delta)
        self.groups = reassign_groups(self.groups, self.repository, delta)
        self.touched_since_rebucket += len(delta.touched)
        if self._rebucket_due():
            self.rebucket(self.grouping)
            return
        self.instance = rebuild_instance(
            self.groups,
            self.repository,
            self.budget,
            self.weight_scheme,
            self.coverage_scheme,
        )

    def _rebucket_due(self) -> bool:
        if self.rebucket_threshold is None:
            return False
        population = max(len(self.repository), 1)
        return self.touched_since_rebucket >= self.rebucket_threshold * population

    def rebucket(self, grouping=None) -> None:
        """Run the full grouping module again (periodic maintenance)."""
        from .groups import build_simple_groups

        self.groups = build_simple_groups(self.repository, grouping)
        self.touched_since_rebucket = 0
        self.rebucket_count += 1
        self.instance = rebuild_instance(
            self.groups,
            self.repository,
            self.budget,
            self.weight_scheme,
            self.coverage_scheme,
        )
