"""Proportionate allocation (paper Def. 2.1) and its infeasibility.

A user subset ``U`` is a *proportionate allocation* of the groups ``G``
when ``|g ∩ U| / |U| = |g| / |U_all|`` for every group — the stratified-
sampling ideal.  The paper's §2 argument is that in high-dimensional
repositories with many overlapping groups such subsets essentially never
exist, which motivates the relaxed coverage objective.  This module
makes both the definition and the argument executable: an exact checker,
a per-group deviation report, and a search helper that demonstrates the
infeasibility on real group sets.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from itertools import combinations

from .errors import InvalidInstanceError
from .groups import GroupKey, GroupSet


@dataclass(frozen=True)
class AllocationReport:
    """Per-group proportionality diagnostics for one subset."""

    subset_size: int
    population_size: int
    #: group key -> (subset share, population share)
    shares: dict[GroupKey, tuple[float, float]]
    tolerance: float

    @property
    def is_proportionate(self) -> bool:
        return all(
            abs(sub - pop) <= self.tolerance
            for sub, pop in self.shares.values()
        )

    def worst_gap(self) -> float:
        """Largest absolute share deviation across groups."""
        return max(
            (abs(sub - pop) for sub, pop in self.shares.values()),
            default=0.0,
        )

    def under_represented(self) -> list[GroupKey]:
        """Groups whose subset share falls short beyond the tolerance."""
        return [
            key
            for key, (sub, pop) in self.shares.items()
            if pop - sub > self.tolerance
        ]


def allocation_report(
    groups: GroupSet,
    subset: Iterable[str],
    population_size: int,
    tolerance: float = 1e-9,
) -> AllocationReport:
    """Compute every group's subset vs population share (Def. 2.1)."""
    if population_size < 1:
        raise InvalidInstanceError(
            f"population size must be >= 1, got {population_size}"
        )
    selected = set(subset)
    if not selected:
        raise InvalidInstanceError("subset must be non-empty")
    shares = {
        group.key: (
            len(group.members & selected) / len(selected),
            group.size / population_size,
        )
        for group in groups
    }
    return AllocationReport(
        subset_size=len(selected),
        population_size=population_size,
        shares=shares,
        tolerance=tolerance,
    )


def is_proportionate_allocation(
    groups: GroupSet,
    subset: Iterable[str],
    population_size: int,
    tolerance: float = 1e-9,
) -> bool:
    """Exact Def. 2.1 check (with a float tolerance on the shares)."""
    return allocation_report(
        groups, subset, population_size, tolerance
    ).is_proportionate


def proportionate_subset_exists(
    groups: GroupSet,
    population: Iterable[str],
    subset_size: int,
    tolerance: float = 1e-9,
    max_candidates: int = 200_000,
) -> bool:
    """Exhaustively search for a proportionate subset of the given size.

    Intended for the §2 infeasibility demonstration on small populations;
    raises when the search space exceeds ``max_candidates`` (at which
    point exhaustive certification is off the table — the paper's point).
    """
    users = sorted(set(population))
    if subset_size < 1 or subset_size > len(users):
        return False
    from math import comb

    if comb(len(users), subset_size) > max_candidates:
        raise InvalidInstanceError(
            f"search space C({len(users)}, {subset_size}) exceeds "
            f"{max_candidates}; exhaustive certification is infeasible"
        )
    for candidate in combinations(users, subset_size):
        if is_proportionate_allocation(
            groups, candidate, len(users), tolerance
        ):
            return True
    return False
