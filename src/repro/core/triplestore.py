"""On-disk ``(user, property, score)`` triple store — out-of-core input.

The columnar pipeline's in-RAM input is :class:`ColumnarProfiles`: three
parallel numpy columns plus a user-id array.  At 5–10M users those
columns are still only a few hundred megabytes, but every *producer*
(the synthetic generator) and *consumer* (the index builder) of the
in-RAM form concatenates, sorts and copies them several times over —
that transient footprint is what keeps the scale bench under 1M users.

This module is the disk-backed twin: each column lives in its own raw
little-endian array file next to a small JSON manifest recording dtypes,
entry counts and per-column CRC32 checksums.  Producers append
fixed-size chunks through :class:`TripleStoreWriter` (checksums are
accumulated incrementally, so finalizing never re-reads the data);
consumers memory-map the columns read-only through :class:`TripleStore`
and stream them in bounded chunks.  User ids are *not* materialized: the
manifest stores either a ``pattern`` spec (prefix + zero-pad width, the
synthetic generator's ``u0000042`` scheme) from which any id can be
synthesized on demand, or a fixed-width unicode array file for
migrated populations.

``repro store inspect`` reports these manifests (entry counts, dtypes,
checksum status) alongside WAL/snapshot state — see
:func:`inspect_triple_store` / :func:`find_triple_stores`.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from .errors import DatasetError
from .index import id_dtype

TRIPLES_FORMAT = "podium-triples-v1"
TRIPLES_VERSION = 1

#: Manifest file name; its presence is what marks a directory as a
#: triple store for discovery (:func:`find_triple_stores`).
MANIFEST_NAME = "triples.json"

#: Column names every store carries, in canonical order.
COLUMN_NAMES = ("user_col", "prop_col", "score_col")

#: Chunk size (bytes) for streaming checksum verification.
_VERIFY_CHUNK = 1 << 22


def _little_endian(dtype: np.dtype) -> np.dtype:
    """Force an explicit little-endian byte order so files are portable."""
    dtype = np.dtype(dtype)
    if dtype.byteorder == ">":
        raise DatasetError("triple stores are little-endian only")
    return dtype.newbyteorder("<")


@dataclass(frozen=True)
class _ColumnSpec:
    file: str
    dtype: np.dtype
    count: int
    crc32: int


class TripleStoreWriter:
    """Append-only writer spilling triple columns to a directory.

    Columns are independent append streams (the generator writes
    ``user_col``/``prop_col`` in its first pass and ``score_col`` in its
    second), each checksummed as it is written.  :meth:`finalize`
    validates that the three columns are parallel and writes the
    manifest; the directory is not a valid store before that.
    """

    def __init__(
        self,
        directory: str | Path,
        n_users: int,
        property_labels: tuple[str, ...],
        user_ids: np.ndarray | None = None,
        id_prefix: str = "u",
        id_width: int | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if n_users < 0:
            raise DatasetError(f"n_users must be >= 0, got {n_users}")
        self.n_users = n_users
        self.property_labels = tuple(str(p) for p in property_labels)
        self._dtypes = {
            "user_col": _little_endian(id_dtype(max(n_users, 1))),
            "prop_col": _little_endian(
                id_dtype(max(len(self.property_labels), 1))
            ),
            "score_col": _little_endian(np.float64),
        }
        self._counts = dict.fromkeys(COLUMN_NAMES, 0)
        self._crcs = dict.fromkeys(COLUMN_NAMES, 0)
        self._handles = {
            name: open(self.directory / f"{name}.bin", "wb")
            for name in COLUMN_NAMES
        }
        self._user_ids = user_ids
        if user_ids is not None:
            self._id_spec: dict[str, Any] = {"kind": "array"}
        else:
            width = (
                id_width
                if id_width is not None
                else max(6, len(str(max(n_users - 1, 0))))
            )
            self._id_spec = {
                "kind": "pattern",
                "prefix": id_prefix,
                "width": width,
            }
        self._finalized = False

    def append(self, column: str, chunk: np.ndarray) -> None:
        """Append one chunk to ``column``, casting to the column dtype."""
        if self._finalized:
            raise DatasetError("triple store writer already finalized")
        if column not in COLUMN_NAMES:
            raise DatasetError(f"unknown triple column {column!r}")
        data = np.ascontiguousarray(chunk, dtype=self._dtypes[column])
        raw = data.tobytes()
        self._handles[column].write(raw)
        self._crcs[column] = zlib.crc32(raw, self._crcs[column])
        self._counts[column] += len(data)

    def column_dtype(self, column: str) -> np.dtype:
        """The on-disk dtype a column's chunks are cast to."""
        return self._dtypes[column]

    def count(self, column: str) -> int:
        """Entries appended to ``column`` so far."""
        return self._counts[column]

    def flush(self) -> None:
        """Flush the column files so already-appended data is readable.

        The generator's two-pass score stream relies on this: after the
        first pass it memory-maps the (complete) ``prop_col.bin`` to know
        which entries are boolean while ``score_col`` is still open.
        """
        for handle in self._handles.values():
            handle.flush()

    def column_path(self, column: str) -> Path:
        return self.directory / f"{column}.bin"

    def finalize(self) -> "TripleStore":
        """Close the column files, write the manifest, open the store."""
        if self._finalized:
            raise DatasetError("triple store writer already finalized")
        self._finalized = True
        for handle in self._handles.values():
            handle.close()
        counts = set(self._counts.values())
        if len(counts) != 1:
            raise DatasetError(
                f"triple columns are not parallel: {self._counts}"
            )
        manifest: dict[str, Any] = {
            "format": TRIPLES_FORMAT,
            "format_version": TRIPLES_VERSION,
            "n_users": self.n_users,
            "n_entries": self._counts["user_col"],
            "property_labels": list(self.property_labels),
            "user_ids": dict(self._id_spec),
            "columns": {
                name: {
                    "file": f"{name}.bin",
                    "dtype": self._dtypes[name].str,
                    "count": self._counts[name],
                    "crc32": self._crcs[name],
                }
                for name in COLUMN_NAMES
            },
        }
        if self._user_ids is not None:
            ids = np.asarray(self._user_ids, dtype=np.str_)
            ids = np.ascontiguousarray(ids, dtype=_little_endian(ids.dtype))
            if len(ids) != self.n_users:
                raise DatasetError(
                    f"user_ids has {len(ids)} entries, expected {self.n_users}"
                )
            raw = ids.tobytes()
            (self.directory / "user_ids.bin").write_bytes(raw)
            manifest["user_ids"].update(
                {
                    "file": "user_ids.bin",
                    "dtype": ids.dtype.str,
                    "count": len(ids),
                    "crc32": zlib.crc32(raw) & 0xFFFFFFFF,
                }
            )
        (self.directory / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=1) + "\n"
        )
        return TripleStore.open(self.directory)


class TripleStore:
    """Read-only, memory-mapped view of a spilled triple-column set."""

    def __init__(self, directory: Path, manifest: dict[str, Any]) -> None:
        self.directory = directory
        self.manifest = manifest

    @classmethod
    def open(cls, directory: str | Path) -> "TripleStore":
        directory = Path(directory)
        path = directory / MANIFEST_NAME
        if not path.is_file():
            raise DatasetError(f"{directory} has no {MANIFEST_NAME} manifest")
        try:
            manifest = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise DatasetError(
                f"triple-store manifest {path} is not valid JSON: {exc}"
            ) from exc
        if manifest.get("format") != TRIPLES_FORMAT:
            raise DatasetError(
                f"expected format {TRIPLES_FORMAT!r}, "
                f"got {manifest.get('format')!r}"
            )
        version = manifest.get("format_version")
        if not isinstance(version, int) or version > TRIPLES_VERSION:
            raise DatasetError(
                f"triple-store format_version {version!r} is newer than "
                f"this reader (supports <= {TRIPLES_VERSION})"
            )
        return cls(directory, manifest)

    # -- shape -------------------------------------------------------------

    @property
    def n_users(self) -> int:
        return int(self.manifest["n_users"])

    @property
    def n_entries(self) -> int:
        return int(self.manifest["n_entries"])

    @property
    def property_labels(self) -> tuple[str, ...]:
        return tuple(self.manifest["property_labels"])

    # -- columns -----------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """Memory-map one triple column read-only (no heap copy)."""
        spec = self.manifest["columns"].get(name)
        if spec is None:
            raise DatasetError(f"unknown triple column {name!r}")
        dtype = np.dtype(spec["dtype"])
        count = int(spec["count"])
        if count == 0:
            return np.empty(0, dtype=dtype)
        return np.memmap(
            self.directory / spec["file"], mode="r", dtype=dtype, shape=(count,)
        )

    def iter_entries(
        self, chunk_entries: int = 1 << 20
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield parallel ``(user, prop, score)`` slices of bounded size."""
        user = self.column("user_col")
        prop = self.column("prop_col")
        score = self.column("score_col")
        for lo in range(0, self.n_entries, chunk_entries):
            hi = min(lo + chunk_entries, self.n_entries)
            yield user[lo:hi], prop[lo:hi], score[lo:hi]

    # -- user ids ----------------------------------------------------------

    @property
    def id_spec(self) -> dict[str, Any]:
        return self.manifest["user_ids"]

    @property
    def has_pattern_ids(self) -> bool:
        return self.id_spec.get("kind") == "pattern"

    @property
    def id_width(self) -> int:
        """Characters per user id (pattern: prefix + zero-padded digits)."""
        spec = self.id_spec
        if self.has_pattern_ids:
            return len(spec["prefix"]) + int(spec["width"])
        return np.dtype(spec["dtype"]).itemsize // 4

    def user_id_strings(self, rows: np.ndarray) -> np.ndarray:
        """Fixed-width unicode ids of the given user rows.

        Pattern stores synthesize the strings (no id file exists at all);
        array stores gather from the mmap'd id file.  Costs
        ``O(len(rows))`` — callers stream row chunks, never all users.
        """
        rows = np.asarray(rows)
        spec = self.id_spec
        if self.has_pattern_ids:
            ids = np.char.add(
                spec["prefix"],
                np.char.zfill(rows.astype(np.int64).astype(str), int(spec["width"])),
            )
            return ids.astype(f"<U{self.id_width}")
        return np.asarray(self._user_id_array()[rows])

    def _user_id_array(self) -> np.ndarray:
        spec = self.id_spec
        if self.has_pattern_ids:
            raise DatasetError("pattern stores materialize no id array")
        dtype = np.dtype(spec["dtype"])
        count = int(spec["count"])
        if count == 0:
            return np.empty(0, dtype=dtype)
        return np.memmap(
            self.directory / spec["file"], mode="r", dtype=dtype, shape=(count,)
        )

    # -- integrity ---------------------------------------------------------

    def verify_checksums(self) -> dict[str, bool]:
        """Recompute every column CRC32 with bounded-memory file reads."""
        results: dict[str, bool] = {}
        specs = dict(self.manifest["columns"])
        if not self.has_pattern_ids:
            specs["user_ids"] = self.id_spec
        for name, spec in specs.items():
            crc = 0
            with open(self.directory / spec["file"], "rb") as handle:
                while chunk := handle.read(_VERIFY_CHUNK):
                    crc = zlib.crc32(chunk, crc)
            results[name] = (crc & 0xFFFFFFFF) == int(spec["crc32"])
        return results

    # -- conversion --------------------------------------------------------

    def to_columnar(self):
        """Materialize the in-RAM :class:`ColumnarProfiles` twin.

        This deliberately reverses the spill — it loads every column (and
        every user id) into private memory, so it is for parity tests and
        small migrations only, never the out-of-core hot path.
        """
        from .columnar import ColumnarProfiles

        if self.has_pattern_ids:
            ids = self.user_id_strings(np.arange(self.n_users))
        else:
            ids = np.asarray(self._user_id_array())
        return ColumnarProfiles(
            user_ids=ids.astype(object),
            property_labels=self.property_labels,
            user_col=np.asarray(self.column("user_col"), dtype=np.int64),
            prop_col=np.asarray(self.column("prop_col"), dtype=np.int64),
            score_col=np.asarray(self.column("score_col"), dtype=np.float64),
        )


def write_columns(
    profiles, directory: str | Path, chunk_entries: int = 1 << 20
) -> TripleStore:
    """Spill an in-RAM :class:`ColumnarProfiles` into a triple store.

    The migration path for populations that already fit in memory;
    column-native producers (the synthetic generator's spill mode) write
    through :class:`TripleStoreWriter` directly instead.
    """
    writer = TripleStoreWriter(
        directory,
        n_users=profiles.n_users,
        property_labels=profiles.property_labels,
        user_ids=np.asarray(profiles.user_ids, dtype=np.str_),
    )
    m = profiles.n_entries
    for lo in range(0, m, chunk_entries):
        hi = min(lo + chunk_entries, m)
        writer.append("user_col", profiles.user_col[lo:hi])
        writer.append("prop_col", profiles.prop_col[lo:hi])
        writer.append("score_col", profiles.score_col[lo:hi])
    if m == 0:
        pass  # manifest still records the (empty) parallel columns
    return writer.finalize()


def inspect_triple_store(
    directory: str | Path, verify: bool = True
) -> dict[str, Any]:
    """One-store summary for ``repro store inspect`` (read-only).

    Malformed manifests are reported as ``{"path", "error"}`` instead of
    raising — an inspection tool must describe a broken directory, not
    crash on it.
    """
    directory = Path(directory)
    try:
        store = TripleStore.open(directory)
    except DatasetError as exc:
        return {"path": str(directory), "error": str(exc)}
    summary: dict[str, Any] = {
        "path": str(directory),
        "format": store.manifest["format"],
        "format_version": store.manifest["format_version"],
        "n_users": store.n_users,
        "n_entries": store.n_entries,
        "n_properties": len(store.property_labels),
        "user_ids": (
            f"pattern({store.id_spec['prefix']}, width={store.id_spec['width']})"
            if store.has_pattern_ids
            else f"array({store.id_spec['dtype']})"
        ),
        "columns": {
            name: {"dtype": spec["dtype"], "count": spec["count"]}
            for name, spec in store.manifest["columns"].items()
        },
    }
    if verify:
        try:
            checks = store.verify_checksums()
        except OSError as exc:
            summary["checksums"] = f"error: {exc}"
        else:
            bad = sorted(name for name, ok in checks.items() if not ok)
            summary["checksums"] = (
                "ok" if not bad else f"mismatch: {', '.join(bad)}"
            )
    else:
        summary["checksums"] = "skipped"
    return summary


def find_triple_stores(root: str | Path) -> list[Path]:
    """Triple-store directories at ``root`` or one level below it."""
    root = Path(root)
    found: list[Path] = []
    if (root / MANIFEST_NAME).is_file():
        found.append(root)
    if root.is_dir():
        for child in sorted(root.iterdir()):
            if child.is_dir() and (child / MANIFEST_NAME).is_file():
                found.append(child)
    return found
