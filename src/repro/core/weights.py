"""Group weight and coverage functions (paper Defs. 3.6 and 3.7).

Weights prioritize groups; coverage sizes say how many representatives a
group needs before it counts as covered.  Both are materialized as plain
dictionaries keyed by :class:`~repro.core.groups.GroupKey` when a
diversification instance is built, so the selection algorithms never call
back into a scheme object.

The three paper weight schemes:

* **Iden** — ``wei(G) = 1``: maximizes the *number* of covered groups.
* **LBS** — ``wei(G) = |G|``: group importance linear in size; roughly
  maximizes groups represented per selected user.
* **EBS** — ``wei(G) = (B + 1)^ord(G)`` with ``ord`` ranking groups from
  smallest to largest: covering a larger group always dominates covering
  any combination of smaller ones.  Weights are exact Python integers, so
  the enforcement holds without floating-point loss even for thousands of
  groups.

The two paper coverage schemes:

* **Single** — ``cov(G) = 1``.
* **Prop** — ``cov(G) = max(⌊B · |G| / |U|⌋, 1)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .errors import InvalidInstanceError
from .groups import GroupKey, GroupSet

Weight = int | float
WeightMap = dict[GroupKey, Weight]
CoverageMap = dict[GroupKey, int]


def _check_context(budget: int, population_size: int) -> None:
    if budget < 1:
        raise InvalidInstanceError(f"budget must be >= 1, got {budget}")
    if population_size < 1:
        raise InvalidInstanceError(
            f"population size must be >= 1, got {population_size}"
        )


class WeightScheme(ABC):
    """Strategy producing ``wei : G -> R+`` for a concrete group set."""

    #: Short name used in explanations, configs and experiment reports.
    name: str = ""

    @abstractmethod
    def weights(
        self, groups: GroupSet, budget: int, population_size: int
    ) -> WeightMap:
        """Return the weight of every group in ``groups``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class IdenWeights(WeightScheme):
    """Identical Group Importance: every group weighs 1."""

    name = "Iden"

    def weights(
        self, groups: GroupSet, budget: int, population_size: int
    ) -> WeightMap:
        _check_context(budget, population_size)
        return {group.key: 1 for group in groups}


class LBSWeights(WeightScheme):
    """Group Importance Linearly By Size: ``wei(G) = |G|``."""

    name = "LBS"

    def weights(
        self, groups: GroupSet, budget: int, population_size: int
    ) -> WeightMap:
        _check_context(budget, population_size)
        return {group.key: group.size for group in groups}


class EBSWeights(WeightScheme):
    """Group Importance Enforced By Size: ``wei(G) = (B + 1)^ord(G)``.

    ``ord`` orders groups from smallest to largest; ties (equal-size
    groups) are broken deterministically by group key, matching the
    paper's "broken arbitrarily" footnote while keeping runs reproducible.
    """

    name = "EBS"

    def weights(
        self, groups: GroupSet, budget: int, population_size: int
    ) -> WeightMap:
        _check_context(budget, population_size)
        ordered = sorted(groups, key=lambda g: (g.size, str(g.key)))
        base = budget + 1
        return {group.key: base**rank for rank, group in enumerate(ordered)}


class CoverageScheme(ABC):
    """Strategy producing ``cov : G -> N`` for a concrete group set."""

    name: str = ""

    @abstractmethod
    def coverage(
        self, groups: GroupSet, budget: int, population_size: int
    ) -> CoverageMap:
        """Return the required coverage of every group in ``groups``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SingleCoverage(CoverageScheme):
    """Single Representative: one member suffices to cover any group."""

    name = "Single"

    def coverage(
        self, groups: GroupSet, budget: int, population_size: int
    ) -> CoverageMap:
        _check_context(budget, population_size)
        return {group.key: 1 for group in groups}


class PropCoverage(CoverageScheme):
    """Proportional Representation: ``cov(G) = max(⌊B·|G|/|U|⌋, 1)``."""

    name = "Prop"

    def coverage(
        self, groups: GroupSet, budget: int, population_size: int
    ) -> CoverageMap:
        _check_context(budget, population_size)
        return {
            group.key: max(budget * group.size // population_size, 1)
            for group in groups
        }


#: Registries for config-file / CLI lookups by scheme name.
WEIGHT_SCHEMES: dict[str, type[WeightScheme]] = {
    cls.name: cls for cls in (IdenWeights, LBSWeights, EBSWeights)
}
COVERAGE_SCHEMES: dict[str, type[CoverageScheme]] = {
    cls.name: cls for cls in (SingleCoverage, PropCoverage)
}


def weight_scheme(name: str) -> WeightScheme:
    """Instantiate a weight scheme by its paper name (Iden/LBS/EBS)."""
    try:
        return WEIGHT_SCHEMES[name]()
    except KeyError:
        raise InvalidInstanceError(
            f"unknown weight scheme {name!r}; choose from {sorted(WEIGHT_SCHEMES)}"
        ) from None


def coverage_scheme(name: str) -> CoverageScheme:
    """Instantiate a coverage scheme by its paper name (Single/Prop)."""
    try:
        return COVERAGE_SCHEMES[name]()
    except KeyError:
        raise InvalidInstanceError(
            f"unknown coverage scheme {name!r}; "
            f"choose from {sorted(COVERAGE_SCHEMES)}"
        ) from None
