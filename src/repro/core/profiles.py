"""User profiles and repositories (paper §3.1).

A user profile is a tuple ``D_u = <P_u, S_u>`` where ``P_u`` is the set of
property labels known for the user and ``S_u : P_u -> [0, 1]`` maps each
property to a normalized score.  A :class:`UserRepository` holds the
profiles of a population and maintains an inverted index from property
label to the users that carry it, which is what the grouping module and
the greedy selection algorithm traverse.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .errors import (
    DuplicateUserError,
    EmptyRepositoryError,
    InvalidScoreError,
    UnknownPropertyError,
    UnknownUserError,
)

_SCORE_EPS = 1e-12


def _validate_score(label: str, score: float) -> float:
    value = float(score)
    if not (-_SCORE_EPS <= value <= 1.0 + _SCORE_EPS) or value != value:
        raise InvalidScoreError(
            f"score for property {label!r} must be in [0, 1], got {score!r}"
        )
    return min(max(value, 0.0), 1.0)


@dataclass(frozen=True)
class UserProfile:
    """Immutable profile ``D_u = <P_u, S_u>`` of a single user.

    Parameters
    ----------
    user_id:
        Unique identifier of the user within a repository.
    scores:
        Mapping from property label to its normalized score in ``[0, 1]``.
        The mapping is copied and frozen at construction time.
    """

    user_id: str
    scores: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        frozen = {
            str(label): _validate_score(label, score)
            for label, score in dict(self.scores).items()
        }
        object.__setattr__(self, "scores", frozen)

    @property
    def properties(self) -> frozenset[str]:
        """The set ``P_u`` of property labels known for this user."""
        return frozenset(self.scores)

    def has(self, label: str) -> bool:
        """Return whether property ``label`` is recorded for this user."""
        return label in self.scores

    def score(self, label: str) -> float:
        """Return ``S_u(label)``; raise if the property is unknown.

        Missing properties follow the open-world assumption (paper §3.1):
        absence means *unknown*, not false, hence no default is returned.
        """
        try:
            return self.scores[label]
        except KeyError:
            raise UnknownPropertyError(
                f"user {self.user_id!r} has no property {label!r}"
            ) from None

    def with_score(self, label: str, score: float) -> "UserProfile":
        """Return a copy of this profile with ``label`` set to ``score``."""
        merged = dict(self.scores)
        merged[str(label)] = score
        return UserProfile(self.user_id, merged)

    def without(self, labels: Iterable[str]) -> "UserProfile":
        """Return a copy with every property in ``labels`` removed."""
        drop = set(labels)
        return UserProfile(
            self.user_id,
            {p: s for p, s in self.scores.items() if p not in drop},
        )

    def restricted_to(self, labels: Iterable[str]) -> "UserProfile":
        """Return a copy keeping only the properties in ``labels``."""
        keep = set(labels)
        return UserProfile(
            self.user_id,
            {p: s for p, s in self.scores.items() if p in keep},
        )

    def __len__(self) -> int:
        return len(self.scores)

    def __contains__(self, label: object) -> bool:
        return label in self.scores

    def __iter__(self) -> Iterator[str]:
        return iter(self.scores)


class UserRepository:
    """A population ``U`` of user profiles with a property inverted index.

    The repository is the substrate every other module operates on: the
    grouping module scans its per-property score arrays to compute buckets,
    and the selection algorithms traverse the user -> property and
    property -> users links (the bidirectional lists of paper §4).
    """

    def __init__(self, profiles: Iterable[UserProfile] = ()) -> None:
        self._profiles: dict[str, UserProfile] = {}
        self._index: dict[str, dict[str, float]] = {}
        for profile in profiles:
            self.add(profile)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_records(
        cls, records: Mapping[str, Mapping[str, float]]
    ) -> "UserRepository":
        """Build a repository from ``{user_id: {property: score}}``."""
        return cls(
            UserProfile(user_id, scores) for user_id, scores in records.items()
        )

    def add(self, profile: UserProfile) -> None:
        """Insert ``profile``; user ids must be unique."""
        if profile.user_id in self._profiles:
            raise DuplicateUserError(f"duplicate user id {profile.user_id!r}")
        self._profiles[profile.user_id] = profile
        for label, score in profile.scores.items():
            self._index.setdefault(label, {})[profile.user_id] = score
        # Drop the densified incidence cached by the vectorized distance
        # baseline (repro.core.index.property_incidence) — it is stale now.
        self.__dict__.pop("_property_incidence_cache", None)

    # -- basic access ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[UserProfile]:
        return iter(self._profiles.values())

    def __contains__(self, user_id: object) -> bool:
        return user_id in self._profiles

    @property
    def user_ids(self) -> list[str]:
        """All user ids, in insertion order."""
        return list(self._profiles)

    @property
    def property_labels(self) -> list[str]:
        """All property labels seen in any profile, in first-seen order."""
        return list(self._index)

    def profile(self, user_id: str) -> UserProfile:
        """Return the profile of ``user_id``; raise if absent."""
        try:
            return self._profiles[user_id]
        except KeyError:
            raise UnknownUserError(f"unknown user id {user_id!r}") from None

    def support(self, label: str) -> int:
        """Return ``|p|``: the number of users carrying property ``label``."""
        return len(self._index.get(label, ()))

    def users_with(self, label: str) -> dict[str, float]:
        """Return ``{user_id: score}`` for every user carrying ``label``."""
        return dict(self._index.get(label, {}))

    def scores_for(self, label: str) -> tuple[list[str], np.ndarray]:
        """Return parallel ``(user_ids, scores)`` for property ``label``.

        The grouping module uses the score vector for 1-d bucketing.
        """
        entries = self._index.get(label)
        if not entries:
            raise UnknownPropertyError(f"no user has property {label!r}")
        ids = list(entries)
        return ids, np.fromiter(
            (entries[u] for u in ids), dtype=float, count=len(ids)
        )

    # -- statistics ---------------------------------------------------------

    def mean_profile_size(self) -> float:
        """Average ``|P_u|`` over the population."""
        if not self._profiles:
            raise EmptyRepositoryError("repository is empty")
        return sum(len(p) for p in self._profiles.values()) / len(self._profiles)

    def max_profile_size(self) -> int:
        """Maximum ``|P_u|`` over the population (0 when empty)."""
        return max((len(p) for p in self._profiles.values()), default=0)

    # -- derivation ----------------------------------------------------------

    def subset(self, user_ids: Iterable[str]) -> "UserRepository":
        """Return a new repository restricted to ``user_ids``."""
        return UserRepository(self.profile(u) for u in user_ids)

    def filter(self, predicate: Callable[[UserProfile], bool]) -> "UserRepository":
        """Return a new repository of the profiles satisfying ``predicate``."""
        return UserRepository(p for p in self if predicate(p))

    def without_properties(self, labels: Iterable[str]) -> "UserRepository":
        """Return a copy with ``labels`` removed from every profile.

        Used by the opinion-procurement simulation (paper §8.2) to hide the
        held-out destination's data from the selection algorithms.
        """
        drop = set(labels)
        return UserRepository(p.without(drop) for p in self)

    def matrix(
        self,
        labels: Iterable[str] | None = None,
        fill: float = 0.0,
    ) -> tuple[list[str], list[str], np.ndarray]:
        """Densify the repository into a ``len(U) × len(P)`` score matrix.

        Missing entries take ``fill``.  The clustering and distance-based
        baselines operate on this matrix.
        """
        cols = list(labels) if labels is not None else self.property_labels
        col_pos = {label: j for j, label in enumerate(cols)}
        rows = self.user_ids
        data = np.full((len(rows), len(cols)), fill, dtype=float)
        for i, user_id in enumerate(rows):
            for label, score in self._profiles[user_id].scores.items():
                j = col_pos.get(label)
                if j is not None:
                    data[i, j] = score
        return rows, cols, data

    def __repr__(self) -> str:
        return (
            f"UserRepository(users={len(self)}, "
            f"properties={len(self._index)})"
        )
