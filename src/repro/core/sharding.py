"""Fork-warmed shard executor for GreeDi-style distributed selection.

The sharded greedy backend solves S independent sub-problems (one per
user shard) before its exact merge round.  This module runs those
sub-solves, in parallel when the platform makes it cheap: like the
experiment engine (PR 2), the parent process stashes the heavy shared
state — the instance or index plus every shard's candidate pool — in a
module global *before* creating a fork-based ``ProcessPoolExecutor``, so
workers inherit it copy-on-write and each task payload is a single shard
number.  Nothing heavyweight is ever pickled.

When forking is unavailable (non-fork start method), ``jobs <= 1`` or
there is only one shard, the shards are solved serially in-process —
same results, since every shard solve is deterministic.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor

#: Parent-process payload inherited copy-on-write by forked workers:
#: ``{"solve": pool -> result, "pools": [shard pools]}``.  Set only for
#: the lifetime of one executor; workers read it, the parent clears it.
_PARENT: dict | None = None


def normalize_jobs(jobs: int | None) -> int:
    """``None``/``0``/negative → every core; otherwise ``jobs``."""
    if not jobs or jobs < 1:
        return os.cpu_count() or 1
    return jobs


def _fork_available() -> bool:
    try:
        return multiprocessing.get_start_method(allow_none=True) in (
            "fork",
            None,
        ) and hasattr(os, "fork")
    except ValueError:  # pragma: no cover - defensive
        return False


def _solve_shard(shard: int):
    """Worker entry point: solve one shard from the inherited payload."""
    assert _PARENT is not None, "worker forked without parent payload"
    return _PARENT["solve"](_PARENT["pools"][shard])


def solve_shards(
    solve: Callable,
    pools: Sequence,
    jobs: int | None = 1,
) -> list:
    """Apply ``solve`` to every shard pool, fanning out when safe.

    ``solve`` must be deterministic (the sharded backend's sub-solves
    are), so serial and parallel execution return identical lists and the
    parallel path is purely a wall-clock optimization.  Results come back
    in shard order regardless of completion order.
    """
    pools = list(pools)
    jobs = normalize_jobs(jobs)
    if jobs <= 1 or len(pools) <= 1 or not _fork_available():
        return [solve(pool) for pool in pools]

    global _PARENT
    _PARENT = {"solve": solve, "pools": pools}
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pools)), mp_context=context
        ) as executor:
            return list(executor.map(_solve_shard, range(len(pools))))
    finally:
        _PARENT = None


#: Parent payload for range-sharded solves: ``{"solve", "bounds",
#: "path", "index"}``.  When ``path`` is set (the index was opened from
#: an ``.npz`` checkpoint), ``index`` is ``None`` in the parent and each
#: forked worker lazily re-opens its *own* mapping of the checkpoint —
#: the worker then touches only the pages of its row range, so resident
#: memory per worker is O(shard), not O(n).
_RANGE_PARENT: dict | None = None


def _solve_range_shard(shard: int):
    """Worker entry point: solve one contiguous row range."""
    payload = _RANGE_PARENT
    assert payload is not None, "worker forked without parent payload"
    index = payload.get("index")
    if index is None:
        from .persistence import open_index_npz

        # The parent already verified the checkpoint when it opened it;
        # re-verifying per worker would stream the whole file S times.
        index = open_index_npz(payload["path"], verify=False)
        payload["index"] = index  # cached for this worker's later tasks
    lo, hi = payload["bounds"][shard]
    return payload["solve"](index, lo, hi)


def solve_range_shards(
    solve: Callable,
    index,
    bounds: Sequence[tuple[int, int]],
    jobs: int | None = 1,
) -> list:
    """Apply ``solve(index, lo, hi)`` to contiguous row ranges.

    The range-sharded twin of :func:`solve_shards` for indexes whose
    rows — not candidate-id lists — define the shards.  ``solve`` must
    be deterministic so serial and parallel execution agree.  When the
    index carries a source checkpoint path
    (:func:`repro.core.persistence.open_index_npz` attaches one), forked
    workers do not reuse the parent's mapping at all: each re-opens the
    checkpoint lazily and pages in only its own range, keeping the whole
    process tree's unique resident memory at O(shard) per worker.
    In-RAM indexes fall back to plain copy-on-write inheritance.
    """
    bounds = list(bounds)
    jobs = normalize_jobs(jobs)
    if jobs <= 1 or len(bounds) <= 1 or not _fork_available():
        return [solve(index, lo, hi) for lo, hi in bounds]

    from .persistence import index_source_path

    path = index_source_path(index)
    global _RANGE_PARENT
    _RANGE_PARENT = {
        "solve": solve,
        "bounds": bounds,
        "path": path,
        "index": None if path is not None else index,
    }
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(bounds)), mp_context=context
        ) as executor:
            return list(
                executor.map(_solve_range_shard, range(len(bounds)))
            )
    finally:
        _RANGE_PARENT = None
