"""The Set Cover ⇆ DEC-DIVERSITY reduction of Prop. 4.1, executable.

The paper proves DEC-DIVERSITY NP-complete by reduction from Set Cover:
given a universe ``{1..N}``, subsets ``S_1..S_m`` and an integer ``k``,
build one user per subset and one group per element with ``u_j ∈ G_i``
iff ``i ∈ S_j``; with Single coverage and threshold
``T = Σ_G wei(G) · min(cov(G), B)``, a size-``k`` user subset reaches
score ``T`` iff the corresponding subsets form a set cover.

This module materializes that construction on the real library types, so
the hardness argument is itself under test: solving the reduced
diversity instance optimally decides the original Set Cover instance,
and the greedy algorithm doubles as the classical greedy set-cover
approximation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from .errors import InvalidInstanceError
from .greedy import greedy_select
from .groups import Group, GroupKey, GroupSet
from .instance import DiversificationInstance
from .optimal import optimal_select
from .profiles import UserProfile, UserRepository
from .weights import Weight


@dataclass(frozen=True)
class SetCoverInstance:
    """A Set Cover instance: cover ``universe`` with ``k`` of ``subsets``."""

    universe: frozenset[int]
    subsets: tuple[frozenset[int], ...]
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise InvalidInstanceError(f"k must be >= 1, got {self.k}")
        stray = frozenset().union(*self.subsets, frozenset()) - self.universe
        if stray:
            raise InvalidInstanceError(
                f"subsets mention elements outside the universe: {sorted(stray)}"
            )

    @classmethod
    def of(
        cls, universe: Iterable[int], subsets: Sequence[Iterable[int]], k: int
    ) -> "SetCoverInstance":
        return cls(
            frozenset(universe),
            tuple(frozenset(s) for s in subsets),
            k,
        )

    def is_cover(self, chosen: Iterable[int]) -> bool:
        """Whether the subsets at the chosen indices cover the universe."""
        covered: frozenset[int] = frozenset()
        for index in chosen:
            covered |= self.subsets[index]
        return covered >= self.universe


@dataclass(frozen=True)
class ReducedInstance:
    """The DEC-DIVERSITY instance produced from a Set Cover instance."""

    repository: UserRepository
    instance: DiversificationInstance
    threshold: Weight

    def user_for_subset(self, index: int) -> str:
        return f"s{index}"

    def subset_for_user(self, user_id: str) -> int:
        return int(user_id[1:])


def reduce_set_cover(sc: SetCoverInstance) -> ReducedInstance:
    """Prop. 4.1's construction with ``wei ≡ 1`` and Single coverage.

    The repository carries a dummy Boolean property per element so that
    membership survives the normal profile machinery; the group set is
    built directly (one element-group per universe element).
    """
    profiles = []
    for j, subset in enumerate(sc.subsets):
        scores = {f"covers {i}": 1.0 for i in sorted(subset)}
        profiles.append(UserProfile(f"s{j}", scores))
    repository = UserRepository(profiles)

    groups = GroupSet(
        Group(
            GroupKey(f"element {i}", "covered"),
            frozenset(
                f"s{j}" for j, subset in enumerate(sc.subsets) if i in subset
            ),
            bucket=None,
            label=f"element {i}",
        )
        for i in sorted(sc.universe)
    )
    wei = {key: 1 for key in groups.keys}
    cov = {key: 1 for key in groups.keys}
    instance = DiversificationInstance(
        groups=groups,
        wei=wei,
        cov=cov,
        budget=sc.k,
        population_size=max(len(sc.subsets), 1),
    )
    threshold: Weight = sum(
        wei[k] * min(cov[k], sc.k) for k in groups.keys
    )
    return ReducedInstance(repository, instance, threshold)


def decide_set_cover(sc: SetCoverInstance) -> tuple[bool, list[int]]:
    """Decide Set Cover by solving the reduced instance *optimally*.

    Returns ``(decision, witness)``: the witness is a list of subset
    indices forming a cover when the decision is positive (it may be
    shorter than ``k``), or the best-effort selection otherwise.
    Exponential in ``k`` — the whole point of Prop. 4.1.
    """
    reduced = reduce_set_cover(sc)
    result = optimal_select(reduced.repository, reduced.instance, sc.k)
    chosen = [reduced.subset_for_user(u) for u in result.selected]
    return result.score >= reduced.threshold, chosen


def greedy_set_cover(sc: SetCoverInstance) -> list[int]:
    """Classical greedy set cover via Algorithm 1 on the reduction.

    Runs the diversity greedy with budget ``|subsets|`` and stops once
    the universe is covered; inherits the ln(N)-style guarantee that
    motivates Prop. 4.2's inapproximability framing.
    """
    reduced = reduce_set_cover(sc)
    result = greedy_select(
        reduced.repository, reduced.instance, budget=len(sc.subsets)
    )
    chosen: list[int] = []
    covered: frozenset[int] = frozenset()
    for user_id in result.selected:
        if covered >= sc.universe:
            break
        index = reduced.subset_for_user(user_id)
        chosen.append(index)
        covered |= sc.subsets[index]
    return chosen
