"""Integer-encoded sparse instance index for the vectorized backend.

The paper's §4 data structures (bidirectional user ↔ group links) are
dict/set based, which keeps the greedy loop readable but pays Python
object overhead per membership visit.  :class:`InstanceIndex` re-encodes
a :class:`~repro.core.instance.DiversificationInstance` once into dense
integer ids plus CSR-style incidence arrays so the selection hot paths
(`method="matrix"` in :func:`~repro.core.greedy.greedy_select`,
:func:`~repro.core.scoring.subset_score`,
:func:`~repro.core.scoring.covered_groups`) run as numpy array ops:

* users appearing in any group get dense ids ``0..n_users-1`` in sorted
  user-id order, so ``argmax`` over a gain vector breaks ties by minimal
  user id exactly like the eager/lazy implementations;
* the user → group and group → user incidence is stored twice as CSR
  (``indptr``/``indices``; indices are int32 whenever the id space fits,
  int64 otherwise) for O(degree) row slicing in both directions;
* ``wei``/``cov`` are materialized as dense int64 vectors.

EBS weights are exact Python integers ``(B + 1)^ord(G)`` that overflow
int64 at realistic ranks, and customized instances may carry non-integer
weights.  The index therefore computes the exact total incidence mass
``Σ_G wei(G)·|G|`` in Python-int arithmetic and only declares itself
:attr:`~InstanceIndex.vectorizable` when every weight is an ``int`` and
every partial sum a backend can form is representable in int64.  Callers
must honor the flag by falling back to the exact object-dtype paths —
correctness never depends on the backend.

The index is immutable and cached on the instance (instances are frozen
and documented immutable for their lifetime), so repeated selections,
scores and coverage queries share one build.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from .groups import GroupKey
from .instance import DiversificationInstance
from .weights import Weight

#: Largest value an int64 cell may hold; sums bounded by this stay exact.
_INT64_MAX = np.iinfo(np.int64).max

#: Largest dense id an int32 CSR indices array may store.
_INT32_MAX = np.iinfo(np.int32).max

#: Attribute used to cache the built index on a (frozen) instance.  The
#: cached value is a ``(groups_version, index)`` pair so mutations of the
#: underlying group set invalidate the build.
_CACHE_ATTR = "_instance_index_cache"


def id_dtype(n: int) -> type:
    """Smallest integer dtype able to hold dense ids ``0..n-1``.

    CSR ``indices`` arrays dominate index memory at scale, so they are
    stored as int32 whenever the id space fits (halving their footprint);
    the int64 ``wei``/``cov`` accumulators and the exact big-int fallback
    are unaffected — only ids shrink, never arithmetic.
    """
    return np.int32 if n <= _INT32_MAX else np.int64


def _segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Exact int64 per-row sums of a CSR value array (empty rows -> 0)."""
    if values.size == 0:
        return np.zeros(len(indptr) - 1, dtype=np.int64)
    cumulative = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(values, dtype=np.int64)]
    )
    return cumulative[indptr[1:]] - cumulative[indptr[:-1]]


@dataclass(frozen=True)
class InstanceIndex:
    """Dense-id sparse view of one diversification instance.

    Attributes
    ----------
    users:
        Every user appearing in at least one group, sorted ascending —
        the dense user id is the position in this tuple.
    user_pos:
        Inverse map ``user_id -> dense id``.
    group_keys:
        Dense group id -> :class:`GroupKey`, in group-set iteration order.
    group_pos:
        Inverse map ``GroupKey -> dense group id``.
    u_indptr / u_indices:
        CSR rows per user listing the dense ids of its groups.
    g_indptr / g_indices:
        CSR rows per group listing the dense ids of its members.
    cov:
        Required coverage per group (int64).
    wei:
        Group weights as int64, or ``None`` when not vectorizable.
    initial_gains:
        Per-user marginal gain of the empty subset (every group active),
        or ``None`` when not vectorizable.
    vectorizable:
        True iff all weights are Python ints and ``Σ_G wei(G)·|G|`` fits
        int64, so every partial sum the array backend forms is exact.
    """

    users: tuple[str, ...]
    user_pos: dict[str, int]
    group_keys: tuple[GroupKey, ...]
    group_pos: dict[GroupKey, int]
    u_indptr: np.ndarray
    u_indices: np.ndarray
    g_indptr: np.ndarray
    g_indices: np.ndarray
    cov: np.ndarray
    wei: np.ndarray | None
    initial_gains: np.ndarray | None
    vectorizable: bool

    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def n_groups(self) -> int:
        return len(self.group_keys)

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, instance: DiversificationInstance) -> "InstanceIndex":
        """Encode ``instance`` into dense ids and CSR incidence arrays."""
        groups = list(instance.groups)
        group_keys = tuple(g.key for g in groups)
        users = tuple(sorted({u for g in groups for u in g.members}))
        user_pos = {u: i for i, u in enumerate(users)}
        n_users, n_groups = len(users), len(groups)

        # Group -> user CSR.  The only Python-level pass over the raw
        # membership data is the id -> dense-id lookup; everything after
        # runs as array ops.
        sizes = np.fromiter(
            (len(g.members) for g in groups), dtype=np.int64, count=n_groups
        )
        g_indptr = np.zeros(n_groups + 1, dtype=np.int64)
        np.cumsum(sizes, out=g_indptr[1:])
        total = int(g_indptr[-1])
        g_indices = np.fromiter(
            (user_pos[u] for g in groups for u in g.members),
            dtype=id_dtype(n_users),
            count=total,
        )

        # User -> group CSR: transpose the (group, user) entry list with a
        # stable counting-style sort on the user column.
        entry_group = np.repeat(
            np.arange(n_groups, dtype=id_dtype(n_groups)), sizes
        )
        order = np.argsort(g_indices, kind="stable")
        u_indices = entry_group[order]
        degree = np.bincount(g_indices, minlength=n_users).astype(np.int64)
        u_indptr = np.zeros(n_users + 1, dtype=np.int64)
        np.cumsum(degree, out=u_indptr[1:])

        cov = np.fromiter(
            (int(instance.cov[k]) for k in group_keys),
            dtype=np.int64,
            count=n_groups,
        )

        raw_weights = [instance.wei[k] for k in group_keys]
        vectorizable = all(
            isinstance(w, int) and not isinstance(w, bool) for w in raw_weights
        )
        if vectorizable:
            # Exact Python-int bound on every partial sum any backend
            # forms: gains, scores and cumulative sums all total at most
            # Σ_G wei(G)·|G| (coverage caps only shrink terms).
            mass = sum(
                w * int(g_indptr[gid + 1] - g_indptr[gid])
                for gid, w in enumerate(raw_weights)
            )
            vectorizable = mass <= _INT64_MAX

        wei = initial_gains = None
        if vectorizable:
            wei = np.fromiter(raw_weights, dtype=np.int64, count=n_groups)
            initial_gains = _segment_sums(wei[u_indices], u_indptr)

        return cls(
            users=users,
            user_pos=user_pos,
            group_keys=group_keys,
            group_pos={key: gid for gid, key in enumerate(group_keys)},
            u_indptr=u_indptr,
            u_indices=u_indices,
            g_indptr=g_indptr,
            g_indices=g_indices,
            cov=cov,
            wei=wei,
            initial_gains=initial_gains,
            vectorizable=vectorizable,
        )

    @classmethod
    def from_csr(
        cls,
        users: tuple[str, ...],
        group_keys: tuple[GroupKey, ...],
        u_indptr: np.ndarray,
        u_indices: np.ndarray,
        g_indptr: np.ndarray,
        g_indices: np.ndarray,
        cov: np.ndarray,
        weights: list | None,
        user_pos: Mapping[str, int] | None = None,
    ) -> "InstanceIndex":
        """Assemble an index from pre-built CSR arrays.

        The columnar construction path lands here: it produces the arrays
        directly from triple columns without materializing dict-of-dict
        repositories or group sets.  ``weights`` are exact Python ints (or
        ``None`` for a non-vectorizable index); the same
        ``Σ_G wei(G)·|G|`` int64-representability check as :meth:`build`
        decides whether the vectorized fast path is safe.
        """
        n_groups = len(group_keys)
        vectorizable = weights is not None and all(
            isinstance(w, int) and not isinstance(w, bool) for w in weights
        )
        if vectorizable:
            assert weights is not None
            mass = sum(
                w * int(g_indptr[gid + 1] - g_indptr[gid])
                for gid, w in enumerate(weights)
            )
            vectorizable = mass <= _INT64_MAX
        wei = initial_gains = None
        if vectorizable:
            wei = np.fromiter(weights, dtype=np.int64, count=n_groups)
            initial_gains = _segment_sums(wei[u_indices], u_indptr)
        if user_pos is None:
            # Callers whose ``users`` is an unchanged lazy sequence (a
            # mapped checkpoint) pass the id→row mapping through instead:
            # enumerating here would decode the whole id array.
            user_pos = {u: i for i, u in enumerate(users)}
        return cls(
            users=users,
            user_pos=user_pos,
            group_keys=group_keys,
            group_pos={key: gid for gid, key in enumerate(group_keys)},
            u_indptr=u_indptr,
            u_indices=u_indices,
            g_indptr=g_indptr,
            g_indices=g_indices,
            cov=cov,
            wei=wei,
            initial_gains=initial_gains,
            vectorizable=vectorizable,
        )

    def restricted_scaled(
        self, group_dense_ids: np.ndarray, weights: list
    ) -> "InstanceIndex":
        """Derived index over a group subset with replacement weights.

        The customization path (paper §6) restricts an instance to the
        active groups ``G_d ∪ G_d?`` and rescales priority weights; doing
        that on the dict-based instance re-walks every membership set in
        Python.  Here the restriction is pure array work on the existing
        CSR arrays: group rows are sliced and re-numbered, the user-side
        CSR is rebuilt with the same stable counting sort as
        :meth:`build`, and ``weights`` (exact Python ints, parallel to
        ``group_dense_ids``) replace the originals.  The user id space is
        kept whole — users left with no active group simply have empty
        rows and zero initial gain, which selects identically to absent
        users.
        """
        group_dense_ids = np.asarray(group_dense_ids, dtype=np.int64)
        m = len(group_dense_ids)
        sizes = self.row_sizes(group_dense_ids)
        g_indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(sizes, out=g_indptr[1:])
        g_indices = self.members_of_rows(group_dense_ids)
        entry_group = np.repeat(np.arange(m, dtype=id_dtype(m)), sizes)
        order = np.argsort(g_indices, kind="stable")
        u_indices = entry_group[order]
        degree = np.bincount(
            g_indices, minlength=self.n_users
        ).astype(np.int64)
        u_indptr = np.zeros(self.n_users + 1, dtype=np.int64)
        np.cumsum(degree, out=u_indptr[1:])
        return InstanceIndex.from_csr(
            users=self.users,
            group_keys=tuple(self.group_keys[g] for g in group_dense_ids),
            u_indptr=u_indptr,
            u_indices=u_indices,
            g_indptr=g_indptr,
            g_indices=g_indices,
            cov=self.cov[group_dense_ids].copy(),
            weights=weights,
            user_pos=self.user_pos,
        )

    def take_rows(self, rows: np.ndarray) -> "InstanceIndex":
        """Small eager sub-index over a subset of user rows.

        The streaming sharded backend's merge round runs here: the union
        of shard winners (≤ 2·shards·budget rows) is gathered out of the
        — possibly memory-mapped — parent index into a self-contained
        index whose resident size is O(union), never O(n).  Groups are
        kept whole (same keys, coverage and weights) with membership
        restricted to ``rows``, so every gain the merge round computes
        equals the parent's gain for the same candidate: greedy over a
        ``take_rows`` union is exactly greedy over the parent restricted
        to that union.  ``rows`` must be ascending so the sub-index keeps
        the sorted-by-id row order the argmax tie-break rides on.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) and (np.diff(rows) <= 0).any():
            raise ValueError("take_rows requires strictly ascending rows")
        users = tuple(str(self.users[int(r)]) for r in rows)
        degrees = (self.u_indptr[rows + 1] - self.u_indptr[rows]).astype(
            np.int64
        )
        u_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(degrees, out=u_indptr[1:])
        if int(u_indptr[-1]):
            u_indices = np.concatenate(
                [
                    self.u_indices[self.u_indptr[r]:self.u_indptr[r + 1]]
                    for r in rows
                ]
            )
        else:
            u_indices = np.empty(0, dtype=self.u_indices.dtype)
        entry_user = np.repeat(
            np.arange(len(rows), dtype=id_dtype(max(len(rows), 1))), degrees
        )
        order = np.argsort(u_indices, kind="stable")
        g_indices = entry_user[order]
        g_indptr = np.zeros(self.n_groups + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(
                np.asarray(u_indices, dtype=np.int64),
                minlength=self.n_groups,
            ),
            out=g_indptr[1:],
        )
        weights = (
            [int(w) for w in self.wei] if self.wei is not None else None
        )
        return InstanceIndex.from_csr(
            users=users,
            group_keys=self.group_keys,
            u_indptr=u_indptr,
            u_indices=np.asarray(u_indices),
            g_indptr=g_indptr,
            g_indices=g_indices,
            cov=np.array(self.cov, dtype=np.int64),
            weights=weights,
        )

    # -- row access --------------------------------------------------------

    def groups_of_row(self, user_dense_id: int) -> np.ndarray:
        """Dense group ids of one user's memberships (a CSR row view)."""
        lo, hi = self.u_indptr[user_dense_id], self.u_indptr[user_dense_id + 1]
        return self.u_indices[lo:hi]

    def members_of_rows(self, group_dense_ids: np.ndarray) -> np.ndarray:
        """Concatenated member ids of several groups (parallel to repeats)."""
        if group_dense_ids.size == 0:
            return np.empty(0, dtype=self.g_indices.dtype)
        return np.concatenate(
            [
                self.g_indices[self.g_indptr[g]:self.g_indptr[g + 1]]
                for g in group_dense_ids
            ]
        )

    def row_sizes(self, group_dense_ids: np.ndarray) -> np.ndarray:
        """Member counts of several groups."""
        return self.g_indptr[group_dense_ids + 1] - self.g_indptr[group_dense_ids]

    # -- vectorized scoring ------------------------------------------------

    def selection_mask(self, user_ids: Iterable[str]) -> np.ndarray:
        """Boolean membership vector over dense user ids."""
        mask = np.zeros(self.n_users, dtype=bool)
        for user_id in user_ids:
            pos = self.user_pos.get(user_id)
            if pos is not None:
                mask[pos] = True
        return mask

    def group_hits(self, mask: np.ndarray) -> np.ndarray:
        """``|U ∩ G|`` per group for a selection mask, as int64."""
        return _segment_sums(
            mask[self.g_indices].astype(np.int64), self.g_indptr
        )

    def selection_hits(self, user_ids: Iterable[str]) -> np.ndarray:
        """``|U ∩ G|`` per group, touching only the selected users' rows.

        Same exact counts as ``group_hits(selection_mask(user_ids))``,
        but O(Σ_u deg(u)) over the selection instead of a pass over the
        full incidence — for a budget-sized selection that is a few
        hundred entries, not millions.  On a memory-mapped index only
        the selected rows' pages fault in.  Duplicate and unknown ids
        contribute nothing, exactly like the mask path.
        """
        rows = {self.user_pos.get(u) for u in user_ids}
        rows.discard(None)
        if not rows:
            return np.zeros(self.n_groups, dtype=np.int64)
        parts = [self.groups_of_row(r) for r in rows]
        counts = np.bincount(
            np.concatenate(parts), minlength=self.n_groups
        )
        return counts.astype(np.int64, copy=False)

    def subset_score(self, user_ids: Iterable[str]) -> Weight:
        """Exact ``score_G`` of a subset; requires :attr:`vectorizable`."""
        assert self.wei is not None
        hits = self.group_hits(self.selection_mask(user_ids))
        return int(np.sum(self.wei * np.minimum(hits, self.cov)))

    def covered_group_keys(self, user_ids: Iterable[str]) -> set[GroupKey]:
        """Keys of groups with at least ``cov(G)`` selected members."""
        hits = self.group_hits(self.selection_mask(user_ids))
        covered = np.flatnonzero(hits >= self.cov)
        return {self.group_keys[g] for g in covered}

    def membership_matrix(self, group_dense_ids: Iterable[int]) -> np.ndarray:
        """Dense boolean rows-per-group × dense-user membership matrix.

        The vectorized intrinsic metrics expand a handful of large groups
        into masks once, then answer every pairwise intersection question
        with one matrix product instead of Python set arithmetic.
        """
        rows = list(group_dense_ids)
        matrix = np.zeros((len(rows), self.n_users), dtype=bool)
        for r, gid in enumerate(rows):
            lo, hi = self.g_indptr[gid], self.g_indptr[gid + 1]
            matrix[r, self.g_indices[lo:hi]] = True
        return matrix


def instance_index(instance: DiversificationInstance) -> InstanceIndex:
    """Build (or fetch the cached) :class:`InstanceIndex` of ``instance``.

    Instances are frozen dataclasses, so the index is computed once and
    stashed on the instance; every selection backend, score and coverage
    query then shares one build.  The group set an instance wraps *is*
    mutable, however (``GroupSet.add`` replaces groups in place), so the
    cache records the group set's version at build time and rebuilds
    whenever the set has mutated since — the same invalidation contract
    :func:`property_incidence` has with ``UserRepository.add``.
    """
    version = instance.groups.version
    cached = instance.__dict__.get(_CACHE_ATTR)
    if cached is not None and cached[0] == version:
        return cached[1]
    index = InstanceIndex.build(instance)
    object.__setattr__(instance, _CACHE_ATTR, (version, index))
    return index


def attach_index(
    instance: DiversificationInstance, index: InstanceIndex
) -> None:
    """Install a pre-built ``index`` as ``instance``'s cached index.

    Used by paths that already hold the index — a columnar build handing
    out its lazily materialized instance view, or an ``.npz`` checkpoint
    loaded next to a persisted instance — so selections over the instance
    skip the re-encode entirely.
    """
    object.__setattr__(
        instance, _CACHE_ATTR, (instance.groups.version, index)
    )


#: Attribute caching the densified incidence on a repository; the
#: repository invalidates it whenever a profile is added.
_INCIDENCE_CACHE_ATTR = "_property_incidence_cache"


def property_incidence(
    repository,
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """User × property boolean incidence of a repository, densified.

    Returns ``(user_ids, incidence, sizes)`` where ``incidence[i, j]`` is
    1.0 iff user ``i`` (repository order) carries property ``j``
    (``property_labels`` order) and ``sizes[i] = |P_u|``.  The matrix is
    float64 so ``incidence @ incidence[i]`` yields exact pairwise
    intersection counts (0/1 partial sums stay below 2**53): the product
    the distance baseline uses in place of per-pair Python set
    intersections.  Scores are irrelevant here — a property present with
    score 0.0 still counts as carried (open-world semantics, §3.1).

    The result is cached on the repository and invalidated by
    :meth:`~repro.core.profiles.UserRepository.add`, so repeated
    selections over one population share a single densification.
    """
    cached = repository.__dict__.get(_INCIDENCE_CACHE_ATTR)
    if cached is not None:
        return cached
    user_ids = repository.user_ids
    labels = repository.property_labels
    position = {label: j for j, label in enumerate(labels)}
    incidence = np.zeros((len(user_ids), len(labels)), dtype=np.float64)
    for i, user_id in enumerate(user_ids):
        for label in repository.profile(user_id).properties:
            incidence[i, position[label]] = 1.0
    built = (user_ids, incidence, incidence.sum(axis=1).astype(np.int64))
    repository.__dict__[_INCIDENCE_CACHE_ATTR] = built
    return built
