"""1-d score bucketing for simple-group construction (paper §3.2).

The grouping module splits the score range of each property into a set of
*non-overlapping buckets* ``β(p)``.  The paper lists several 1-d interval
splitting methods that outperform general clustering on ordered data:
Jenks natural-breaks optimization, k-means, Expectation Maximization and
kernel-density splitting.  All of them are implemented here from scratch
(no scikit-learn offline), plus the simpler quantile and equal-width
strategies used in ablations.

A :class:`Bucket` is a sub-interval of ``[0, 1]``; the buckets returned by
:func:`split_scores` always partition the full ``[0, 1]`` range: every
bucket is closed on the left and open on the right, except the last which
is closed on both sides — matching the paper's running example
``[0, 0.4) / [0.4, 0.65) / [0.65, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .errors import InvalidBucketError

#: Default labels assigned to buckets, indexed by bucket count then position.
_DEFAULT_LABELS: dict[int, tuple[str, ...]] = {
    1: ("all",),
    2: ("low", "high"),
    3: ("low", "medium", "high"),
    4: ("low", "medium-low", "medium-high", "high"),
    5: ("lowest", "low", "medium", "high", "highest"),
}

#: Buckets used for Boolean (0/1-valued) properties: "false" and "true".
BOOLEAN_SPLITS: tuple[float, ...] = (0.5,)


@dataclass(frozen=True)
class Bucket:
    """A score sub-range ``b ⊆ [0, 1]`` with a human-readable label.

    ``closed_hi`` marks whether the upper bound is inclusive; only the last
    bucket of a partition is.
    """

    lo: float
    hi: float
    label: str
    closed_hi: bool = False

    def __post_init__(self) -> None:
        if not (0.0 <= self.lo <= self.hi <= 1.0):
            raise InvalidBucketError(
                f"bucket bounds must satisfy 0 <= lo <= hi <= 1, "
                f"got [{self.lo}, {self.hi}]"
            )
        if self.lo == self.hi and not self.closed_hi:
            raise InvalidBucketError(
                f"degenerate half-open bucket [{self.lo}, {self.hi}) is empty"
            )

    def contains(self, score: float) -> bool:
        """Return whether ``score`` falls inside this bucket."""
        if self.closed_hi:
            return self.lo <= score <= self.hi
        return self.lo <= score < self.hi

    def __contains__(self, score: object) -> bool:
        return isinstance(score, (int, float)) and self.contains(float(score))

    def __str__(self) -> str:
        right = "]" if self.closed_hi else ")"
        return f"{self.label} [{self.lo:g}, {self.hi:g}{right}"


def partition_from_splits(
    splits: tuple[float, ...] | list[float],
    labels: tuple[str, ...] | None = None,
) -> tuple[Bucket, ...]:
    """Build a partition of ``[0, 1]`` from interior split points.

    ``splits`` are the strictly increasing interior boundaries; ``k`` splits
    yield ``k + 1`` buckets.  Labels default to low/medium/high-style names
    when a convention exists for that bucket count, else ``bucket-i``.
    """
    points = [float(s) for s in splits]
    if any(not 0.0 < s < 1.0 for s in points):
        raise InvalidBucketError(f"split points must lie in (0, 1): {points}")
    if sorted(set(points)) != points:
        raise InvalidBucketError(
            f"split points must be strictly increasing: {points}"
        )
    bounds = [0.0, *points, 1.0]
    count = len(bounds) - 1
    if labels is None:
        labels = _DEFAULT_LABELS.get(
            count, tuple(f"bucket-{i}" for i in range(count))
        )
    if len(labels) != count:
        raise InvalidBucketError(
            f"expected {count} labels for {count} buckets, got {len(labels)}"
        )
    return tuple(
        Bucket(bounds[i], bounds[i + 1], labels[i], closed_hi=(i == count - 1))
        for i in range(count)
    )


def assign_bucket_indices(
    buckets: tuple[Bucket, ...] | list[Bucket],
    scores: np.ndarray,
) -> np.ndarray | None:
    """Vectorized bucket assignment for a contiguous partition of [0, 1].

    When ``buckets`` tile ``[0, 1]`` left-closed/right-open (last bucket
    closed) — the invariant every :func:`partition_from_splits` output
    satisfies — one ``np.searchsorted`` over the sorted interior split
    boundaries assigns each score its bucket index, replacing the
    per-(user, bucket) ``Bucket.contains`` loop of the grouping module.
    Returns ``None`` when the buckets are not such a partition or a score
    falls outside ``[0, 1]``, in which case callers must fall back to
    per-bucket membership tests.
    """
    if not buckets:
        return None
    if (
        buckets[0].lo != 0.0
        or buckets[-1].hi != 1.0
        or not buckets[-1].closed_hi
    ):
        return None
    for left, right in zip(buckets, buckets[1:]):
        if left.hi != right.lo or left.closed_hi:
            return None
    scores = np.asarray(scores, dtype=float)
    if scores.size and (scores.min() < 0.0 or scores.max() > 1.0):
        return None
    boundaries = np.array([b.lo for b in buckets[1:]], dtype=float)
    return np.searchsorted(boundaries, scores, side="right")


def boolean_partition() -> tuple[Bucket, ...]:
    """The two-bucket partition used for true/false properties."""
    return partition_from_splits(BOOLEAN_SPLITS, labels=("false", "true"))


def is_boolean(scores: np.ndarray, tolerance: float = 1e-9) -> bool:
    """Detect 0/1-valued properties such as ``livesIn Tokyo``."""
    scores = np.asarray(scores, dtype=float)
    return bool(
        np.all((np.abs(scores) <= tolerance) | (np.abs(scores - 1.0) <= tolerance))
    )


# ---------------------------------------------------------------------------
# Splitting strategies.  Each takes (sorted unique scores, k) and returns
# interior split points in (0, 1).
# ---------------------------------------------------------------------------


def _midpoints_between_classes(
    sorted_scores: np.ndarray, assignment: np.ndarray
) -> list[float]:
    """Convert a class assignment over sorted scores into split points."""
    splits: list[float] = []
    for i in range(1, len(sorted_scores)):
        if assignment[i] != assignment[i - 1]:
            mid = float((sorted_scores[i - 1] + sorted_scores[i]) / 2.0)
            if 0.0 < mid < 1.0 and (not splits or mid > splits[-1]):
                splits.append(mid)
    return splits


def equal_width_splits(scores: np.ndarray, k: int) -> list[float]:
    """Split ``[0, 1]`` into ``k`` equally wide intervals (ignores data)."""
    return [i / k for i in range(1, k)]


def quantile_splits(scores: np.ndarray, k: int) -> list[float]:
    """Split at the empirical ``i/k`` quantiles of the score sample."""
    scores = np.sort(np.asarray(scores, dtype=float))
    splits: list[float] = []
    for i in range(1, k):
        q = float(np.quantile(scores, i / k))
        if 0.0 < q < 1.0 and (not splits or q > splits[-1]):
            splits.append(q)
    return splits


def jenks_splits(scores: np.ndarray, k: int) -> list[float]:
    """Jenks natural-breaks optimization [Jenks 1967] via exact DP.

    Minimizes the total within-class sum of squared deviations (Fisher's
    dynamic program, O(k·n²)).  Large samples are deterministically
    down-sampled to keep the DP tractable; with ordered 1-d data this
    changes break positions negligibly.
    """
    values = np.sort(np.asarray(scores, dtype=float))
    if len(values) > 600:
        idx = np.linspace(0, len(values) - 1, 600).round().astype(int)
        values = values[idx]
    n = len(values)
    k = min(k, len(np.unique(values)))
    if k <= 1 or n <= 1:
        return []

    prefix = np.concatenate([[0.0], np.cumsum(values)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(values**2)])

    # cost[c][j] = best SSD splitting values[:j] into c classes.  The inner
    # minimization over the last-class start i is vectorized per (c, j).
    cost = np.full((k + 1, n + 1), np.inf)
    back = np.zeros((k + 1, n + 1), dtype=int)
    cost[0][0] = 0.0
    for c in range(1, k + 1):
        for j in range(c, n + 1):
            i = np.arange(c - 1, j)
            count = j - i
            total = prefix[j] - prefix[i]
            ssd = prefix_sq[j] - prefix_sq[i] - total * total / count
            candidates = cost[c - 1, i] + ssd
            best_pos = int(np.argmin(candidates))
            cost[c][j] = candidates[best_pos]
            back[c][j] = i[best_pos]

    # Recover class boundaries.
    assignment = np.zeros(n, dtype=int)
    j = n
    for c in range(k, 0, -1):
        i = back[c][j]
        assignment[i:j] = c - 1
        j = i
    return _midpoints_between_classes(values, assignment)


def kmeans1d_splits(
    scores: np.ndarray, k: int, max_iter: int = 100
) -> list[float]:
    """1-d k-means (Lloyd's algorithm with quantile seeding)."""
    values = np.sort(np.asarray(scores, dtype=float))
    k = min(k, len(np.unique(values)))
    if k <= 1:
        return []
    centers = np.quantile(values, [(2 * i + 1) / (2 * k) for i in range(k)])
    centers = np.unique(centers)
    for _ in range(max_iter):
        assignment = np.argmin(np.abs(values[:, None] - centers[None, :]), axis=1)
        new_centers = np.array(
            [
                values[assignment == c].mean() if np.any(assignment == c) else centers[c]
                for c in range(len(centers))
            ]
        )
        if np.allclose(new_centers, centers):
            break
        centers = new_centers
    assignment = np.argmin(np.abs(values[:, None] - centers[None, :]), axis=1)
    return _midpoints_between_classes(values, assignment)


def em_splits(scores: np.ndarray, k: int, max_iter: int = 200) -> list[float]:
    """1-d Gaussian-mixture EM; splits where responsibility flips."""
    values = np.sort(np.asarray(scores, dtype=float))
    k = min(k, len(np.unique(values)))
    if k <= 1:
        return []
    means = np.quantile(values, [(2 * i + 1) / (2 * k) for i in range(k)])
    sigmas = np.full(k, max(float(values.std()), 1e-3) / k)
    weights = np.full(k, 1.0 / k)
    for _ in range(max_iter):
        # E-step: responsibilities (k × n), guarding against underflow.
        diff = values[None, :] - means[:, None]
        log_pdf = (
            -0.5 * (diff / sigmas[:, None]) ** 2
            - np.log(sigmas[:, None])
            + np.log(weights[:, None] + 1e-300)
        )
        log_pdf -= log_pdf.max(axis=0, keepdims=True)
        resp = np.exp(log_pdf)
        resp /= resp.sum(axis=0, keepdims=True)
        # M-step.
        mass = resp.sum(axis=1) + 1e-12
        new_means = (resp @ values) / mass
        new_sigmas = np.sqrt(
            ((values[None, :] - new_means[:, None]) ** 2 * resp).sum(axis=1) / mass
        )
        new_sigmas = np.maximum(new_sigmas, 1e-4)
        new_weights = mass / mass.sum()
        if np.allclose(new_means, means, atol=1e-7):
            means, sigmas, weights = new_means, new_sigmas, new_weights
            break
        means, sigmas, weights = new_means, new_sigmas, new_weights
    order = np.argsort(means)
    means, sigmas, weights = means[order], sigmas[order], weights[order]
    diff = values[None, :] - means[:, None]
    log_pdf = (
        -0.5 * (diff / sigmas[:, None]) ** 2
        - np.log(sigmas[:, None])
        + np.log(weights[:, None] + 1e-300)
    )
    assignment = np.argmax(log_pdf, axis=0)
    return _midpoints_between_classes(values, assignment)


def kde_splits(scores: np.ndarray, k: int, grid_size: int = 512) -> list[float]:
    """Split at the deepest local minima of a Gaussian KDE of the scores.

    At most ``k - 1`` split points are returned; fewer when the density has
    fewer valleys (the data genuinely has fewer modes).
    """
    values = np.asarray(scores, dtype=float)
    if len(np.unique(values)) <= 1 or k <= 1:
        return []
    from scipy.stats import gaussian_kde

    try:
        kde = gaussian_kde(values)
    except np.linalg.LinAlgError:  # singular covariance: constant-ish data
        return []
    grid = np.linspace(0.0, 1.0, grid_size)
    density = kde(grid)
    interior = np.arange(1, grid_size - 1)
    minima = interior[
        (density[interior] < density[interior - 1])
        & (density[interior] <= density[interior + 1])
    ]
    if len(minima) == 0:
        # Unimodal density: fall back to quantile splits for determinism.
        return quantile_splits(values, k)
    # Keep the k-1 deepest valleys, in increasing score order.
    depth_order = minima[np.argsort(density[minima])][: k - 1]
    return sorted(float(grid[i]) for i in np.sort(depth_order))


#: Registry of splitting strategies accepted by :func:`split_scores`.
STRATEGIES: dict[str, Callable[[np.ndarray, int], list[float]]] = {
    "jenks": jenks_splits,
    "kmeans": kmeans1d_splits,
    "em": em_splits,
    "kde": kde_splits,
    "quantile": quantile_splits,
    "equal-width": equal_width_splits,
}


def split_scores(
    scores: np.ndarray,
    k: int = 3,
    strategy: str = "jenks",
    labels: tuple[str, ...] | None = None,
) -> tuple[Bucket, ...]:
    """Compute the bucket partition ``β(p)`` for one property's scores.

    Boolean-valued score vectors always get the false/true partition, since
    splitting 0/1 data by density is meaningless (paper Example 3.5 treats
    them as distinct group kinds).
    """
    scores = np.asarray(scores, dtype=float)
    if scores.size == 0:
        raise InvalidBucketError("cannot bucket an empty score vector")
    if k < 1:
        raise InvalidBucketError(f"bucket count must be >= 1, got {k}")
    if is_boolean(scores):
        return boolean_partition()
    try:
        strategy_fn = STRATEGIES[strategy]
    except KeyError:
        raise InvalidBucketError(
            f"unknown bucketing strategy {strategy!r}; "
            f"choose from {sorted(STRATEGIES)}"
        ) from None
    splits = strategy_fn(scores, k)
    return partition_from_splits(tuple(splits), labels=labels)
