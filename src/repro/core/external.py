"""External-sort index construction — CSR checkpoints without the RAM.

:func:`~repro.core.columnar.build_columnar_instance` is array-native but
still in-core: it argsorts *all* triples twice (once by property, once
per CSR direction) and holds every intermediate column concurrently, so
its transient footprint is a small multiple of the triple set.  At 5–10M
users that multiple is the difference between fitting and thrashing.

:func:`build_index_external` produces the *same index* — byte-identical
``.npz`` payload, same checksum — from an on-disk
:class:`~repro.core.triplestore.TripleStore` with bounded resident
memory:

1. **partition** — one streaming pass buckets triples into per-property
   spill files (the canonical order within each property is preserved,
   which is exactly what one global stable sort by property yields);
2. **bucketize** — properties are processed one at a time (bounded by
   the largest property's support, not the triple count) with the very
   same split/assign calls as the in-RAM path, emitting kept
   ``(user, group)`` entries to a single spill file;
3. **emit g-side** — entries are re-read per property block; since group
   ids increase monotonically across properties, concatenating
   per-block stable sorts by group id *is* the global stable sort the
   in-RAM path computes, so ``g_indices`` streams straight into the
   ``.npz`` member while per-user degrees and initial gains accumulate;
4. **external sort + emit u-side** — the same scan cuts fixed-size runs,
   stable-sorts each by dense user id and spills it; a resumable
   :class:`KWayMerge` then streams the globally stable-by-user order
   back off disk and into the ``u_indices`` member.

The ``.npz`` members are written ``ZIP_STORED`` (the layout
:func:`~repro.core.persistence.open_index_npz` maps in place), and the
trailing ``payload_crc32`` is recomputed by streaming the freshly
written archive — so the checksum provably covers what is on disk, and
equals what ``save_index_npz(compressed=False)`` writes for the in-RAM
build of the same triples.
"""

from __future__ import annotations

import zipfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from tempfile import TemporaryDirectory

import numpy as np

from .buckets import (
    assign_bucket_indices,
    is_boolean,
    partition_from_splits,
    split_scores,
)
from .columnar import (
    _COLUMNAR_COVERAGES,
    _COLUMNAR_WEIGHTS,
    _assign_fallback,
    _columnar_coverage,
    _columnar_weights,
    _scheme_name,
)
from .errors import DatasetError, InvalidInstanceError
from .groups import GroupingConfig, GroupKey
from .index import _INT64_MAX, id_dtype
from .persistence import (
    CHECKPOINT_VERSION,
    _INDEX_FORMAT,
    streamed_index_checksum,
)
from .triplestore import TripleStore

#: Entries per sorted run spilled by the external sort.  At the default
#: (2M entries × 8–12 bytes) a 40M-entry build keeps ~20 runs on disk
#: and one run resident while sorting.
DEFAULT_RUN_ENTRIES = 1 << 21


# -- streaming .npz member writing ----------------------------------------


@contextmanager
def _npz_member(zf: zipfile.ZipFile, name: str, dtype, shape):
    """Open one ``.npy`` member for incremental raw-byte writes.

    Yields a file-like sink positioned right after a version-1.0 array
    header, so callers append C-contiguous chunks of exactly
    ``dtype``/``shape`` worth of data.  The member is ``ZIP_STORED``
    (the archive must be opened with ``ZIP_STORED``), hence mappable by
    ``_stored_member_layouts`` afterwards.
    """
    header = {
        "descr": np.lib.format.dtype_to_descr(np.dtype(dtype)),
        "fortran_order": False,
        "shape": tuple(shape),
    }
    with zf.open(f"{name}.npy", "w", force_zip64=True) as sink:
        np.lib.format.write_array_header_1_0(sink, header)
        yield sink


def _write_member_array(
    zf: zipfile.ZipFile, name: str, array: np.ndarray
) -> None:
    """Write one whole array as a stored ``.npy`` member."""
    array = np.asarray(array)
    if not array.flags.c_contiguous:
        array = np.ascontiguousarray(array)  # keeps 0-d scalars 0-d
    with _npz_member(zf, name, array.dtype, array.shape) as sink:
        sink.write(array.tobytes())


# -- sorted runs + k-way merge --------------------------------------------


class SortedRunWriter:
    """Cut an entry stream into fixed-size runs, each sorted by user.

    Entries arrive in canonical (property-major) order; each run of
    ``run_entries`` is stable-sorted by its ``"u"`` field before
    spilling, so within a run — and, because runs partition the
    canonical order, across the merge of all runs — equal users keep
    their canonical relative order.  That is the invariant that makes
    the merged stream equal to one global stable sort.
    """

    def __init__(
        self, directory: str | Path, entry_dtype, run_entries: int
    ) -> None:
        if run_entries < 1:
            raise DatasetError(
                f"run_entries must be >= 1, got {run_entries}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.entry_dtype = np.dtype(entry_dtype)
        self.run_entries = int(run_entries)
        self.run_paths: list[Path] = []
        self.run_counts: list[int] = []
        self._pending: list[np.ndarray] = []
        self._pending_count = 0

    def append(self, users: np.ndarray, gids: np.ndarray) -> None:
        block = np.empty(len(users), dtype=self.entry_dtype)
        block["u"] = users
        block["g"] = gids
        self._pending.append(block)
        self._pending_count += len(block)
        while self._pending_count >= self.run_entries:
            self._spill(self.run_entries)

    def _spill(self, count: int) -> None:
        buffered = (
            np.concatenate(self._pending)
            if len(self._pending) != 1
            else self._pending[0]
        )
        run, rest = buffered[:count], buffered[count:]
        self._pending = [rest] if len(rest) else []
        self._pending_count = len(rest)
        order = np.argsort(run["u"], kind="stable")
        path = self.directory / f"run{len(self.run_paths):05d}.bin"
        path.write_bytes(run[order].tobytes())
        self.run_paths.append(path)
        self.run_counts.append(int(count))

    def close(self) -> None:
        """Spill the final partial run (if any)."""
        if self._pending_count:
            self._spill(self._pending_count)


class KWayMerge:
    """Streaming, resumable merge of user-sorted runs into global order.

    Each call to :meth:`next_block` buffers a bounded window of every
    run, computes the *barrier* — the smallest last-buffered key among
    runs that still have unread data on disk — and emits every buffered
    entry with key strictly below it.  No unread entry can precede the
    emitted ones (runs are sorted), and since *all* occurrences of an
    emitted key are buffered, concatenating the per-run emit prefixes in
    run order and stable-sorting by key reproduces the exact global
    stable sort.

    The merge is resumable: :meth:`state` captures the per-run emitted
    offsets (plain ints — trivially serializable), and constructing a
    new merge with ``state=`` continues from the same position, reading
    runs from disk only past what was already consumed.
    """

    def __init__(
        self,
        run_paths,
        run_counts,
        entry_dtype,
        buffer_entries: int = 1 << 16,
        state: dict | None = None,
    ) -> None:
        self.run_paths = [Path(p) for p in run_paths]
        self.run_counts = [int(c) for c in run_counts]
        if len(self.run_paths) != len(self.run_counts):
            raise DatasetError("run paths and counts must be parallel")
        self.entry_dtype = np.dtype(entry_dtype)
        self.buffer_entries = max(1, int(buffer_entries))
        k = len(self.run_paths)
        if state is None:
            self._consumed = [0] * k
        else:
            consumed = list(state["consumed"])
            if len(consumed) != k:
                raise DatasetError(
                    "merge state does not match the run set"
                )
            self._consumed = [int(c) for c in consumed]
        self._buffers: list[np.ndarray] = [
            np.empty(0, dtype=self.entry_dtype) for _ in range(k)
        ]

    @property
    def emitted(self) -> int:
        return sum(self._consumed)

    @property
    def total(self) -> int:
        return sum(self.run_counts)

    def state(self) -> dict:
        """Serializable resume point (per-run emitted entry counts)."""
        return {"consumed": list(self._consumed)}

    def _read(self, run: int, offset: int, count: int) -> np.ndarray:
        itemsize = self.entry_dtype.itemsize
        with open(self.run_paths[run], "rb") as handle:
            handle.seek(offset * itemsize)
            raw = handle.read(count * itemsize)
        if len(raw) != count * itemsize:
            raise DatasetError(
                f"sorted run {self.run_paths[run]} is shorter than its "
                f"recorded {self.run_counts[run]} entries"
            )
        return np.frombuffer(raw, dtype=self.entry_dtype)

    def next_block(self):
        """Next merged slice in global stable order, or ``None`` at end."""
        if self.emitted >= self.total:
            return None
        k = len(self.run_paths)
        window = self.buffer_entries
        while True:
            # Top every buffer up to the current window size.
            unread = [0] * k
            for i in range(k):
                have = len(self._buffers[i])
                offset = self._consumed[i] + have
                on_disk = self.run_counts[i] - offset
                if have < window and on_disk > 0:
                    take = min(window - have, on_disk)
                    extra = self._read(i, offset, take)
                    self._buffers[i] = (
                        np.concatenate([self._buffers[i], extra])
                        if have
                        else extra
                    )
                    on_disk -= take
                unread[i] = on_disk
            # Barrier: smallest key that might still be unread.
            barrier = None
            for i in range(k):
                if unread[i] > 0:
                    last = self._buffers[i]["u"][-1]
                    if barrier is None or last < barrier:
                        barrier = last
            parts: list[np.ndarray] = []
            cuts = [0] * k
            for i in range(k):
                buffered = self._buffers[i]
                if not len(buffered):
                    continue
                if barrier is None:
                    cut = len(buffered)
                else:
                    cut = int(
                        np.searchsorted(buffered["u"], barrier, side="left")
                    )
                cuts[i] = cut
                if cut:
                    parts.append(buffered[:cut])
            if parts:
                break
            if barrier is None:  # pragma: no cover — guarded by `emitted`
                return None
            # Every buffered key ties the barrier: widen the window so at
            # least one run buffers past it (or drains entirely).
            window *= 2
        for i in range(k):
            if cuts[i]:
                self._consumed[i] += cuts[i]
                self._buffers[i] = self._buffers[i][cuts[i]:]
        merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
        order = np.argsort(merged["u"], kind="stable")
        return merged[order]


# -- the builder ----------------------------------------------------------


@dataclass(frozen=True)
class ExternalBuildInfo:
    """What :func:`build_index_external` wrote and how."""

    path: Path
    n_total: int
    n_users: int
    n_groups: int
    n_entries: int
    n_runs: int
    run_entries: int
    weight_scheme: str
    coverage_scheme: str
    payload_crc32: int


def build_index_external(
    store: TripleStore | str | Path,
    budget: int,
    out_path: str | Path,
    grouping: GroupingConfig | None = None,
    weight_scheme=None,
    coverage_scheme=None,
    run_entries: int = DEFAULT_RUN_ENTRIES,
    chunk_entries: int = 1 << 20,
    workdir: str | Path | None = None,
) -> ExternalBuildInfo:
    """Build an index checkpoint from a triple store, out of core.

    Produces a ``.npz`` whose array payload — and therefore
    ``payload_crc32`` — is byte-identical to
    ``save_index_npz(build_columnar_instance(store.to_columnar(), ...)
    .index, path, compressed=False)``, while keeping resident memory
    bounded by the largest single property plus O(users) bookkeeping
    vectors, never O(triples).

    Spill files (per-property partitions, the entry file, the sorted
    runs) live in a temporary directory under ``workdir`` (default: next
    to ``out_path``, so same-filesystem rename semantics and disk-space
    accounting apply) and are deleted on exit, success or not.
    """
    if isinstance(store, (str, Path)):
        store = TripleStore.open(store)
    if budget < 1:
        raise InvalidInstanceError(f"budget must be >= 1, got {budget}")
    config = grouping or GroupingConfig()
    weight_name = _scheme_name(weight_scheme, "LBS")
    coverage_name = _scheme_name(coverage_scheme, "Single")
    if weight_name not in _COLUMNAR_WEIGHTS:
        _columnar_weights(weight_name, np.empty(0, dtype=np.int64), 1, 1)
    if coverage_name not in _COLUMNAR_COVERAGES:
        _columnar_coverage(coverage_name, np.empty(0, dtype=np.int64), 1, 1)

    out_path = Path(out_path)
    n_total = store.n_users
    labels = store.property_labels
    n_props = len(labels)
    user_dtype = np.dtype(store.manifest["columns"]["user_col"]["dtype"])
    pair_dtype = np.dtype([("u", user_dtype), ("s", "<f8")])

    with TemporaryDirectory(
        prefix="podium-extbuild-",
        dir=str(workdir) if workdir is not None else str(out_path.parent),
    ) as tmp_name:
        tmp = Path(tmp_name)
        prop_dir = tmp / "props"
        prop_dir.mkdir()

        # Stage 1 — partition triples by property (canonical order kept
        # within each property: per-chunk stable sort + append order).
        support = np.zeros(n_props, dtype=np.int64)
        for users_chunk, props_chunk, scores_chunk in store.iter_entries(
            chunk_entries
        ):
            props64 = np.asarray(props_chunk, dtype=np.int64)
            support += np.bincount(props64, minlength=n_props)
            by_prop = np.argsort(props64, kind="stable")
            users_sorted = np.asarray(users_chunk)[by_prop]
            scores_sorted = np.asarray(scores_chunk)[by_prop]
            counts = np.bincount(props64[by_prop], minlength=n_props)
            offsets = np.zeros(n_props + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            for j in np.flatnonzero(counts):
                lo, hi = int(offsets[j]), int(offsets[j + 1])
                block = np.empty(hi - lo, dtype=pair_dtype)
                block["u"] = users_sorted[lo:hi]
                block["s"] = scores_sorted[lo:hi]
                with open(prop_dir / f"p{int(j):06d}.bin", "ab") as sink:
                    sink.write(block.tobytes())

        # Stage 2 — bucketize one property at a time (identical split /
        # assign / drop-empty decisions as build_columnar_instance),
        # spilling kept (user, gid) entries in property order.
        entry_dtype = np.dtype([("u", user_dtype), ("g", "<i4")])
        entries_path = tmp / "entries.bin"
        group_keys: list[GroupKey] = []
        group_buckets: list = []
        group_sizes: list[int] = []
        kept_counts: list[int] = []
        appears = np.zeros(n_total, dtype=bool)
        with open(entries_path, "wb") as entries_sink:
            for j, label in enumerate(labels):
                if support[j] < config.min_support:
                    continue
                pair_path = prop_dir / f"p{j:06d}.bin"
                pairs = (
                    np.fromfile(pair_path, dtype=pair_dtype)
                    if pair_path.is_file()
                    else np.empty(0, dtype=pair_dtype)
                )
                scores_j = np.ascontiguousarray(pairs["s"])
                if config.fixed_splits is not None and not is_boolean(
                    scores_j
                ):
                    buckets = partition_from_splits(config.fixed_splits)
                else:
                    buckets = split_scores(
                        scores_j,
                        k=config.buckets_per_property,
                        strategy=config.strategy,
                    )
                assignment = assign_bucket_indices(buckets, scores_j)
                if assignment is None:
                    assignment = _assign_fallback(buckets, scores_j)
                counts = np.bincount(
                    assignment[assignment >= 0], minlength=len(buckets)
                )
                gid_map = np.full(len(buckets), -1, dtype=np.int64)
                for position, bucket in enumerate(buckets):
                    if config.drop_empty and counts[position] == 0:
                        continue
                    gid_map[position] = len(group_keys)
                    group_keys.append(GroupKey(label, bucket.label))
                    group_buckets.append(bucket)
                    group_sizes.append(int(counts[position]))
                gids = np.where(assignment >= 0, gid_map[assignment], -1)
                keep = gids >= 0
                kept_users = pairs["u"][keep]
                appears[np.asarray(kept_users, dtype=np.int64)] = True
                block = np.empty(len(kept_users), dtype=entry_dtype)
                block["u"] = kept_users
                block["g"] = gids[keep]
                entries_sink.write(block.tobytes())
                kept_counts.append(len(kept_users))
                pair_path.unlink(missing_ok=True)

        n_groups = len(group_keys)
        if n_groups > np.iinfo(np.int32).max:  # pragma: no cover
            raise DatasetError(
                f"{n_groups} groups exceed the int32 entry encoding"
            )
        sizes = np.asarray(group_sizes, dtype=np.int64)
        total_entries = int(sizes.sum())
        assert total_entries == sum(kept_counts)

        # Stage 3 — dense user ids in sorted-id order.  Pattern stores
        # (zero-padded fixed-width ids) sort lexicographically exactly
        # as numerically, so the sort is the identity over `present`;
        # array stores gather and argsort the present ids (bounded by
        # the present users, not the triples).
        present = np.flatnonzero(appears)
        del appears
        if store.has_pattern_ids:
            sorted_rows = present
            users_np_dtype = np.dtype(f"<U{store.id_width}")
        else:
            ids_present = np.asarray(store.user_id_strings(present))
            id_order = np.argsort(ids_present, kind="stable")
            sorted_rows = present[id_order]
            width = (
                int(np.char.str_len(ids_present).max())
                if len(ids_present)
                else 1
            )
            users_np_dtype = np.dtype(f"<U{width}")
        n_users = len(sorted_rows)
        dense_of_row = np.full(
            n_total, -1, dtype=id_dtype(max(n_total, 1))
        )
        dense_of_row[sorted_rows] = np.arange(
            n_users, dtype=dense_of_row.dtype
        )

        # Weights / coverage / exact mass check — before any member is
        # written, so a non-vectorizable instance fails without output.
        population = max(n_total, 1)
        weights = _columnar_weights(weight_name, sizes, budget, population)
        cov = _columnar_coverage(coverage_name, sizes, budget, population)
        mass = sum(w * int(s) for w, s in zip(weights, sizes))
        if mass > _INT64_MAX:
            raise InvalidInstanceError(
                "columnar instance weights exceed int64; use the "
                "dict-based path whose exact big-int fallback handles this"
            )
        wei = np.fromiter(weights, dtype=np.int64, count=n_groups)

        u_dtype, g_dtype = id_dtype(n_users), id_dtype(n_groups)
        degree = np.zeros(n_users, dtype=np.int64)
        gains = np.zeros(n_users, dtype=np.int64)
        run_dtype = np.dtype(
            [("u", np.dtype(u_dtype).newbyteorder("<")), ("g", "<i4")]
        )
        runs = SortedRunWriter(tmp / "runs", run_dtype, run_entries)

        archive = zipfile.ZipFile(out_path, "w", zipfile.ZIP_STORED)
        try:
            # Stage 4 — stream the g-side CSR straight into the archive.
            # Group ids increase monotonically across property blocks,
            # so per-block stable sorts by gid concatenate into the
            # global stable sort.  The same scan feeds the external sort
            # (runs), the degree vector and the initial gains.
            with _npz_member(
                archive, "g_indices", np.dtype(u_dtype), (total_entries,)
            ) as sink, open(entries_path, "rb") as entries_source:
                for kept in kept_counts:
                    raw = entries_source.read(kept * entry_dtype.itemsize)
                    block = np.frombuffer(raw, dtype=entry_dtype)
                    dense_u = dense_of_row[
                        np.asarray(block["u"], dtype=np.int64)
                    ].astype(np.int64)
                    gid = np.asarray(block["g"], dtype=np.int64)
                    by_gid = np.argsort(gid, kind="stable")
                    sink.write(dense_u[by_gid].astype(u_dtype).tobytes())
                    degree += np.bincount(dense_u, minlength=n_users)
                    np.add.at(gains, dense_u, wei[gid])
                    runs.append(dense_u, gid)
            runs.close()
            entries_path.unlink(missing_ok=True)
            del dense_of_row

            # Stage 5 — k-way merge the runs into the u-side CSR.
            merge = KWayMerge(runs.run_paths, runs.run_counts, run_dtype)
            written = 0
            with _npz_member(
                archive, "u_indices", np.dtype(g_dtype), (total_entries,)
            ) as sink:
                while (block := merge.next_block()) is not None:
                    sink.write(block["g"].astype(g_dtype).tobytes())
                    written += len(block)
            if written != total_entries:
                raise DatasetError(
                    f"external merge emitted {written} of "
                    f"{total_entries} entries"
                )

            # Stage 6 — remaining members.  Indptrs come from the
            # accumulated degree/size vectors; the user-id member is
            # synthesized (pattern) or gathered (array) in chunks.
            u_indptr = np.zeros(n_users + 1, dtype=np.int64)
            np.cumsum(degree, out=u_indptr[1:])
            g_indptr = np.zeros(n_groups + 1, dtype=np.int64)
            np.cumsum(sizes, out=g_indptr[1:])
            if n_users:
                with _npz_member(
                    archive, "users", users_np_dtype, (n_users,)
                ) as sink:
                    for lo in range(0, n_users, chunk_entries):
                        rows = sorted_rows[lo:lo + chunk_entries]
                        ids = store.user_id_strings(rows)
                        sink.write(
                            np.ascontiguousarray(
                                ids, dtype=users_np_dtype
                            ).tobytes()
                        )
            else:
                _write_member_array(
                    archive, "users", np.asarray((), dtype=np.str_)
                )
            _write_member_array(
                archive,
                "key_property",
                np.asarray(
                    [k.property_label for k in group_keys], dtype=np.str_
                ),
            )
            _write_member_array(
                archive,
                "key_bucket",
                np.asarray(
                    [k.bucket_label for k in group_keys], dtype=np.str_
                ),
            )
            _write_member_array(archive, "u_indptr", u_indptr)
            _write_member_array(archive, "g_indptr", g_indptr)
            _write_member_array(archive, "cov", cov)
            _write_member_array(archive, "wei", wei)
            _write_member_array(archive, "initial_gains", gains)
            _write_member_array(
                archive, "format", np.asarray(_INDEX_FORMAT)
            )
            _write_member_array(
                archive,
                "format_version",
                np.asarray(CHECKPOINT_VERSION, dtype=np.int64),
            )
        finally:
            archive.close()

    # Stage 7 — checksum what actually landed on disk, then append the
    # envelope member.  Streaming the archive back means the recorded
    # CRC covers the written bytes, not an in-memory shadow — and it
    # equals save_index_npz's checksum of the in-RAM build by parity.
    crc = streamed_index_checksum(out_path)
    with zipfile.ZipFile(out_path, "a", zipfile.ZIP_STORED) as archive:
        _write_member_array(
            archive, "payload_crc32", np.asarray(crc, dtype=np.uint32)
        )
    return ExternalBuildInfo(
        path=out_path,
        n_total=n_total,
        n_users=n_users,
        n_groups=n_groups,
        n_entries=total_entries,
        n_runs=len(runs.run_counts),
        run_entries=int(run_entries),
        weight_scheme=weight_name,
        coverage_scheme=coverage_name,
        payload_crc32=crc,
    )
