"""Subset scoring (paper Def. 3.3) and marginal-gain bookkeeping.

``score_G(U) = Σ_{G in G-set} wei(G) · min(|U ∩ G|, cov(G))``

The score is submodular, monotone and non-negative for any weight and
coverage choice (Prop. 4.4), which is what grants the greedy algorithm its
(1 − 1/e) guarantee.  :class:`CoverageState` tracks per-group hit counts
incrementally so the greedy loop pays O(degree(u)) per candidate instead
of recomputing the full sum.
"""

from __future__ import annotations

from collections.abc import Iterable

from .groups import GroupKey
from .index import instance_index
from .instance import DiversificationInstance
from .weights import Weight


def subset_score(
    instance: DiversificationInstance, user_ids: Iterable[str]
) -> Weight:
    """Compute ``score_G(U)`` from scratch for a user subset.

    Runs through the vectorized sparse index whenever the instance's
    weights are exactly representable in int64; EBS big-int and
    non-integer-weight instances take the exact per-group loop.
    """
    selected = set(user_ids)
    index = instance_index(instance)
    if index.vectorizable:
        return index.subset_score(selected)
    total: Weight = 0
    for group in instance.groups:
        hits = len(group.members & selected)
        if hits:
            total += instance.wei[group.key] * min(hits, instance.cov[group.key])
    return total


def covered_groups(
    instance: DiversificationInstance, user_ids: Iterable[str]
) -> set[GroupKey]:
    """Keys of groups with at least ``cov(G)`` representatives in ``U``.

    Hit counting involves no weights, so the sparse index serves every
    instance here — including EBS big-int ones.
    """
    return instance_index(instance).covered_group_keys(set(user_ids))


class CoverageState:
    """Incremental view of ``score_G`` while users are added one by one.

    Mirrors the data structures of paper §4: per-group remaining coverage,
    per-user marginal contribution, and the user ↔ group links from the
    group set.  Adding a user is O(degree(u)); reading any user's marginal
    gain is O(1).
    """

    def __init__(self, instance: DiversificationInstance) -> None:
        self._instance = instance
        self._remaining: dict[GroupKey, int] = dict(instance.cov)
        self._selected: list[str] = []
        self._score: Weight = 0
        self._last_exhausted: tuple[GroupKey, ...] = ()

    @property
    def instance(self) -> DiversificationInstance:
        return self._instance

    @property
    def selected(self) -> list[str]:
        """Users added so far, in selection order."""
        return list(self._selected)

    @property
    def score(self) -> Weight:
        """Current ``score_G`` of the selected users."""
        return self._score

    def remaining_coverage(self, key: GroupKey) -> int:
        """How many more representatives group ``key`` still needs."""
        return self._remaining[key]

    def marginal_gain(self, user_id: str) -> Weight:
        """Score increase if ``user_id`` were added now.

        Each group the user belongs to contributes its weight while its
        remaining coverage is positive — exactly the ``marg_{u,U}`` value
        maintained by Algorithm 1.
        """
        gain: Weight = 0
        for key in self._instance.groups.groups_of(user_id):
            if self._remaining[key] > 0:
                gain += self._instance.wei[key]
        return gain

    def add(self, user_id: str) -> Weight:
        """Add ``user_id`` to the subset; return its realized gain.

        Returns the set of groups whose coverage the addition exhausted via
        :meth:`last_exhausted`, which the eager greedy uses to propagate
        weight decrements to co-members.
        """
        gain: Weight = 0
        exhausted: list[GroupKey] = []
        for key in self._instance.groups.groups_of(user_id):
            remaining = self._remaining[key]
            if remaining > 0:
                gain += self._instance.wei[key]
                self._remaining[key] = remaining - 1
                if remaining == 1:
                    exhausted.append(key)
        self._selected.append(user_id)
        self._score += gain
        self._last_exhausted = tuple(exhausted)
        return gain

    def last_exhausted(self) -> tuple[GroupKey, ...]:
        """Groups whose required coverage reached 0 on the latest add.

        Returns the cached immutable tuple — the greedy loop reads this
        once per pick, so no defensive copy is made.
        """
        return self._last_exhausted
