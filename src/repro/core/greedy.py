"""Greedy user selection — Algorithm 1 of the paper (§4).

Two interchangeable implementations are provided:

* :func:`greedy_select` with ``method="eager"`` follows the paper line by
  line: it maintains every candidate's marginal contribution
  ``marg_{u,U}`` and, whenever a group's remaining coverage hits zero,
  subtracts the group's weight from the contribution of its other members
  (Algorithm 1, line 10).  Complexity
  ``O(B · max_G |G| · max_u degree(u))`` per Prop. 4.4.
* ``method="lazy"`` is the standard lazy-greedy accelerant for monotone
  submodular objectives: stale upper bounds sit in a max-heap and are only
  refreshed when popped.  It returns a subset with the same score
  guarantee and is typically much faster on large, overlapping group sets.
* ``method="matrix"`` runs the same eager recurrence over the
  integer-encoded sparse index (:mod:`repro.core.index`): candidates'
  marginal gains live in one int64 vector, the best pick is an ``argmax``
  and exhausted-group decrements are scattered through CSR incidence
  arrays.  When the instance's weights cannot be represented exactly in
  int64 (EBS big-ints, non-integer weights), it transparently falls back
  to the exact lazy path — correctness never depends on the backend.

All three achieve the (1 − 1/e) approximation of Prop. 4.4 because the
score function is monotone submodular for every weight/coverage choice,
and all three select *identical sequences* when ``rng`` is None.

Two additional backends trade a little quality guarantee for scale:

* ``method="sharded"`` is the GreeDi two-round scheme [Mirzasoleiman et
  al., "Distributed submodular maximization"]: partition the candidates
  into S shards (deterministic under ``shard_seed``), solve each shard
  with the matrix backend (fanned out over a fork-warmed process pool,
  see :mod:`repro.core.sharding`), then run one exact greedy over the
  union of the ≤ S·B shard picks.  Worst-case guarantee
  (1 − 1/e)/min(S, B)·OPT, but on partitionable instances the measured
  quality ratio vs exact greedy is near 1 (tracked by
  ``repro bench --suite scale``).  ``shards=1`` reproduces the matrix
  selections exactly — the final round restricted to greedy's own output
  re-picks the same sequence.
* ``method="stochastic"`` is lazier-than-lazy stochastic greedy
  [Mirzasoleiman et al., AAAI'15]: each step evaluates marginals only on
  a uniform random sample of ``⌈(n/B)·ln(1/ε)⌉`` remaining candidates,
  giving (1 − 1/e − ε) in expectation at O(n·ln(1/ε)) total marginal
  evaluations.  ``sample_ratio=1.0`` degenerates to the exact
  deterministic greedy for any rng.

Both fall back to the exact lazy path on non-vectorizable instances,
like ``matrix``.  :func:`select_from_index` exposes the vectorized
backends directly on an :class:`~repro.core.index.InstanceIndex`, so the
columnar construction path can select without ever materializing
dict-based ``UserRepository``/``GroupSet`` objects.

Ties between candidates with equal marginal gain are broken
deterministically by user id unless an ``rng`` is supplied, in which case
they are broken uniformly at random — the controlled randomness the paper
mentions in §10.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from .errors import InvalidBudgetError, PodiumError
from .index import InstanceIndex, instance_index
from .instance import DiversificationInstance
from .profiles import UserRepository
from .scoring import CoverageState
from .sharding import solve_range_shards, solve_shards
from .weights import Weight


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a selection run.

    Attributes
    ----------
    selected:
        User ids in the order they were picked.
    score:
        Final ``score_G`` of the subset.
    gains:
        Realized marginal gain of each pick, parallel to ``selected``.
    instance:
        The diversification instance the selection ran against (used by
        explanations and metrics downstream).  ``None`` for selections
        produced straight from an :class:`InstanceIndex`
        (:func:`select_from_index`), where no dict-based instance was
        ever materialized.
    """

    selected: tuple[str, ...]
    score: Weight
    gains: tuple[Weight, ...]
    instance: DiversificationInstance | None = None

    def __post_init__(self) -> None:
        if len(self.selected) != len(self.gains):
            raise PodiumError("selected and gains must be parallel")

    def __len__(self) -> int:
        return len(self.selected)

    def __contains__(self, user_id: object) -> bool:
        return user_id in self.selected


def _resolve_candidates(
    repository: UserRepository, candidates: list[str] | None
) -> list[str]:
    if candidates is None:
        return repository.user_ids
    return [u for u in candidates if u in repository]


def _pick_tie(
    tied: list[str], rng: np.random.Generator | None
) -> str:
    if rng is None or len(tied) == 1:
        return min(tied)
    return tied[int(rng.integers(len(tied)))]


def greedy_select(
    repository: UserRepository,
    instance: DiversificationInstance,
    budget: int | None = None,
    candidates: list[str] | None = None,
    method: str = "eager",
    rng: np.random.Generator | None = None,
    *,
    shards: int = 4,
    jobs: int | None = 1,
    shard_seed: int = 0,
    epsilon: float = 0.1,
    sample_ratio: float | None = None,
) -> SelectionResult:
    """Select up to ``budget`` users maximizing ``score_G`` greedily.

    Parameters
    ----------
    repository:
        The population ``U`` to select from.
    instance:
        The diversification instance ``(G, wei, cov)``.
    budget:
        Bound ``B`` on the subset size; defaults to ``instance.budget``.
    candidates:
        Optional pre-filtered candidate pool (CUSTOM-DIVERSITY passes the
        refined user set ``U'`` here); ids absent from the repository are
        ignored.
    method:
        ``"eager"`` (paper Algorithm 1), ``"lazy"`` (heap accelerant),
        ``"matrix"`` (vectorized sparse backend with exact fallback),
        ``"sharded"`` (GreeDi two-round over ``shards`` user shards) or
        ``"stochastic"`` (per-step sampled marginals).
    rng:
        Optional generator for random tie-breaking (eager/lazy/matrix and
        the sharded merge round) or for per-step candidate sampling
        (stochastic; defaults to a seed-0 generator so runs are
        reproducible by default).
    shards / jobs / shard_seed:
        Sharded backend only: shard count, worker processes for the
        shard solves and the seed of the deterministic user → shard
        permutation.
    epsilon / sample_ratio:
        Stochastic backend only: the guarantee slack ε fixing the sample
        size ``⌈(n/B)·ln(1/ε)⌉``, or an explicit sample fraction of the
        pool overriding it (``1.0`` → exact deterministic greedy).
    """
    budget = instance.budget if budget is None else budget
    if budget < 1:
        raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
    pool = _resolve_candidates(repository, candidates)
    if method == "eager":
        return _greedy_eager(pool, instance, budget, rng)
    if method == "lazy":
        return _greedy_lazy(pool, instance, budget, rng)
    if method == "matrix":
        return _greedy_matrix(pool, instance, budget, rng)
    if method == "sharded":
        return _greedy_sharded(
            pool, instance, budget, rng,
            shards=shards, jobs=jobs, shard_seed=shard_seed,
        )
    if method == "stochastic":
        return _greedy_stochastic(
            pool, instance, budget, rng,
            epsilon=epsilon, sample_ratio=sample_ratio,
        )
    raise PodiumError(
        f"unknown greedy method {method!r}; use 'eager', 'lazy', "
        f"'matrix', 'sharded' or 'stochastic'"
    )


def _greedy_eager(
    pool: list[str],
    instance: DiversificationInstance,
    budget: int,
    rng: np.random.Generator | None,
) -> SelectionResult:
    """Paper-faithful Algorithm 1 with explicit marg_{u,U} updates."""
    groups = instance.groups
    state = CoverageState(instance)
    # Line 2: initial marginal contribution of every candidate.
    marg: dict[str, Weight] = {u: state.marginal_gain(u) for u in pool}
    remaining = set(pool)
    gains: list[Weight] = []

    for _ in range(budget):
        if not remaining:  # Line 4: pool exhausted before the budget.
            break
        best = max(marg[u] for u in remaining)
        tied = [u for u in remaining if marg[u] == best]
        chosen = _pick_tie(tied, rng)  # Line 5 (+ tie policy).
        remaining.discard(chosen)  # Line 6.
        gains.append(state.add(chosen))
        # Lines 7-10: for every group the pick exhausted, its weight no
        # longer counts toward co-members' marginal contributions.
        for key in state.last_exhausted():
            weight = instance.wei[key]
            for member in groups.group(key).members:
                if member in remaining:
                    marg[member] -= weight

    return SelectionResult(
        selected=tuple(state.selected),
        score=state.score,
        gains=tuple(gains),
        instance=instance,
    )


def _greedy_lazy(
    pool: list[str],
    instance: DiversificationInstance,
    budget: int,
    rng: np.random.Generator | None,
) -> SelectionResult:
    """Lazy-greedy: heap of stale upper bounds, refreshed on pop.

    Heap priorities are exact ``(-gain, user_id)`` tuples (Python ints
    for EBS weights never pass through float, which would overflow for
    ``(B+1)^rank``).  Because marginal gains only shrink as the subset
    grows (submodularity), a stored priority is a lower bound of the true
    one; a popped entry whose refreshed priority equals its stored
    priority is therefore the global maximum — with ties resolved by
    user id, *exactly* like the eager implementation, so both methods
    select identical sequences when ``rng`` is None.
    """
    state = CoverageState(instance)
    heap: list[tuple[Weight, str]] = [
        (-state.marginal_gain(user_id), user_id) for user_id in pool
    ]
    heapq.heapify(heap)

    gains: list[Weight] = []
    while heap and len(state.selected) < budget:
        stored, user_id = heapq.heappop(heap)
        fresh = state.marginal_gain(user_id)
        if -fresh != stored:
            # Stale: re-insert with the exact current priority.
            heapq.heappush(heap, (-fresh, user_id))
            continue
        if rng is not None:
            # Randomized tie-breaking: gather every fresh candidate tied
            # on gain, pick uniformly, push the rest back.
            tied = [user_id]
            while heap and heap[0][0] == stored:
                other_priority, other = heapq.heappop(heap)
                other_fresh = state.marginal_gain(other)
                if -other_fresh == stored:
                    tied.append(other)
                else:
                    heapq.heappush(heap, (-other_fresh, other))
            chosen = tied[int(rng.integers(len(tied)))]
            for loser in tied:
                if loser != chosen:
                    heapq.heappush(heap, (stored, loser))
            gains.append(state.add(chosen))
            continue
        gains.append(state.add(user_id))

    return SelectionResult(
        selected=tuple(state.selected),
        score=state.score,
        gains=tuple(gains),
        instance=instance,
    )


def _matrix_loop(
    index: InstanceIndex,
    ordered: list[str],
    budget: int,
    rng: np.random.Generator | None,
    sample_size: int | None = None,
    sample_rng: np.random.Generator | None = None,
) -> tuple[list[str], list[Weight], int]:
    """The vectorized eager recurrence shared by the array backends.

    ``ordered`` must be sorted ascending so the first ``argmax`` is the
    minimal tied user id — the eager tie-break.  When ``sample_size`` is
    given, each step restricts the argmax to a uniform ``sample_rng``
    sample of that many remaining candidates (stochastic greedy); a
    sample covering every remaining candidate degenerates to the exact
    deterministic argmax, so ``sample_size >= n`` reproduces the plain
    matrix selections for any ``sample_rng``.
    """
    assert index.wei is not None and index.initial_gains is not None
    n = len(ordered)
    # Dense position of each candidate in the index (-1: in no group).
    pos = np.fromiter(
        (index.user_pos.get(u, -1) for u in ordered), dtype=np.int64, count=n
    )
    present = pos >= 0
    gain = np.zeros(n, dtype=np.int64)
    gain[present] = index.initial_gains[pos[present]]
    # Inverse map dense index id -> candidate row (-1: not a candidate).
    dense_to_row = np.full(index.n_users, -1, dtype=np.int64)
    dense_to_row[pos[present]] = np.flatnonzero(present)

    remaining = index.cov.copy()
    active = np.ones(n, dtype=bool)
    selected: list[str] = []
    gains: list[Weight] = []
    score = 0
    for _ in range(budget):
        if not active.any():
            break
        if sample_size is not None:
            candidates = np.flatnonzero(active)
            if sample_size < candidates.size:
                assert sample_rng is not None
                pick = sample_rng.choice(
                    candidates.size, size=sample_size, replace=False
                )
                # Sorted sample keeps argmax ties on the minimal user id.
                candidates = candidates[np.sort(pick)]
            row = int(candidates[int(np.argmax(gain[candidates]))])
            realized = int(gain[row])
        elif rng is None:
            masked = np.where(active, gain, np.int64(-1))
            row = int(np.argmax(masked))
            realized = int(masked[row])
        else:
            masked = np.where(active, gain, np.int64(-1))
            tied = np.flatnonzero(masked == masked.max())
            row = int(tied[int(rng.integers(tied.size))])
            realized = int(masked[row])
        active[row] = False
        selected.append(ordered[row])
        gains.append(realized)
        score += realized

        if pos[row] < 0:
            continue
        touched = index.groups_of_row(int(pos[row]))
        hit = touched[remaining[touched] > 0]
        remaining[hit] -= 1
        exhausted = hit[remaining[hit] == 0]
        if exhausted.size:
            members = index.members_of_rows(exhausted)
            weights = np.repeat(index.wei[exhausted], index.row_sizes(exhausted))
            rows = dense_to_row[members]
            keep = rows >= 0
            np.subtract.at(gain, rows[keep], weights[keep])

    return selected, gains, score


def _range_loop(
    index: InstanceIndex,
    lo: int,
    hi: int,
    budget: int,
    rng: np.random.Generator | None,
    sample_size: int | None = None,
    sample_rng: np.random.Generator | None = None,
) -> tuple[list[int], list[Weight], int]:
    """The eager recurrence over a contiguous dense-row range.

    The dense-id twin of :func:`_matrix_loop` for the (common) case
    where the candidate pool is every row in ``[lo, hi)``: no id
    strings, no ``user_pos`` lookups and no ``dense_to_row`` inverse
    array are ever built, so a memory-mapped index selects without
    materializing a single per-user Python object.  Rows are already
    sorted by user id (the index invariant), so the first ``argmax`` is
    the minimal tied id and ``_range_loop(index, 0, n, ...)`` picks
    exactly the rows of ``_matrix_loop(index, list(index.users), ...)``.
    Returns dense row ids, not user ids — callers resolve only the
    ≤ budget winners.
    """
    assert index.wei is not None and index.initial_gains is not None
    n = hi - lo
    gain = np.asarray(index.initial_gains[lo:hi]).astype(np.int64)
    remaining = np.array(index.cov, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    picked: list[int] = []
    gains: list[Weight] = []
    score = 0
    for _ in range(budget):
        if not active.any():
            break
        if sample_size is not None:
            candidates = np.flatnonzero(active)
            if sample_size < candidates.size:
                assert sample_rng is not None
                pick = sample_rng.choice(
                    candidates.size, size=sample_size, replace=False
                )
                # Sorted sample keeps argmax ties on the minimal user id.
                candidates = candidates[np.sort(pick)]
            row = int(candidates[int(np.argmax(gain[candidates]))])
            realized = int(gain[row])
        elif rng is None:
            masked = np.where(active, gain, np.int64(-1))
            row = int(np.argmax(masked))
            realized = int(masked[row])
        else:
            masked = np.where(active, gain, np.int64(-1))
            tied = np.flatnonzero(masked == masked.max())
            row = int(tied[int(rng.integers(tied.size))])
            realized = int(masked[row])
        active[row] = False
        picked.append(lo + row)
        gains.append(realized)
        score += realized

        touched = np.asarray(index.groups_of_row(lo + row), dtype=np.int64)
        hit = touched[remaining[touched] > 0]
        remaining[hit] -= 1
        exhausted = hit[remaining[hit] == 0]
        if exhausted.size:
            members = np.asarray(
                index.members_of_rows(exhausted), dtype=np.int64
            )
            weights = np.repeat(
                index.wei[exhausted], index.row_sizes(exhausted)
            )
            inside = (members >= lo) & (members < hi)
            np.subtract.at(gain, members[inside] - lo, weights[inside])

    return picked, gains, score


def _rows_loop(
    index: InstanceIndex,
    rows: np.ndarray,
    budget: int,
    rng: np.random.Generator | None,
) -> tuple[list[int], list[Weight], int]:
    """The eager recurrence over an arbitrary ascending dense-row set.

    Generalizes :func:`_range_loop` to a non-contiguous candidate pool
    (the customization path's refined user set ``U'`` as a row mask):
    no candidate id strings and no ``user_pos`` lookups are ever built,
    so a memory-mapped index refines and selects without decoding any
    id but the ≤ budget winners.  ``rows`` must be ascending so the
    first ``argmax`` is the minimal tied user id; the picks equal
    ``_matrix_loop(index, [index.users[r] for r in rows], ...)`` row
    for row.  Returns dense row ids.
    """
    assert index.wei is not None and index.initial_gains is not None
    rows = np.asarray(rows, dtype=np.int64)
    n = rows.size
    gain = np.asarray(index.initial_gains[rows]).astype(np.int64)
    dense_to_row = np.full(index.n_users, -1, dtype=np.int64)
    dense_to_row[rows] = np.arange(n, dtype=np.int64)
    remaining = np.array(index.cov, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    picked: list[int] = []
    gains: list[Weight] = []
    score = 0
    for _ in range(budget):
        if not active.any():
            break
        if rng is None:
            masked = np.where(active, gain, np.int64(-1))
            row = int(np.argmax(masked))
            realized = int(masked[row])
        else:
            masked = np.where(active, gain, np.int64(-1))
            tied = np.flatnonzero(masked == masked.max())
            row = int(tied[int(rng.integers(tied.size))])
            realized = int(masked[row])
        active[row] = False
        picked.append(int(rows[row]))
        gains.append(realized)
        score += realized

        touched = np.asarray(index.groups_of_row(int(rows[row])), dtype=np.int64)
        hit = touched[remaining[touched] > 0]
        remaining[hit] -= 1
        exhausted = hit[remaining[hit] == 0]
        if exhausted.size:
            members = np.asarray(
                index.members_of_rows(exhausted), dtype=np.int64
            )
            weights = np.repeat(
                index.wei[exhausted], index.row_sizes(exhausted)
            )
            candidate = dense_to_row[members]
            keep = candidate >= 0
            np.subtract.at(gain, candidate[keep], weights[keep])

    return picked, gains, score


def _greedy_matrix(
    pool: list[str],
    instance: DiversificationInstance,
    budget: int,
    rng: np.random.Generator | None,
) -> SelectionResult:
    """Vectorized eager greedy over the sparse instance index.

    Maintains the same ``marg_{u,U}`` recurrence as the eager
    implementation, but as one int64 gain vector: picking is an
    ``argmax`` (candidates sit in sorted user-id order, so the first
    maximum is the minimal tied id — the eager tie-break), coverage
    decrements are CSR row gathers and exhausted-group propagation is a
    single ``np.subtract.at`` scatter.  Instances whose weights are not
    exactly representable in int64 fall back to the exact lazy path.
    """
    index = instance_index(instance)
    if not index.vectorizable:
        return _greedy_lazy(pool, instance, budget, rng)
    selected, gains, score = _matrix_loop(index, sorted(pool), budget, rng)
    return SelectionResult(
        selected=tuple(selected),
        score=score,
        gains=tuple(gains),
        instance=instance,
    )


def _shard_pools(
    ordered: list[str], shards: int, shard_seed: int
) -> list[list[str]]:
    """Deterministically partition sorted candidates into sorted shards.

    A seeded permutation deals users round-robin so shard sizes differ by
    at most one and shard composition is independent of the original
    clustering of ids — the random partition GreeDi's analysis assumes.
    """
    if shards < 1:
        raise PodiumError(f"shards must be >= 1, got {shards}")
    shards = min(shards, len(ordered)) or 1
    perm = np.random.default_rng(shard_seed).permutation(len(ordered))
    return [
        sorted(ordered[p] for p in perm[i::shards]) for i in range(shards)
    ]


def _greedy_sharded(
    pool: list[str],
    instance: DiversificationInstance,
    budget: int,
    rng: np.random.Generator | None,
    shards: int,
    jobs: int | None,
    shard_seed: int,
) -> SelectionResult:
    """GreeDi two-round greedy: solve shards, exact greedy on the union.

    Round 1 solves every shard independently with the deterministic
    matrix backend (fanned out over forked workers when ``jobs > 1``);
    round 2 runs one exact greedy over the ≤ 2·shards·budget shard picks
    (each shard over-returns 2B winners to enrich the union).
    ``rng`` only affects round-2 tie-breaks — shard solves stay
    deterministic so the union, and hence the result under ``rng=None``,
    depends only on ``(pool, instance, budget, shards, shard_seed)``.

    With ``shards=1`` the union is greedy's own 2B-pick run, whose first
    B picks are exactly the B-budget sequence; greedy re-run restricted
    to a pool containing its own output re-picks the same sequence (each
    pick is still the max-gain, min-id candidate in any subset
    containing it), so the matrix selections are reproduced exactly.  Non-vectorizable instances run both rounds on the exact
    lazy path — the scheme, not the backend, is what shards.
    """
    index = instance_index(instance)
    if index.vectorizable:
        selected, gains, score = _sharded_loop(
            index, sorted(pool), budget, rng,
            shards=shards, jobs=jobs, shard_seed=shard_seed,
        )
        return SelectionResult(
            selected=tuple(selected),
            score=score,
            gains=tuple(gains),
            instance=instance,
        )
    pools = _shard_pools(sorted(pool), shards, shard_seed)
    shard_budget = 2 * budget

    def solve(shard_pool: list[str]) -> list[str]:
        return list(
            _greedy_lazy(shard_pool, instance, shard_budget, None).selected
        )

    shard_picks = solve_shards(solve, pools, jobs=jobs)
    union = sorted({u for picks in shard_picks for u in picks})
    return _greedy_lazy(union, instance, budget, rng)


def _sharded_loop(
    index: InstanceIndex,
    ordered: list[str],
    budget: int,
    rng: np.random.Generator | None,
    shards: int,
    jobs: int | None,
    shard_seed: int,
) -> tuple[list[str], list[Weight], int]:
    """Both GreeDi rounds on the vectorized backend.

    Each shard over-returns up to 2B winners (its B-budget sequence is
    the prefix, so shards=1 exactness is unaffected): the richer union
    measurably lifts the merge round's quality for a ~2x round-1 cost.
    """
    pools = _shard_pools(ordered, shards, shard_seed)
    shard_budget = 2 * budget

    def solve(shard_pool: list[str]) -> list[str]:
        return _matrix_loop(index, shard_pool, shard_budget, None)[0]

    shard_picks = solve_shards(solve, pools, jobs=jobs)
    union = sorted({u for picks in shard_picks for u in picks})
    return _matrix_loop(index, union, budget, rng)


def _stochastic_sample_size(
    n: int, budget: int, epsilon: float, sample_ratio: float | None
) -> int:
    """Per-step sample size ``⌈(n/B)·ln(1/ε)⌉``, clamped to ``[1, n]``."""
    if sample_ratio is not None:
        if not 0.0 < sample_ratio <= 1.0:
            raise PodiumError(
                f"sample_ratio must lie in (0, 1], got {sample_ratio}"
            )
        size = math.ceil(sample_ratio * n)
    else:
        if not 0.0 < epsilon < 1.0:
            raise PodiumError(f"epsilon must lie in (0, 1), got {epsilon}")
        size = math.ceil((n / budget) * math.log(1.0 / epsilon))
    return max(1, min(size, n))


def _greedy_stochastic(
    pool: list[str],
    instance: DiversificationInstance,
    budget: int,
    rng: np.random.Generator | None,
    epsilon: float,
    sample_ratio: float | None,
) -> SelectionResult:
    """Stochastic greedy: each step argmaxes over a random sample.

    ``rng`` drives the sampling only; ties within a sample always break
    deterministically on the minimal user id.  When ``rng`` is ``None`` a
    seed-0 generator is used so repeated calls reproduce the same
    selections by default.  Non-vectorizable instances take the exact
    lazy path (sampling a path that exists for speed would be pointless
    when exactness is already forced).
    """
    index = instance_index(instance)
    if not index.vectorizable:
        return _greedy_lazy(pool, instance, budget, rng)
    ordered = sorted(pool)
    size = _stochastic_sample_size(len(ordered), budget, epsilon, sample_ratio)
    sample_rng = rng if rng is not None else np.random.default_rng(0)
    selected, gains, score = _matrix_loop(
        index, ordered, budget, None, sample_size=size, sample_rng=sample_rng
    )
    return SelectionResult(
        selected=tuple(selected),
        score=score,
        gains=tuple(gains),
        instance=instance,
    )


def select_from_index(
    index: InstanceIndex,
    budget: int,
    method: str = "matrix",
    candidates: list[str] | None = None,
    rng: np.random.Generator | None = None,
    *,
    shards: int = 4,
    jobs: int | None = 1,
    shard_seed: int = 0,
    epsilon: float = 0.1,
    sample_ratio: float | None = None,
    instance: DiversificationInstance | None = None,
    constraints=None,
) -> SelectionResult:
    """Run a vectorized backend straight on an :class:`InstanceIndex`.

    This is the scale path's entry point: a columnar build (or a loaded
    ``.npz`` checkpoint) holds only the index, and selection should not
    force the dict-based instance into existence.  Only the array
    backends are available — the index must be :attr:`vectorizable`
    (columnar builds always are) — and the returned
    :class:`SelectionResult` carries ``instance=None`` unless the caller
    passes the dict-based ``instance`` the index encodes (the serving
    path does, so explanations can run on the result without the backend
    ever touching the dict structures).

    ``candidates`` defaults to every indexed user; ids the index does not
    know are ignored (they sit in no group, so they can never contribute).

    ``constraints`` accepts a
    :class:`~repro.constraints.ConstraintSpec`; a non-empty spec routes
    the call through :func:`~repro.constraints.constrained_select` (the
    fair or clustered solver, composed with the requested ``method``)
    and returns its underlying :class:`SelectionResult` — callers that
    need the per-bound satisfaction report call ``constrained_select``
    directly.
    """
    if budget < 1:
        raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
    if not index.vectorizable:
        raise PodiumError(
            "select_from_index requires a vectorizable index; big-int or "
            "non-integer weights need the dict-based greedy_select paths"
        )
    if constraints is not None and not constraints.is_empty:
        from ..constraints import constrained_select

        constrained = constrained_select(
            index,
            constraints,
            budget,
            method=method,
            candidates=candidates,
            rng=rng,
            shards=shards,
            jobs=jobs,
            shard_seed=shard_seed,
            epsilon=epsilon,
            sample_ratio=sample_ratio,
        )
        result = constrained.result
        if instance is not None:
            result = SelectionResult(
                selected=result.selected,
                score=result.score,
                gains=result.gains,
                instance=instance,
            )
        return result
    if candidates is None and method in ("matrix", "stochastic"):
        # Full-pool fast path: run over dense rows directly and resolve
        # only the winners' ids.  On a memory-mapped index this is what
        # keeps selection O(budget) in Python objects — `list(index.users)`
        # would materialize every id string (and at 5M users, most of the
        # out-of-core RSS budget) just to throw them away.
        if method == "stochastic":
            size = _stochastic_sample_size(
                index.n_users, budget, epsilon, sample_ratio
            )
            sample_rng = rng if rng is not None else np.random.default_rng(0)
            rows, gains, score = _range_loop(
                index, 0, index.n_users, budget, None,
                sample_size=size, sample_rng=sample_rng,
            )
        else:
            rows, gains, score = _range_loop(
                index, 0, index.n_users, budget, rng
            )
        return SelectionResult(
            selected=tuple(str(index.users[r]) for r in rows),
            score=score,
            gains=tuple(gains),
            instance=instance,
        )
    if candidates is None:
        ordered = list(index.users)  # already sorted ascending
    else:
        ordered = sorted(u for u in set(candidates) if u in index.user_pos)
    if method == "matrix":
        selected, gains, score = _matrix_loop(index, ordered, budget, rng)
    elif method == "sharded":
        selected, gains, score = _sharded_loop(
            index, ordered, budget, rng,
            shards=shards, jobs=jobs, shard_seed=shard_seed,
        )
    elif method == "stochastic":
        size = _stochastic_sample_size(
            len(ordered), budget, epsilon, sample_ratio
        )
        sample_rng = rng if rng is not None else np.random.default_rng(0)
        selected, gains, score = _matrix_loop(
            index, ordered, budget, None,
            sample_size=size, sample_rng=sample_rng,
        )
    else:
        raise PodiumError(
            f"unknown index selection method {method!r}; use 'matrix', "
            f"'sharded' or 'stochastic'"
        )
    return SelectionResult(
        selected=tuple(selected),
        score=score,
        gains=tuple(gains),
        instance=instance,
    )


def select_sharded_streaming(
    index: InstanceIndex,
    budget: int,
    *,
    shards: int = 4,
    jobs: int | None = 1,
    rng: np.random.Generator | None = None,
) -> SelectionResult:
    """GreeDi over contiguous row ranges of a (memory-mapped) index.

    The out-of-core twin of ``method="sharded"``: shards are row ranges
    ``[i·n/S, (i+1)·n/S)`` instead of a seeded permutation, so a forked
    worker touches only its own slice of the mapped CSR arrays (via
    :func:`~repro.core.sharding.solve_range_shards`, which re-opens the
    source checkpoint per worker when the index carries one).  Round 1
    returns each shard's 2B winners as compact ``(rows, gains)`` int64
    arrays — no id strings cross the process boundary; round 2 gathers
    the union into a small :meth:`InstanceIndex.take_rows` sub-index and
    runs the exact greedy on it.  Resident memory in the parent is
    O(union); in each worker, O(shard).

    Contiguous row ranges partition users by id order rather than
    randomly, so the GreeDi guarantee is the same worst case but the
    measured quality can differ from the permuted variant; the scale
    bench gates both against the 0.95 floor.  ``shards=1`` reproduces
    the matrix selections exactly: the union is greedy's own 2B-pick
    run, whose first B picks re-pick themselves (each is still the
    max-gain, min-id candidate in any subset containing it).
    """
    if budget < 1:
        raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
    if not index.vectorizable:
        raise PodiumError(
            "select_sharded_streaming requires a vectorizable index; "
            "big-int or non-integer weights need the dict-based "
            "greedy_select paths"
        )
    if shards < 1:
        raise PodiumError(f"shards must be >= 1, got {shards}")
    n = index.n_users
    shards = min(shards, n) or 1
    bounds = [
        (i * n // shards, (i + 1) * n // shards) for i in range(shards)
    ]
    shard_budget = 2 * budget

    def solve(
        shard_index: InstanceIndex, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray]:
        rows, row_gains, _ = _range_loop(
            shard_index, lo, hi, shard_budget, None
        )
        return (
            np.asarray(rows, dtype=np.int64),
            np.asarray(row_gains, dtype=np.int64),
        )

    winners = solve_range_shards(solve, index, bounds, jobs=jobs)
    union_rows = np.unique(
        np.concatenate([rows for rows, _gains in winners])
        if winners
        else np.empty(0, dtype=np.int64)
    )
    sub = index.take_rows(union_rows)
    picked, gains, score = _range_loop(sub, 0, sub.n_users, budget, rng)
    return SelectionResult(
        selected=tuple(str(sub.users[r]) for r in picked),
        score=score,
        gains=tuple(gains),
        instance=None,
    )
