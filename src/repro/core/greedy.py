"""Greedy user selection — Algorithm 1 of the paper (§4).

Two interchangeable implementations are provided:

* :func:`greedy_select` with ``method="eager"`` follows the paper line by
  line: it maintains every candidate's marginal contribution
  ``marg_{u,U}`` and, whenever a group's remaining coverage hits zero,
  subtracts the group's weight from the contribution of its other members
  (Algorithm 1, line 10).  Complexity
  ``O(B · max_G |G| · max_u degree(u))`` per Prop. 4.4.
* ``method="lazy"`` is the standard lazy-greedy accelerant for monotone
  submodular objectives: stale upper bounds sit in a max-heap and are only
  refreshed when popped.  It returns a subset with the same score
  guarantee and is typically much faster on large, overlapping group sets.
* ``method="matrix"`` runs the same eager recurrence over the
  integer-encoded sparse index (:mod:`repro.core.index`): candidates'
  marginal gains live in one int64 vector, the best pick is an ``argmax``
  and exhausted-group decrements are scattered through CSR incidence
  arrays.  When the instance's weights cannot be represented exactly in
  int64 (EBS big-ints, non-integer weights), it transparently falls back
  to the exact lazy path — correctness never depends on the backend.

All three achieve the (1 − 1/e) approximation of Prop. 4.4 because the
score function is monotone submodular for every weight/coverage choice,
and all three select *identical sequences* when ``rng`` is None.

Ties between candidates with equal marginal gain are broken
deterministically by user id unless an ``rng`` is supplied, in which case
they are broken uniformly at random — the controlled randomness the paper
mentions in §10.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .errors import InvalidBudgetError, PodiumError
from .index import instance_index
from .instance import DiversificationInstance
from .profiles import UserRepository
from .scoring import CoverageState
from .weights import Weight


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a selection run.

    Attributes
    ----------
    selected:
        User ids in the order they were picked.
    score:
        Final ``score_G`` of the subset.
    gains:
        Realized marginal gain of each pick, parallel to ``selected``.
    instance:
        The diversification instance the selection ran against (used by
        explanations and metrics downstream).
    """

    selected: tuple[str, ...]
    score: Weight
    gains: tuple[Weight, ...]
    instance: DiversificationInstance

    def __post_init__(self) -> None:
        if len(self.selected) != len(self.gains):
            raise PodiumError("selected and gains must be parallel")

    def __len__(self) -> int:
        return len(self.selected)

    def __contains__(self, user_id: object) -> bool:
        return user_id in self.selected


def _resolve_candidates(
    repository: UserRepository, candidates: list[str] | None
) -> list[str]:
    if candidates is None:
        return repository.user_ids
    return [u for u in candidates if u in repository]


def _pick_tie(
    tied: list[str], rng: np.random.Generator | None
) -> str:
    if rng is None or len(tied) == 1:
        return min(tied)
    return tied[int(rng.integers(len(tied)))]


def greedy_select(
    repository: UserRepository,
    instance: DiversificationInstance,
    budget: int | None = None,
    candidates: list[str] | None = None,
    method: str = "eager",
    rng: np.random.Generator | None = None,
) -> SelectionResult:
    """Select up to ``budget`` users maximizing ``score_G`` greedily.

    Parameters
    ----------
    repository:
        The population ``U`` to select from.
    instance:
        The diversification instance ``(G, wei, cov)``.
    budget:
        Bound ``B`` on the subset size; defaults to ``instance.budget``.
    candidates:
        Optional pre-filtered candidate pool (CUSTOM-DIVERSITY passes the
        refined user set ``U'`` here); ids absent from the repository are
        ignored.
    method:
        ``"eager"`` (paper Algorithm 1), ``"lazy"`` (heap accelerant) or
        ``"matrix"`` (vectorized sparse backend with exact fallback).
    rng:
        Optional generator for random tie-breaking.
    """
    budget = instance.budget if budget is None else budget
    if budget < 1:
        raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
    pool = _resolve_candidates(repository, candidates)
    if method == "eager":
        return _greedy_eager(pool, instance, budget, rng)
    if method == "lazy":
        return _greedy_lazy(pool, instance, budget, rng)
    if method == "matrix":
        return _greedy_matrix(pool, instance, budget, rng)
    raise PodiumError(
        f"unknown greedy method {method!r}; use 'eager', 'lazy' or 'matrix'"
    )


def _greedy_eager(
    pool: list[str],
    instance: DiversificationInstance,
    budget: int,
    rng: np.random.Generator | None,
) -> SelectionResult:
    """Paper-faithful Algorithm 1 with explicit marg_{u,U} updates."""
    groups = instance.groups
    state = CoverageState(instance)
    # Line 2: initial marginal contribution of every candidate.
    marg: dict[str, Weight] = {u: state.marginal_gain(u) for u in pool}
    remaining = set(pool)
    gains: list[Weight] = []

    for _ in range(budget):
        if not remaining:  # Line 4: pool exhausted before the budget.
            break
        best = max(marg[u] for u in remaining)
        tied = [u for u in remaining if marg[u] == best]
        chosen = _pick_tie(tied, rng)  # Line 5 (+ tie policy).
        remaining.discard(chosen)  # Line 6.
        gains.append(state.add(chosen))
        # Lines 7-10: for every group the pick exhausted, its weight no
        # longer counts toward co-members' marginal contributions.
        for key in state.last_exhausted():
            weight = instance.wei[key]
            for member in groups.group(key).members:
                if member in remaining:
                    marg[member] -= weight

    return SelectionResult(
        selected=tuple(state.selected),
        score=state.score,
        gains=tuple(gains),
        instance=instance,
    )


def _greedy_lazy(
    pool: list[str],
    instance: DiversificationInstance,
    budget: int,
    rng: np.random.Generator | None,
) -> SelectionResult:
    """Lazy-greedy: heap of stale upper bounds, refreshed on pop.

    Heap priorities are exact ``(-gain, user_id)`` tuples (Python ints
    for EBS weights never pass through float, which would overflow for
    ``(B+1)^rank``).  Because marginal gains only shrink as the subset
    grows (submodularity), a stored priority is a lower bound of the true
    one; a popped entry whose refreshed priority equals its stored
    priority is therefore the global maximum — with ties resolved by
    user id, *exactly* like the eager implementation, so both methods
    select identical sequences when ``rng`` is None.
    """
    state = CoverageState(instance)
    heap: list[tuple[Weight, str]] = [
        (-state.marginal_gain(user_id), user_id) for user_id in pool
    ]
    heapq.heapify(heap)

    gains: list[Weight] = []
    while heap and len(state.selected) < budget:
        stored, user_id = heapq.heappop(heap)
        fresh = state.marginal_gain(user_id)
        if -fresh != stored:
            # Stale: re-insert with the exact current priority.
            heapq.heappush(heap, (-fresh, user_id))
            continue
        if rng is not None:
            # Randomized tie-breaking: gather every fresh candidate tied
            # on gain, pick uniformly, push the rest back.
            tied = [user_id]
            while heap and heap[0][0] == stored:
                other_priority, other = heapq.heappop(heap)
                other_fresh = state.marginal_gain(other)
                if -other_fresh == stored:
                    tied.append(other)
                else:
                    heapq.heappush(heap, (-other_fresh, other))
            chosen = tied[int(rng.integers(len(tied)))]
            for loser in tied:
                if loser != chosen:
                    heapq.heappush(heap, (stored, loser))
            gains.append(state.add(chosen))
            continue
        gains.append(state.add(user_id))

    return SelectionResult(
        selected=tuple(state.selected),
        score=state.score,
        gains=tuple(gains),
        instance=instance,
    )


def _greedy_matrix(
    pool: list[str],
    instance: DiversificationInstance,
    budget: int,
    rng: np.random.Generator | None,
) -> SelectionResult:
    """Vectorized eager greedy over the sparse instance index.

    Maintains the same ``marg_{u,U}`` recurrence as the eager
    implementation, but as one int64 gain vector: picking is an
    ``argmax`` (candidates sit in sorted user-id order, so the first
    maximum is the minimal tied id — the eager tie-break), coverage
    decrements are CSR row gathers and exhausted-group propagation is a
    single ``np.subtract.at`` scatter.  Instances whose weights are not
    exactly representable in int64 fall back to the exact lazy path.
    """
    index = instance_index(instance)
    if not index.vectorizable:
        return _greedy_lazy(pool, instance, budget, rng)
    assert index.wei is not None and index.initial_gains is not None

    ordered = sorted(pool)
    n = len(ordered)
    # Dense position of each candidate in the index (-1: in no group).
    pos = np.fromiter(
        (index.user_pos.get(u, -1) for u in ordered), dtype=np.int64, count=n
    )
    present = pos >= 0
    gain = np.zeros(n, dtype=np.int64)
    gain[present] = index.initial_gains[pos[present]]
    # Inverse map dense index id -> candidate row (-1: not a candidate).
    dense_to_row = np.full(index.n_users, -1, dtype=np.int64)
    dense_to_row[pos[present]] = np.flatnonzero(present)

    remaining = index.cov.copy()
    active = np.ones(n, dtype=bool)
    selected: list[str] = []
    gains: list[Weight] = []
    score = 0
    for _ in range(budget):
        if not active.any():
            break
        masked = np.where(active, gain, np.int64(-1))
        if rng is None:
            row = int(np.argmax(masked))
        else:
            tied = np.flatnonzero(masked == masked.max())
            row = int(tied[int(rng.integers(tied.size))])
        realized = int(masked[row])
        active[row] = False
        selected.append(ordered[row])
        gains.append(realized)
        score += realized

        if pos[row] < 0:
            continue
        touched = index.groups_of_row(int(pos[row]))
        hit = touched[remaining[touched] > 0]
        remaining[hit] -= 1
        exhausted = hit[remaining[hit] == 0]
        if exhausted.size:
            members = index.members_of_rows(exhausted)
            weights = np.repeat(index.wei[exhausted], index.row_sizes(exhausted))
            rows = dense_to_row[members]
            keep = rows >= 0
            np.subtract.at(gain, rows[keep], weights[keep])

    return SelectionResult(
        selected=tuple(selected),
        score=score,
        gains=tuple(gains),
        instance=instance,
    )
