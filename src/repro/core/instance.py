"""Diversification instances (paper Def. 3.3).

A diversification instance is the triple ``(G, wei, cov)``.  Because the
Prop coverage scheme and the EBS weight scheme are defined in terms of the
budget ``B`` and the population size ``|U|``, an instance is built for a
concrete ``(repository, budget)`` pair; the materialized weight and
coverage maps are then immutable for the lifetime of the instance.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from .errors import InvalidBudgetError, InvalidInstanceError
from .groups import GroupingConfig, GroupKey, GroupSet, build_simple_groups
from .profiles import UserRepository
from .weights import (
    CoverageMap,
    CoverageScheme,
    LBSWeights,
    SingleCoverage,
    Weight,
    WeightMap,
    WeightScheme,
)


@dataclass(frozen=True)
class DiversificationInstance:
    """The triple ``(G, wei, cov)`` plus the budget it was derived for.

    Attributes
    ----------
    groups:
        The group set ``G`` (possibly overlapping user groups).
    wei:
        Materialized group weights; every value is strictly positive.
    cov:
        Materialized required coverage counts; every value is >= 1.
    budget:
        The selection budget ``B`` the schemes were instantiated with.
    population_size:
        ``|U|`` at build time, kept for explanations and Prop coverage.
    """

    groups: GroupSet
    wei: WeightMap
    cov: CoverageMap
    budget: int
    population_size: int

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise InvalidBudgetError(f"budget must be >= 1, got {self.budget}")
        missing_w = [k for k in self.groups.keys if k not in self.wei]
        missing_c = [k for k in self.groups.keys if k not in self.cov]
        if missing_w or missing_c:
            raise InvalidInstanceError(
                f"instance is missing weights for {len(missing_w)} and "
                f"coverage for {len(missing_c)} groups"
            )
        bad_w = [k for k, w in self.wei.items() if w <= 0]
        if bad_w:
            raise InvalidInstanceError(
                f"weights must be strictly positive; offending keys: "
                f"{[str(k) for k in bad_w[:3]]}"
            )
        bad_c = [k for k, c in self.cov.items() if c < 1 or c != int(c)]
        if bad_c:
            raise InvalidInstanceError(
                f"coverage counts must be integers >= 1; offending keys: "
                f"{[str(k) for k in bad_c[:3]]}"
            )

    def weight(self, key: GroupKey) -> Weight:
        """``wei(G)`` for the group stored under ``key``."""
        return self.wei[key]

    def coverage(self, key: GroupKey) -> int:
        """``cov(G)`` for the group stored under ``key``."""
        return self.cov[key]

    def max_score(self) -> Weight:
        """Upper bound ``Σ_G wei(G)·cov(G)`` on any subset's score."""
        return sum(self.wei[k] * self.cov[k] for k in self.groups.keys)

    def restricted_to_groups(
        self, keys: Iterable[GroupKey]
    ) -> "DiversificationInstance":
        """Project the instance onto a subset of its groups.

        Used by customization: the priority and standard coverage scores
        are each computed on a restriction of the full instance.
        """
        keep = set(keys)
        return DiversificationInstance(
            groups=self.groups.subset(keep),
            wei={k: w for k, w in self.wei.items() if k in keep},
            cov={k: c for k, c in self.cov.items() if k in keep},
            budget=self.budget,
            population_size=self.population_size,
        )


def build_instance(
    repository: UserRepository,
    budget: int,
    groups: GroupSet | None = None,
    weight_scheme: WeightScheme | None = None,
    coverage_scheme: CoverageScheme | None = None,
    grouping: GroupingConfig | None = None,
) -> DiversificationInstance:
    """Assemble a diversification instance for ``repository`` and ``budget``.

    When ``groups`` is omitted, the grouping module computes the default
    simple groups (Def. 3.4).  The default schemes are LBS weights and
    Single coverage — the combination the paper's experiments focus on
    (§8.3).
    """
    if budget < 1:
        raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
    if groups is None:
        groups = build_simple_groups(repository, grouping)
    weight_scheme = weight_scheme or LBSWeights()
    coverage_scheme = coverage_scheme or SingleCoverage()
    population_size = max(len(repository), 1)
    return DiversificationInstance(
        groups=groups,
        wei=weight_scheme.weights(groups, budget, population_size),
        cov=coverage_scheme.coverage(groups, budget, population_size),
        budget=budget,
        population_size=population_size,
    )
