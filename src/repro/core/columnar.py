"""Columnar instance construction — the million-user scale path.

The dict-based pipeline (``UserRepository`` → ``build_simple_groups`` →
``build_instance`` → ``InstanceIndex.build``) materializes one Python
dict per profile, one frozenset per group and one link-set per user
before any array exists.  At a few thousand users that overhead is
noise; at 10⁵–10⁶ users it *is* the runtime.  This module goes from
``(user, property, score)`` triple columns straight to the CSR
:class:`~repro.core.index.InstanceIndex` the vectorized backends run on:

* bucket boundaries per property come from the exact same strategies as
  the grouping module (:func:`~repro.core.buckets.split_scores`), so the
  groups are identical to the dict path's;
* bucket assignment is one :func:`~repro.core.buckets.assign_bucket_indices`
  call per property (``np.searchsorted``);
* group keys are deduplicated positionally while scanning properties —
  no intermediate ``Group`` objects;
* both CSR directions come from stable ``argsort``/``bincount`` passes
  over the entry columns — never a per-user Python dict.

``UserRepository``/``GroupSet`` views stay available *lazily*:
:meth:`ColumnarInstance.to_instance` and
:meth:`ColumnarInstance.to_repository` materialize the dict-of-dict
objects on demand for explanations, customization and metrics, and the
materialized instance carries the already-built index (via
:func:`~repro.core.index.attach_index`) so nothing is re-encoded.

EBS weights are exact big ints that overflow int64 at realistic ranks;
the columnar path is array-native and therefore supports the
int64-representable schemes only (Iden/LBS × Single/Prop).  EBS
instances must take the dict path, whose exact fallback is unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from .buckets import (
    Bucket,
    assign_bucket_indices,
    is_boolean,
    partition_from_splits,
    split_scores,
)
from .errors import InvalidInstanceError, PodiumError
from .groups import Group, GroupingConfig, GroupKey, GroupSet
from .index import InstanceIndex, attach_index, id_dtype
from .instance import DiversificationInstance
from .profiles import UserProfile, UserRepository

#: Weight schemes the columnar path can compute as int64 vectors.
_COLUMNAR_WEIGHTS = ("Iden", "LBS")
#: Coverage schemes the columnar path can compute as int64 vectors.
_COLUMNAR_COVERAGES = ("Single", "Prop")


@dataclass(frozen=True)
class ColumnarProfiles:
    """A population as parallel ``(user, property, score)`` columns.

    Attributes
    ----------
    user_ids:
        One id per user (dense position = row id used in ``user_col``).
        Users carrying no triples are legal — they count toward
        ``population_size`` but join no group, like dict-path users whose
        every property was dropped.
    property_labels:
        One label per property (dense position used in ``prop_col``).
    user_col / prop_col / score_col:
        Parallel entry columns: user row, property column and score of
        every known ``(user, property)`` pair.
    """

    user_ids: np.ndarray
    property_labels: tuple[str, ...]
    user_col: np.ndarray
    prop_col: np.ndarray
    score_col: np.ndarray

    def __post_init__(self) -> None:
        m = len(self.user_col)
        if len(self.prop_col) != m or len(self.score_col) != m:
            raise InvalidInstanceError(
                "user_col, prop_col and score_col must be parallel"
            )
        if m:
            if int(self.user_col.min()) < 0 or int(self.user_col.max()) >= len(
                self.user_ids
            ):
                raise InvalidInstanceError("user_col out of range")
            if int(self.prop_col.min()) < 0 or int(self.prop_col.max()) >= len(
                self.property_labels
            ):
                raise InvalidInstanceError("prop_col out of range")
            lo, hi = float(self.score_col.min()), float(self.score_col.max())
            if not (0.0 <= lo and hi <= 1.0) or np.isnan(
                self.score_col
            ).any():
                raise InvalidInstanceError("scores must lie in [0, 1]")

    @property
    def n_users(self) -> int:
        return len(self.user_ids)

    @property
    def n_entries(self) -> int:
        return len(self.user_col)

    @classmethod
    def from_repository(cls, repository: UserRepository) -> "ColumnarProfiles":
        """Flatten a dict-based repository into triple columns.

        This is the migration path for existing data; newly generated
        populations should be produced column-native (e.g.
        :func:`repro.datasets.synth.generate_profile_columns`).
        """
        labels = tuple(repository.property_labels)
        position = {label: j for j, label in enumerate(labels)}
        ids = []
        users: list[int] = []
        props: list[int] = []
        scores: list[float] = []
        for i, profile in enumerate(repository):
            ids.append(profile.user_id)
            for label, score in profile.scores.items():
                users.append(i)
                props.append(position[label])
                scores.append(score)
        m = len(users)
        return cls(
            user_ids=np.asarray(ids, dtype=object),
            property_labels=labels,
            user_col=np.fromiter(users, dtype=np.int64, count=m),
            prop_col=np.fromiter(props, dtype=np.int64, count=m),
            score_col=np.fromiter(scores, dtype=np.float64, count=m),
        )


@dataclass
class ColumnarInstance:
    """A diversification instance built columnar: index-first, dicts lazy.

    The eager product is the CSR :class:`InstanceIndex` (plus per-group
    buckets and the scheme names used) — everything the vectorized
    selection backends (``matrix``/``sharded``/``stochastic`` via
    :func:`~repro.core.greedy.select_from_index`) need.  The dict-of-dict
    views exist only on demand.
    """

    index: InstanceIndex
    budget: int
    population_size: int
    buckets: tuple[Bucket | None, ...]
    weight_scheme: str
    coverage_scheme: str
    profiles: ColumnarProfiles
    _instance: DiversificationInstance | None = field(
        default=None, repr=False
    )
    _repository: UserRepository | None = field(default=None, repr=False)

    def select(self, method: str = "matrix", rng=None, **options):
        """Run a selection backend directly on the index (no dicts)."""
        from .greedy import select_from_index

        return select_from_index(
            self.index, self.budget, method=method, rng=rng, **options
        )

    def to_instance(self) -> DiversificationInstance:
        """Materialize (once) the dict-based instance view.

        Costs one pass over the group→user CSR; the result carries the
        already-built index so matrix selections over it skip re-encoding.
        Use it for explanations, customization and the exact object-path
        metrics — never for the construction hot path.
        """
        if self._instance is None:
            index = self.index
            groups = GroupSet()
            for gid, key in enumerate(index.group_keys):
                lo, hi = int(index.g_indptr[gid]), int(index.g_indptr[gid + 1])
                members = frozenset(
                    index.users[r] for r in index.g_indices[lo:hi]
                )
                groups.add(Group(key, members, self.buckets[gid]))
            assert index.wei is not None  # columnar indexes vectorize
            wei = {
                key: int(index.wei[gid])
                for gid, key in enumerate(index.group_keys)
            }
            cov = {
                key: int(index.cov[gid])
                for gid, key in enumerate(index.group_keys)
            }
            instance = DiversificationInstance(
                groups=groups,
                wei=wei,
                cov=cov,
                budget=self.budget,
                population_size=self.population_size,
            )
            attach_index(instance, index)
            self._instance = instance
        return self._instance

    def to_repository(self) -> UserRepository:
        """Materialize (once) the dict-based profile repository view."""
        if self._repository is None:
            self._repository = columnar_to_repository(self.profiles)
        return self._repository


def _columnar_weights(
    scheme: str, sizes: np.ndarray, budget: int, population: int
) -> list[int]:
    if scheme == "Iden":
        return [1] * len(sizes)
    if scheme == "LBS":
        weights = [int(s) for s in sizes]
        if any(w <= 0 for w in weights):
            raise InvalidInstanceError(
                "LBS weights must be strictly positive; an empty group "
                "survived construction (set drop_empty=True)"
            )
        return weights
    raise PodiumError(
        f"columnar construction supports weight schemes "
        f"{_COLUMNAR_WEIGHTS}, got {scheme!r}; EBS big-int instances "
        f"must take the dict-based path"
    )


def _columnar_coverage(
    scheme: str, sizes: np.ndarray, budget: int, population: int
) -> np.ndarray:
    if scheme == "Single":
        return np.ones(len(sizes), dtype=np.int64)
    if scheme == "Prop":
        return np.maximum(budget * sizes // max(population, 1), 1).astype(
            np.int64
        )
    raise PodiumError(
        f"columnar construction supports coverage schemes "
        f"{_COLUMNAR_COVERAGES}, got {scheme!r}"
    )


def _scheme_name(scheme, default: str) -> str:
    """Accept scheme objects (``.name``) or plain names."""
    if scheme is None:
        return default
    return getattr(scheme, "name", None) or str(scheme)


def _assign_fallback(
    buckets: Sequence[Bucket], scores: np.ndarray
) -> np.ndarray:
    """Vectorized per-bucket membership when the partition shortcut fails."""
    assignment = np.full(len(scores), -1, dtype=np.int64)
    for position, bucket in enumerate(buckets):
        if bucket.closed_hi:
            mask = (scores >= bucket.lo) & (scores <= bucket.hi)
        else:
            mask = (scores >= bucket.lo) & (scores < bucket.hi)
        assignment[mask & (assignment < 0)] = position
    return assignment


def build_columnar_instance(
    profiles: ColumnarProfiles,
    budget: int,
    grouping: GroupingConfig | None = None,
    weight_scheme=None,
    coverage_scheme=None,
) -> ColumnarInstance:
    """Run grouping + weighting + indexing entirely on columns.

    Produces groups identical to
    ``build_instance(repo, budget, groups=build_simple_groups(repo,
    grouping))`` on the equivalent repository — same bucket boundaries,
    same memberships, same weights/coverage — but the only per-object
    Python work is one ``GroupKey`` per group and the dense id ↔ user-id
    maps; everything else is array passes over the triple columns.
    """
    if budget < 1:
        raise InvalidInstanceError(f"budget must be >= 1, got {budget}")
    config = grouping or GroupingConfig()
    weight_name = _scheme_name(weight_scheme, "LBS")
    coverage_name = _scheme_name(coverage_scheme, "Single")
    if weight_name not in _COLUMNAR_WEIGHTS:
        # Raise before any work: same message as the weight computation.
        _columnar_weights(weight_name, np.empty(0, dtype=np.int64), 1, 1)
    if coverage_name not in _COLUMNAR_COVERAGES:
        _columnar_coverage(coverage_name, np.empty(0, dtype=np.int64), 1, 1)

    n_total = profiles.n_users
    n_props = len(profiles.property_labels)
    support = np.bincount(profiles.prop_col, minlength=n_props)

    # Group triples by property: one stable sort, then contiguous slices.
    by_prop = np.argsort(profiles.prop_col, kind="stable")
    prop_indptr = np.zeros(n_props + 1, dtype=np.int64)
    np.cumsum(support, out=prop_indptr[1:])
    users_sorted = profiles.user_col[by_prop]
    scores_sorted = profiles.score_col[by_prop]

    entry_user_parts: list[np.ndarray] = []
    entry_gid_parts: list[np.ndarray] = []
    group_keys: list[GroupKey] = []
    group_buckets: list[Bucket] = []
    group_sizes: list[int] = []
    for j, label in enumerate(profiles.property_labels):
        if support[j] < config.min_support:
            continue
        lo, hi = int(prop_indptr[j]), int(prop_indptr[j + 1])
        scores_j = scores_sorted[lo:hi]
        if config.fixed_splits is not None and not is_boolean(scores_j):
            buckets = partition_from_splits(config.fixed_splits)
        else:
            buckets = split_scores(
                scores_j,
                k=config.buckets_per_property,
                strategy=config.strategy,
            )
        assignment = assign_bucket_indices(buckets, scores_j)
        if assignment is None:
            assignment = _assign_fallback(buckets, scores_j)
        counts = np.bincount(
            assignment[assignment >= 0], minlength=len(buckets)
        )
        gid_map = np.full(len(buckets), -1, dtype=np.int64)
        for position, bucket in enumerate(buckets):
            if config.drop_empty and counts[position] == 0:
                continue
            gid_map[position] = len(group_keys)
            group_keys.append(GroupKey(label, bucket.label))
            group_buckets.append(bucket)
            group_sizes.append(int(counts[position]))
        gids = np.where(assignment >= 0, gid_map[assignment], -1)
        keep = gids >= 0
        entry_user_parts.append(users_sorted[lo:hi][keep])
        entry_gid_parts.append(gids[keep])

    n_groups = len(group_keys)
    if entry_user_parts:
        entry_user = np.concatenate(entry_user_parts)
        entry_gid = np.concatenate(entry_gid_parts)
    else:
        entry_user = np.empty(0, dtype=np.int64)
        entry_gid = np.empty(0, dtype=np.int64)

    # Dense user ids: users appearing in any group, in sorted id order —
    # the invariant the matrix backend's argmax tie-break rides on.
    appears = np.zeros(n_total, dtype=bool)
    appears[entry_user] = True
    present = np.flatnonzero(appears)
    ids_present = profiles.user_ids[present]
    order = np.argsort(ids_present, kind="stable")
    sorted_rows = present[order]
    dense_of_row = np.full(n_total, -1, dtype=np.int64)
    dense_of_row[sorted_rows] = np.arange(len(sorted_rows), dtype=np.int64)
    n_users = len(sorted_rows)
    users = tuple(str(u) for u in profiles.user_ids[sorted_rows])
    entry_dense = dense_of_row[entry_user]

    # Both CSR directions from stable sorts over the entry columns.
    u_dtype, g_dtype = id_dtype(n_users), id_dtype(n_groups)
    by_gid = np.argsort(entry_gid, kind="stable")
    g_indices = entry_dense[by_gid].astype(u_dtype)
    g_indptr = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(
        np.bincount(entry_gid, minlength=n_groups), out=g_indptr[1:]
    )
    by_user = np.argsort(entry_dense, kind="stable")
    u_indices = entry_gid[by_user].astype(g_dtype)
    u_indptr = np.zeros(n_users + 1, dtype=np.int64)
    np.cumsum(
        np.bincount(entry_dense, minlength=n_users), out=u_indptr[1:]
    )

    population = max(n_total, 1)
    sizes = np.asarray(group_sizes, dtype=np.int64)
    weights = _columnar_weights(weight_name, sizes, budget, population)
    cov = _columnar_coverage(coverage_name, sizes, budget, population)
    index = InstanceIndex.from_csr(
        users=users,
        group_keys=tuple(group_keys),
        u_indptr=u_indptr,
        u_indices=u_indices,
        g_indptr=g_indptr,
        g_indices=g_indices,
        cov=cov,
        weights=weights,
    )
    if not index.vectorizable:
        raise InvalidInstanceError(
            "columnar instance weights exceed int64; use the dict-based "
            "path whose exact big-int fallback handles this"
        )
    return ColumnarInstance(
        index=index,
        budget=budget,
        population_size=population,
        buckets=tuple(group_buckets),
        weight_scheme=weight_name,
        coverage_scheme=coverage_name,
        profiles=profiles,
    )


def columnar_to_repository(profiles: ColumnarProfiles) -> UserRepository:
    """Materialize the dict-of-dict repository of a triple-column set.

    This *is* the expensive path the columnar pipeline avoids — exposed
    for migrations, the explanation modules and the scale benchmark's
    dict-vs-columnar comparison (both paths consume identical columns).
    """
    labels = profiles.property_labels
    scores: list[dict[str, float]] = [{} for _ in range(profiles.n_users)]
    for u, p, s in zip(
        profiles.user_col, profiles.prop_col, profiles.score_col
    ):
        scores[int(u)][labels[int(p)]] = float(s)
    return UserRepository(
        UserProfile(str(user_id), user_scores)
        for user_id, user_scores in zip(profiles.user_ids, scores)
    )
