"""Customization of diversification results (paper §6).

A :class:`CustomizationFeedback` carries the four group subsets of
Def. 6.1: must-have (``G₊``), must-not (``G₋``), priority coverage
(``G_d``) and standard coverage (``G_d?``).  Groups in none of the latter
two are ignored for coverage.

Solving CUSTOM-DIVERSITY (Def. 6.3) follows the paper's Prop. 6.5 proof:

1. filter the repository down to the refined user set ``U'``;
2. rescale weights so priority groups lexicographically dominate:
   ``score~(U) = score_{G_d}(U) · MAX_SCORE + score_{G_d?}(U)`` with
   ``MAX_SCORE`` exceeding any achievable standard score — computed as an
   exact Python integer scale, so the lexicographic order is never broken
   by floating-point rounding;
3. run the unchanged greedy algorithm on the rescaled instance.

The rescaled score remains submodular, monotone and non-negative
(Lemma 6.6), so the (1 − 1/e) guarantee carries over.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from .errors import (
    InfeasibleSelectionError,
    InvalidBudgetError,
    InvalidFeedbackError,
)
from .greedy import SelectionResult, _rows_loop, greedy_select
from .groups import GroupKey, GroupSet
from .index import InstanceIndex, attach_index, instance_index
from .instance import DiversificationInstance
from .profiles import UserRepository
from .scoring import subset_score
from .weights import Weight


@dataclass(frozen=True)
class CustomizationFeedback:
    """Def. 6.1 feedback: four group subsets steering the selection.

    ``priority`` and ``standard`` default to the paper defaults
    (``G_d = ∅``, ``G_d? = G``) when instantiated via
    :meth:`resolve_defaults`; a raw instance keeps ``standard=None`` to
    mean "everything not in priority".
    """

    must_have: frozenset[GroupKey] = frozenset()
    must_not: frozenset[GroupKey] = frozenset()
    priority: frozenset[GroupKey] = frozenset()
    standard: frozenset[GroupKey] | None = None

    @classmethod
    def none(cls) -> "CustomizationFeedback":
        """The empty feedback — CUSTOM-DIVERSITY degrades to BASE-DIVERSITY."""
        return cls()

    def validate(self, groups: GroupSet) -> None:
        """Ensure every referenced group exists in ``groups``."""
        known = set(groups.keys)
        for name, keys in (
            ("must_have", self.must_have),
            ("must_not", self.must_not),
            ("priority", self.priority),
            ("standard", self.standard or frozenset()),
        ):
            unknown = [k for k in keys if k not in known]
            if unknown:
                raise InvalidFeedbackError(
                    f"{name} references unknown groups: "
                    f"{[str(k) for k in unknown[:3]]}"
                )

    def resolve_standard(self, groups: GroupSet) -> frozenset[GroupKey]:
        """Concrete ``G_d?``: the stored set, or ``G − G_d`` by default."""
        if self.standard is not None:
            return self.standard
        return frozenset(groups.keys) - self.priority


def refine_users(
    repository: UserRepository,
    groups: GroupSet,
    feedback: CustomizationFeedback,
) -> list[str]:
    """Compute the refined user set ``U'`` of Def. 6.3.

    For every property with at least one must-have bucket, a user must
    belong to *some* must-have bucket of that property (the paper's
    contradiction-avoidance rule); and a user must belong to no must-not
    group.  The rule itself lives in
    :mod:`repro.constraints.feasibility`, shared with the fair solver's
    floor/ceiling eligibility checks.
    """
    from ..constraints.feasibility import (
        eligible_user_filter,
        keys_by_property,
    )

    feedback.validate(groups)
    must_have_by_property = {
        label: set(keys)
        for label, keys in keys_by_property(feedback.must_have).items()
    }
    return [
        user_id
        for user_id in repository.user_ids
        if eligible_user_filter(
            groups.groups_of(user_id),
            feedback.must_not,
            must_have_by_property,
        )
    ]


def _refine_mask_index(
    index: InstanceIndex, feedback: CustomizationFeedback
) -> np.ndarray:
    """Refined user set ``U'`` as a boolean mask over dense rows.

    Must-not groups clear their members' bits with one row gather; each
    must-have property sets an "in some must-have bucket" mask the same
    way and AND-s it in.  Pure array work: no id string is decoded, so
    a memory-mapped index refines without touching its lazy id
    sequence.  Delegates to the shared
    :func:`repro.constraints.feasibility.eligibility_mask`, the same
    helper the fair solver's hard exclusions run on.
    """
    from ..constraints.feasibility import eligibility_mask, keys_by_property

    return eligibility_mask(
        index,
        forbidden=feedback.must_not,
        required_by_property=keys_by_property(feedback.must_have),
    )


def _refine_users_index(
    index: InstanceIndex,
    repository: UserRepository,
    feedback: CustomizationFeedback,
) -> list[str]:
    """Vectorized :func:`refine_users`: boolean masks over CSR incidence.

    Users the index does not know sit in no group: they can never
    violate must-not and only pass when there is no must-have
    constraint — exactly the eager loop's semantics.  The returned pool
    preserves repository iteration order, like the eager
    implementation.  The fully-indexed serving path never calls this —
    it stays on dense rows (:func:`_refine_mask_index`); this id-string
    materialization exists only for repositories with users outside
    the index.
    """
    eligible = _refine_mask_index(index, feedback)
    eligible_ids = {index.users[i] for i in np.flatnonzero(eligible)}
    if feedback.must_have:
        return [u for u in repository.user_ids if u in eligible_ids]
    indexed = index.user_pos
    return [
        u
        for u in repository.user_ids
        if u in eligible_ids or u not in indexed
    ]


def _exact_weight(weight: Weight) -> int | Fraction:
    """Lift a weight into exact arithmetic (floats become exact binary
    rationals, so no information is invented or lost)."""
    if isinstance(weight, int) and not isinstance(weight, bool):
        return weight
    if isinstance(weight, Fraction):
        return weight
    return Fraction(weight)


def _integer_weight_scale(
    standard_max: Weight, priority_weights: Iterable[Weight] = ()
) -> int:
    """An exact integer scale enforcing lexicographic priority dominance.

    With integer weights any positive priority-score difference is >= 1,
    so ``floor(standard_max) + 1`` suffices.  With non-integer weights
    the smallest positive difference between two priority scores is
    ``1/D`` where ``D`` is the lcm of the (exact rational) priority
    weights' denominators, so the scale is multiplied by ``D`` — the
    pre-scaling that keeps ``scale · Δpriority > standard_max`` exact
    instead of trusting float rounding.
    """
    denominator = 1
    for weight in priority_weights:
        exact = _exact_weight(weight)
        if isinstance(exact, Fraction):
            denominator = math.lcm(denominator, exact.denominator)
    if isinstance(standard_max, int):
        base = standard_max + 1
    else:
        base = math.floor(_exact_weight(standard_max)) + 1
    return base * denominator


def _exact_standard_max(
    instance: DiversificationInstance, standard: frozenset[GroupKey]
) -> Weight:
    """``Σ_{G in G_d?} wei(G)·cov(G)`` in exact arithmetic."""
    total: int | Fraction = 0
    for key in standard:
        total += _exact_weight(instance.wei[key]) * instance.cov[key]
    return total


def customized_instance(
    instance: DiversificationInstance,
    feedback: CustomizationFeedback,
) -> DiversificationInstance:
    """Rescale ``instance`` so priority groups dominate lexicographically.

    Groups outside ``G_d ∪ G_d?`` are dropped entirely (their coverage is
    ignored per Def. 6.1); priority groups get their weight multiplied by
    ``MAX_SCORE``, an integer exceeding the best achievable standard
    score ``Σ_{G in G_d?} wei(G)·cov(G)``.

    All arithmetic is exact: integer weights stay integers (the common
    LBS/Iden/EBS case), while float weights are lifted into
    :class:`~fractions.Fraction` and the scale absorbs their common
    denominator, so the lexicographic order survives even adversarially
    close scores that float multiplication would collapse.
    """
    feedback.validate(instance.groups)
    standard = feedback.resolve_standard(instance.groups)
    active = feedback.priority | standard
    restricted = instance.restricted_to_groups(active)

    standard_max = _exact_standard_max(instance, standard)
    all_int = all(
        isinstance(instance.wei[k], int)
        and not isinstance(instance.wei[k], bool)
        for k in restricted.groups.keys
    )
    if all_int:
        scale = _integer_weight_scale(standard_max)
        wei: dict[GroupKey, Weight] = {
            key: (
                instance.wei[key] * scale
                if key in feedback.priority
                else instance.wei[key]
            )
            for key in restricted.groups.keys
        }
    else:
        scale = _integer_weight_scale(
            standard_max,
            (instance.wei[k] for k in feedback.priority),
        )
        wei = {
            key: (
                _exact_weight(instance.wei[key]) * scale
                if key in feedback.priority
                else _exact_weight(instance.wei[key])
            )
            for key in restricted.groups.keys
        }
    return DiversificationInstance(
        groups=restricted.groups,
        wei=wei,
        cov=dict(restricted.cov),
        budget=instance.budget,
        population_size=instance.population_size,
    )


def customized_index(
    instance: DiversificationInstance,
    feedback: CustomizationFeedback,
) -> InstanceIndex | None:
    """Build the rescaled instance's sparse index by pure array ops.

    Rather than re-encoding the rescaled dict instance from scratch, the
    active groups are sliced out of the base instance's cached index and
    the priority rows' weights multiplied by the exact integer scale —
    the same numbers :func:`customized_instance` materializes, so matrix
    selections over the derived index match the eager path bit for bit.
    Returns ``None`` when the base index is not vectorizable (EBS
    big-ints, float weights); callers then fall back to the dict path.
    """
    index = instance_index(instance)
    if not index.vectorizable:
        return None
    assert index.wei is not None
    standard = feedback.resolve_standard(instance.groups)
    active_keys = feedback.priority | standard
    active = np.fromiter(
        sorted(index.group_pos[k] for k in active_keys),
        dtype=np.int64,
        count=len(active_keys),
    )
    standard_max = sum(
        int(index.wei[index.group_pos[k]]) * int(instance.cov[k])
        for k in standard
    )
    scale = _integer_weight_scale(standard_max)
    priority_ids = {index.group_pos[k] for k in feedback.priority}
    weights = [
        int(index.wei[g]) * (scale if int(g) in priority_ids else 1)
        for g in active
    ]
    return index.restricted_scaled(active, weights)


def _score_over_keys(
    instance: DiversificationInstance,
    index: InstanceIndex | None,
    keys: frozenset[GroupKey],
    selected: Iterable[str],
) -> Weight:
    """``score`` of ``selected`` restricted to the groups in ``keys``.

    On a vectorizable index this is a masked gather over the cached hit
    counts — no restricted dict instance (and hence no throwaway index
    build) is materialized per request.
    """
    if not keys:
        return 0
    if index is not None and index.vectorizable:
        assert index.wei is not None
        ids = np.fromiter(
            (index.group_pos[k] for k in keys), dtype=np.int64, count=len(keys)
        )
        hits = index.selection_hits(selected)
        return int(
            np.sum(index.wei[ids] * np.minimum(hits[ids], index.cov[ids]))
        )
    return subset_score(instance.restricted_to_groups(keys), selected)


@dataclass(frozen=True)
class CustomSelectionResult:
    """Outcome of a CUSTOM-DIVERSITY run with per-tier scores.

    ``priority_score`` and ``standard_score`` report ``score_{G_d}`` and
    ``score_{G_d?}`` separately (the lexicographic components), alongside
    the underlying :class:`SelectionResult` on the rescaled instance.
    """

    result: SelectionResult
    feedback: CustomizationFeedback
    refined_pool_size: int
    priority_score: Weight
    standard_score: Weight

    @property
    def selected(self) -> tuple[str, ...]:
        return self.result.selected


def custom_select(
    repository: UserRepository,
    instance: DiversificationInstance,
    feedback: CustomizationFeedback,
    budget: int | None = None,
    method: str = "matrix",
    rng: np.random.Generator | None = None,
) -> CustomSelectionResult:
    """Solve CUSTOM-DIVERSITY greedily (Prop. 6.5).

    The default ``method="matrix"`` runs the whole pipeline on the sparse
    index when the instance is vectorizable: the refined pool ``U'`` is a
    boolean mask over the CSR incidence and the rescaled instance's index
    is derived by integer ops on the base index's ``wei`` array
    (:func:`customized_index`), so no per-request dict re-encode happens.
    Selections are identical to ``method="eager"`` for every feedback —
    non-vectorizable instances transparently take the exact dict path.

    Raises :class:`InfeasibleSelectionError` when the must-have/must-not
    filters eliminate every candidate.
    """
    base_index = (
        instance_index(instance)
        if method in ("matrix", "sharded", "stochastic")
        else None
    )
    if (
        method == "matrix"
        and base_index is not None
        and base_index.vectorizable
        and base_index.n_users == len(repository)
    ):
        # Fully-indexed fast path: refine, rescale and select entirely on
        # dense rows.  No candidate id list is ever materialized — on a
        # memory-mapped index only the ≤ budget winners are decoded.
        fast = _custom_select_rows(
            repository, instance, base_index, feedback, budget, rng
        )
        if fast is not None:
            return fast
    if base_index is not None and base_index.vectorizable:
        feedback.validate(instance.groups)
        pool = _refine_users_index(base_index, repository, feedback)
    else:
        pool = refine_users(repository, instance.groups, feedback)
    if not pool:
        raise InfeasibleSelectionError(
            "customization feedback filtered out every user"
        )
    rescaled = customized_instance(instance, feedback)
    if base_index is not None and base_index.vectorizable:
        derived = customized_index(instance, feedback)
        if derived is not None:
            # greedy_select's array backends fetch the cached index, so
            # pre-attaching the derived build avoids the dict re-encode.
            attach_index(rescaled, derived)
    result = greedy_select(
        repository,
        rescaled,
        budget=budget,
        candidates=pool,
        method=method,
        rng=rng,
    )
    standard = feedback.resolve_standard(instance.groups)
    priority_score = _score_over_keys(
        instance, base_index, feedback.priority, result.selected
    )
    standard_score = _score_over_keys(
        instance, base_index, standard, result.selected
    )
    return CustomSelectionResult(
        result=result,
        feedback=feedback,
        refined_pool_size=len(pool),
        priority_score=priority_score,
        standard_score=standard_score,
    )


def _custom_select_rows(
    repository: UserRepository,
    instance: DiversificationInstance,
    base_index: InstanceIndex,
    feedback: CustomizationFeedback,
    budget: int | None,
    rng: np.random.Generator | None,
) -> CustomSelectionResult | None:
    """CUSTOM-DIVERSITY on dense rows (every repository user indexed).

    Selects identically to the id-pool path: the eligible rows ascend in
    user-id order (the index invariant), so the row-loop's argmax
    reproduces ``_matrix_loop(derived, sorted(pool), ...)`` pick for
    pick, and ``refined_pool_size`` equals ``len(pool)`` because no user
    sits outside the index.  Returns ``None`` when the *derived* index
    cannot vectorize (the priority rescale pushed a weight past int64) —
    the caller falls back to the exact dict path.
    """
    budget = instance.budget if budget is None else budget
    if budget < 1:
        raise InvalidBudgetError(f"budget must be >= 1, got {budget}")
    feedback.validate(instance.groups)
    eligible = _refine_mask_index(base_index, feedback)
    pool_size = int(np.count_nonzero(eligible))
    if not pool_size:
        raise InfeasibleSelectionError(
            "customization feedback filtered out every user"
        )
    derived = customized_index(instance, feedback)
    if derived is None or not derived.vectorizable:
        return None
    rescaled = customized_instance(instance, feedback)
    attach_index(rescaled, derived)
    picked, gains, score = _rows_loop(
        derived, np.flatnonzero(eligible), budget, rng
    )
    result = SelectionResult(
        selected=tuple(str(derived.users[r]) for r in picked),
        score=score,
        gains=tuple(gains),
        instance=rescaled,
    )
    standard = feedback.resolve_standard(instance.groups)
    priority_score = _score_over_keys(
        instance, base_index, feedback.priority, result.selected
    )
    standard_score = _score_over_keys(
        instance, base_index, standard, result.selected
    )
    return CustomSelectionResult(
        result=result,
        feedback=feedback,
        refined_pool_size=pool_size,
        priority_score=priority_score,
        standard_score=standard_score,
    )


def feedback_group_coverage(
    instance: DiversificationInstance,
    feedback: CustomizationFeedback,
    selected: Iterable[str],
    method: str = "index",
) -> float:
    """Fraction of priority groups covered by ``selected`` (Fig. 4 metric).

    ``method="index"`` (default) gathers hit counts at the priority
    groups' dense ids off the cached CSR index — one segment sum, no
    membership-set intersection; ``method="python"`` is the dict oracle.
    Both return the identical float (covered counts are exact integers).
    """
    if not feedback.priority:
        return 1.0
    if method == "index":
        index = instance_index(instance)
        hits = index.selection_hits(selected)
        ids = np.fromiter(
            (index.group_pos[k] for k in feedback.priority),
            dtype=np.int64,
            count=len(feedback.priority),
        )
        required = np.fromiter(
            (int(instance.cov[k]) for k in feedback.priority),
            dtype=np.int64,
            count=len(feedback.priority),
        )
        covered = int(np.count_nonzero(hits[ids] >= required))
        return covered / len(feedback.priority)
    if method != "python":
        raise InvalidFeedbackError(
            f"unknown coverage method {method!r}; use 'index' or 'python'"
        )
    selected_set = set(selected)
    covered = sum(
        1
        for key in feedback.priority
        if len(instance.groups.group(key).members & selected_set)
        >= instance.cov[key]
    )
    return covered / len(feedback.priority)
