"""Customization of diversification results (paper §6).

A :class:`CustomizationFeedback` carries the four group subsets of
Def. 6.1: must-have (``G₊``), must-not (``G₋``), priority coverage
(``G_d``) and standard coverage (``G_d?``).  Groups in none of the latter
two are ignored for coverage.

Solving CUSTOM-DIVERSITY (Def. 6.3) follows the paper's Prop. 6.5 proof:

1. filter the repository down to the refined user set ``U'``;
2. rescale weights so priority groups lexicographically dominate:
   ``score~(U) = score_{G_d}(U) · MAX_SCORE + score_{G_d?}(U)`` with
   ``MAX_SCORE`` exceeding any achievable standard score — computed as an
   exact Python integer scale, so the lexicographic order is never broken
   by floating-point rounding;
3. run the unchanged greedy algorithm on the rescaled instance.

The rescaled score remains submodular, monotone and non-negative
(Lemma 6.6), so the (1 − 1/e) guarantee carries over.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from .errors import InfeasibleSelectionError, InvalidFeedbackError
from .greedy import SelectionResult, greedy_select
from .groups import GroupKey, GroupSet
from .instance import DiversificationInstance
from .profiles import UserRepository
from .scoring import subset_score
from .weights import Weight


@dataclass(frozen=True)
class CustomizationFeedback:
    """Def. 6.1 feedback: four group subsets steering the selection.

    ``priority`` and ``standard`` default to the paper defaults
    (``G_d = ∅``, ``G_d? = G``) when instantiated via
    :meth:`resolve_defaults`; a raw instance keeps ``standard=None`` to
    mean "everything not in priority".
    """

    must_have: frozenset[GroupKey] = frozenset()
    must_not: frozenset[GroupKey] = frozenset()
    priority: frozenset[GroupKey] = frozenset()
    standard: frozenset[GroupKey] | None = None

    @classmethod
    def none(cls) -> "CustomizationFeedback":
        """The empty feedback — CUSTOM-DIVERSITY degrades to BASE-DIVERSITY."""
        return cls()

    def validate(self, groups: GroupSet) -> None:
        """Ensure every referenced group exists in ``groups``."""
        known = set(groups.keys)
        for name, keys in (
            ("must_have", self.must_have),
            ("must_not", self.must_not),
            ("priority", self.priority),
            ("standard", self.standard or frozenset()),
        ):
            unknown = [k for k in keys if k not in known]
            if unknown:
                raise InvalidFeedbackError(
                    f"{name} references unknown groups: "
                    f"{[str(k) for k in unknown[:3]]}"
                )

    def resolve_standard(self, groups: GroupSet) -> frozenset[GroupKey]:
        """Concrete ``G_d?``: the stored set, or ``G − G_d`` by default."""
        if self.standard is not None:
            return self.standard
        return frozenset(groups.keys) - self.priority


def refine_users(
    repository: UserRepository,
    groups: GroupSet,
    feedback: CustomizationFeedback,
) -> list[str]:
    """Compute the refined user set ``U'`` of Def. 6.3.

    For every property with at least one must-have bucket, a user must
    belong to *some* must-have bucket of that property (the paper's
    contradiction-avoidance rule); and a user must belong to no must-not
    group.
    """
    feedback.validate(groups)
    must_have_by_property: dict[str, set[GroupKey]] = {}
    for key in feedback.must_have:
        must_have_by_property.setdefault(key.property_label, set()).add(key)

    eligible: list[str] = []
    for user_id in repository.user_ids:
        memberships = groups.groups_of(user_id)
        if memberships & feedback.must_not:
            continue
        satisfied = all(
            memberships & bucket_keys
            for bucket_keys in must_have_by_property.values()
        )
        if satisfied:
            eligible.append(user_id)
    return eligible


def _integer_weight_scale(standard_max: Weight) -> int:
    """An exact integer strictly greater than the max standard score."""
    if isinstance(standard_max, int):
        return standard_max + 1
    return math.floor(standard_max) + 1


def customized_instance(
    instance: DiversificationInstance,
    feedback: CustomizationFeedback,
) -> DiversificationInstance:
    """Rescale ``instance`` so priority groups dominate lexicographically.

    Groups outside ``G_d ∪ G_d?`` are dropped entirely (their coverage is
    ignored per Def. 6.1); priority groups get their weight multiplied by
    ``MAX_SCORE``, an integer exceeding the best achievable standard
    score ``Σ_{G in G_d?} wei(G)·cov(G)``.
    """
    feedback.validate(instance.groups)
    standard = feedback.resolve_standard(instance.groups)
    active = feedback.priority | standard
    restricted = instance.restricted_to_groups(active)

    standard_max: Weight = sum(
        instance.wei[k] * instance.cov[k] for k in standard
    )
    scale = _integer_weight_scale(standard_max)
    wei = {
        key: (
            instance.wei[key] * scale
            if key in feedback.priority
            else instance.wei[key]
        )
        for key in restricted.groups.keys
    }
    return DiversificationInstance(
        groups=restricted.groups,
        wei=wei,
        cov=dict(restricted.cov),
        budget=instance.budget,
        population_size=instance.population_size,
    )


@dataclass(frozen=True)
class CustomSelectionResult:
    """Outcome of a CUSTOM-DIVERSITY run with per-tier scores.

    ``priority_score`` and ``standard_score`` report ``score_{G_d}`` and
    ``score_{G_d?}`` separately (the lexicographic components), alongside
    the underlying :class:`SelectionResult` on the rescaled instance.
    """

    result: SelectionResult
    feedback: CustomizationFeedback
    refined_pool_size: int
    priority_score: Weight
    standard_score: Weight

    @property
    def selected(self) -> tuple[str, ...]:
        return self.result.selected


def custom_select(
    repository: UserRepository,
    instance: DiversificationInstance,
    feedback: CustomizationFeedback,
    budget: int | None = None,
    method: str = "eager",
    rng: np.random.Generator | None = None,
) -> CustomSelectionResult:
    """Solve CUSTOM-DIVERSITY greedily (Prop. 6.5).

    Raises :class:`InfeasibleSelectionError` when the must-have/must-not
    filters eliminate every candidate.
    """
    pool = refine_users(repository, instance.groups, feedback)
    if not pool:
        raise InfeasibleSelectionError(
            "customization feedback filtered out every user"
        )
    rescaled = customized_instance(instance, feedback)
    result = greedy_select(
        repository,
        rescaled,
        budget=budget,
        candidates=pool,
        method=method,
        rng=rng,
    )
    standard = feedback.resolve_standard(instance.groups)
    priority_score = subset_score(
        instance.restricted_to_groups(feedback.priority), result.selected
    ) if feedback.priority else 0
    standard_score = subset_score(
        instance.restricted_to_groups(standard), result.selected
    ) if standard else 0
    return CustomSelectionResult(
        result=result,
        feedback=feedback,
        refined_pool_size=len(pool),
        priority_score=priority_score,
        standard_score=standard_score,
    )


def feedback_group_coverage(
    instance: DiversificationInstance,
    feedback: CustomizationFeedback,
    selected: Iterable[str],
) -> float:
    """Fraction of priority groups covered by ``selected`` (Fig. 4 metric)."""
    if not feedback.priority:
        return 1.0
    selected_set = set(selected)
    covered = sum(
        1
        for key in feedback.priority
        if len(instance.groups.group(key).members & selected_set)
        >= instance.cov[key]
    )
    return covered / len(feedback.priority)
