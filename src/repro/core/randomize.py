"""Randomized diversification via noisy group weights (paper §10).

The paper's framework is deterministic up to tie-breaking; its future
work proposes "adding noise to group weights" so repeated selections
yield different (still high-quality) panels — useful when the same
client procures opinions week after week and should not poll the same
eight users every time.

:func:`noisy_instance` perturbs each weight multiplicatively with
log-normal noise (positive by construction, so instance validation and
the greedy guarantee on the *perturbed* objective are preserved);
:func:`randomized_select` wraps perturb-then-greedy, and
:func:`selection_pool` aggregates the users appearing across seeds.
"""

from __future__ import annotations

import numpy as np

from .greedy import SelectionResult, greedy_select
from .errors import InvalidInstanceError
from .instance import DiversificationInstance
from .profiles import UserRepository


def noisy_instance(
    instance: DiversificationInstance,
    sigma: float,
    rng: np.random.Generator,
) -> DiversificationInstance:
    """Multiplicative log-normal noise (``exp(N(0, σ))``) on every weight.

    ``σ = 0`` returns an equivalent instance; larger values trade score
    retention for output diversity (the ablation bench quantifies this).
    """
    if sigma < 0:
        raise InvalidInstanceError(f"sigma must be >= 0, got {sigma}")
    keys = sorted(instance.groups.keys, key=str)
    factors = np.exp(rng.normal(0.0, sigma, size=len(keys)))
    return DiversificationInstance(
        groups=instance.groups,
        wei={
            key: float(instance.wei[key]) * float(factor)
            for key, factor in zip(keys, factors)
        },
        cov=dict(instance.cov),
        budget=instance.budget,
        population_size=instance.population_size,
    )


def randomized_select(
    repository: UserRepository,
    instance: DiversificationInstance,
    sigma: float = 0.3,
    seed: int = 0,
    budget: int | None = None,
    method: str = "lazy",
) -> SelectionResult:
    """Perturb weights, then run the greedy selection.

    The returned result's ``score``/``gains`` refer to the *perturbed*
    objective; evaluate the subset against the original instance with
    :func:`repro.core.scoring.subset_score` when comparing runs.
    """
    rng = np.random.default_rng(seed)
    perturbed = noisy_instance(instance, sigma, rng)
    return greedy_select(
        repository, perturbed, budget=budget, method=method, rng=rng
    )


def selection_pool(
    repository: UserRepository,
    instance: DiversificationInstance,
    sigma: float = 0.3,
    seeds: range | list[int] = range(10),
    budget: int | None = None,
) -> dict[str, int]:
    """How often each user is picked across noisy re-selections.

    Returns ``{user_id: times selected}`` sorted by frequency — the
    rotation pool a repeated-procurement client would draw panels from.
    """
    counts: dict[str, int] = {}
    for seed in seeds:
        result = randomized_select(
            repository, instance, sigma=sigma, seed=seed, budget=budget
        )
        for user_id in result.selected:
            counts[user_id] = counts.get(user_id, 0) + 1
    return dict(
        sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    )
