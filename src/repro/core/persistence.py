"""Checkpointing the grouping module's output (paper §7, Fig. 1).

The grouping module runs "in an offline process"; for large repositories
its output — the group set and the materialized instance — is worth
persisting so the selection module can restart without re-bucketing.
These functions serialize both to plain JSON.  EBS weights are exact
(arbitrary-precision) Python integers and JSON round-trips them
losslessly.

For million-user indexes the JSON formats are the wrong tool — the CSR
arrays of a 500k-user instance are tens of megabytes of integers that
JSON would serialize as text and rebuild through Python objects.
:func:`save_index_npz` / :func:`load_index_npz` round-trip an
:class:`~repro.core.index.InstanceIndex` through one ``.npz`` file
instead: the arrays are stored verbatim (no recompute on load, no
re-derivation of groups), user ids and group keys as fixed-width
unicode arrays, so a saved index selects byte-identically after reload.
"""

from __future__ import annotations

import io
import json
import struct
import warnings
import zipfile
import zlib
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # circular at runtime: storage builds on core
    from ..storage.faults import FilesystemShim

from .buckets import Bucket
from .errors import DatasetError
from .groups import Group, GroupKey, GroupSet
from .index import InstanceIndex
from .instance import DiversificationInstance

_GROUPS_FORMAT = "podium-groups-v1"
_INSTANCE_FORMAT = "podium-instance-v1"
_INDEX_FORMAT = "podium-index-npz-v1"

#: Checkpoint-envelope version written by :func:`save_instance` and
#: :func:`save_index_npz`.  Readers accept this version and the legacy
#: header-less files of version 1; anything newer fails with a clear
#: error instead of a cryptic decode failure.
CHECKPOINT_VERSION = 2


def payload_checksum(payload: dict[str, Any]) -> int:
    """CRC32 of a JSON payload in canonical (sorted, compact) form.

    Canonicalization makes the checksum independent of key order and
    whitespace, so any JSON writer produces the same digest for the same
    logical document.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()
    return zlib.crc32(canonical) & 0xFFFFFFFF


def _unwrap_checkpoint(
    document: dict[str, Any], expected_format: str
) -> dict[str, Any]:
    """Verify a version-2 checkpoint envelope and return its payload.

    Legacy version-1 files (the bare payload, no envelope) pass through
    unchanged — their own ``format`` field is still validated by the
    payload parser.
    """
    if "payload" not in document:
        return document  # legacy v1 checkpoint: bare payload
    version = document.get("format_version")
    if not isinstance(version, int) or version > CHECKPOINT_VERSION:
        raise DatasetError(
            f"checkpoint format_version {version!r} is newer than this "
            f"reader (supports <= {CHECKPOINT_VERSION}); upgrade to load it"
        )
    if document.get("format") != expected_format:
        raise DatasetError(
            f"expected format {expected_format!r}, "
            f"got {document.get('format')!r}"
        )
    payload = document["payload"]
    if not isinstance(payload, dict):
        raise DatasetError("checkpoint payload must be a JSON object")
    stored = document.get("payload_crc32")
    actual = payload_checksum(payload)
    if stored != actual:
        raise DatasetError(
            f"checkpoint payload checksum mismatch (stored {stored!r}, "
            f"computed {actual}): the file is corrupted or was edited "
            f"without updating its header"
        )
    return payload


def _bucket_to_dict(bucket: Bucket | None) -> dict[str, Any] | None:
    if bucket is None:
        return None
    return {
        "lo": bucket.lo,
        "hi": bucket.hi,
        "label": bucket.label,
        "closed_hi": bucket.closed_hi,
    }


def _bucket_from_dict(data: dict[str, Any] | None) -> Bucket | None:
    if data is None:
        return None
    return Bucket(
        lo=float(data["lo"]),
        hi=float(data["hi"]),
        label=str(data["label"]),
        closed_hi=bool(data["closed_hi"]),
    )


def group_set_to_dict(groups: GroupSet) -> dict[str, Any]:
    """Serialize a group set (keys, members, buckets, labels)."""
    return {
        "format": _GROUPS_FORMAT,
        "groups": [
            {
                "property": g.key.property_label,
                "bucket_label": g.key.bucket_label,
                "members": sorted(g.members),
                "bucket": _bucket_to_dict(g.bucket),
                "label": g.label,
            }
            for g in groups
        ],
    }


def group_set_from_dict(document: dict[str, Any]) -> GroupSet:
    """Rebuild a group set serialized by :func:`group_set_to_dict`."""
    if document.get("format") != _GROUPS_FORMAT:
        raise DatasetError(
            f"expected format {_GROUPS_FORMAT!r}, got {document.get('format')!r}"
        )
    try:
        return GroupSet(
            Group(
                GroupKey(str(g["property"]), str(g["bucket_label"])),
                frozenset(g["members"]),
                _bucket_from_dict(g.get("bucket")),
                str(g.get("label", "")),
            )
            for g in document["groups"]
        )
    except (KeyError, TypeError) as exc:
        raise DatasetError(f"malformed group document: {exc}") from exc


def _key_token(key: GroupKey) -> str:
    return f"{key.property_label}::{key.bucket_label}"


def _key_from_token(token: str) -> GroupKey:
    prop, _, bucket = token.rpartition("::")
    return GroupKey(prop, bucket)


def instance_to_dict(instance: DiversificationInstance) -> dict[str, Any]:
    """Serialize a full diversification instance."""
    return {
        "format": _INSTANCE_FORMAT,
        "budget": instance.budget,
        "population_size": instance.population_size,
        "groups": group_set_to_dict(instance.groups),
        "wei": {_key_token(k): w for k, w in instance.wei.items()},
        "cov": {_key_token(k): c for k, c in instance.cov.items()},
    }


def instance_from_dict(document: dict[str, Any]) -> DiversificationInstance:
    """Rebuild an instance serialized by :func:`instance_to_dict`."""
    if document.get("format") != _INSTANCE_FORMAT:
        raise DatasetError(
            f"expected format {_INSTANCE_FORMAT!r}, "
            f"got {document.get('format')!r}"
        )
    try:
        return DiversificationInstance(
            groups=group_set_from_dict(document["groups"]),
            wei={
                _key_from_token(t): w for t, w in document["wei"].items()
            },
            cov={
                _key_from_token(t): int(c)
                for t, c in document["cov"].items()
            },
            budget=int(document["budget"]),
            population_size=int(document["population_size"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"malformed instance document: {exc}") from exc


def save_instance(
    instance: DiversificationInstance, path: str | Path
) -> None:
    """Write an instance checkpoint to ``path`` as JSON.

    The payload is wrapped in a checkpoint envelope carrying the format
    name, a format version and a CRC32 of the canonical payload, so a
    truncated or hand-edited file fails loudly on load instead of
    surfacing as a cryptic decode error deep in the parser.
    """
    payload = instance_to_dict(instance)
    Path(path).write_text(
        json.dumps(
            {
                "format": _INSTANCE_FORMAT,
                "format_version": CHECKPOINT_VERSION,
                "payload_crc32": payload_checksum(payload),
                "payload": payload,
            }
        )
    )


def load_instance(path: str | Path) -> DiversificationInstance:
    """Read an instance checkpoint written by :func:`save_instance`.

    Verifies the envelope's format version and payload checksum (clear
    :class:`DatasetError` on mismatch); legacy header-less checkpoints
    still load.
    """
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise DatasetError(
            f"instance checkpoint {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise DatasetError("instance checkpoint must be a JSON object")
    return instance_from_dict(_unwrap_checkpoint(document, _INSTANCE_FORMAT))


def _index_checksum(arrays: dict[str, np.ndarray]) -> int:
    """CRC32 over the index's array payload in a fixed name order.

    Each array contributes its name, dtype, shape and raw bytes, so a
    silent dtype or shape flip is caught alongside bit corruption.
    """
    crc = 0
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        header = f"{name}:{array.dtype.str}:{array.shape}:".encode()
        crc = zlib.crc32(array.tobytes(), zlib.crc32(header, crc))
    return crc & 0xFFFFFFFF


def save_index_npz(
    index: InstanceIndex,
    path: str | Path,
    compressed: bool = False,
    fs: "FilesystemShim | None" = None,
) -> None:
    """Write an :class:`InstanceIndex` checkpoint as one ``.npz`` file.

    Everything needed to reconstruct the index exactly is stored —
    including ``wei``/``initial_gains`` and the ``vectorizable`` flag, so
    loading never recomputes the big-int mass check.  A format-version
    header and a CRC32 over every stored array guard the load path the
    same way the JSON envelope guards :func:`save_instance`.
    Non-vectorizable indexes (EBS big-ints) are rejected: their exact
    weights live in the instance, not the index, and belong in the JSON
    checkpoint.

    The default stores the arrays verbatim (``ZIP_STORED`` members) so
    :func:`open_index_npz` / :func:`load_index_npz` can memory-map them
    in place — the layout the serving tier depends on, where N forked
    workers share one page-cache copy of the CSR payload instead of N
    private heap copies.  Pass ``compressed=True`` for DEFLATE members
    when the checkpoint is an archival/transfer artifact and mapping
    does not matter.

    .. note:: **Migration.** Checkpoints written before the default
       flipped (DEFLATE-compressed) still load through
       :func:`load_index_npz`; only :func:`open_index_npz` requires
       stored members.  Re-save once with the new default to make an
       old checkpoint mappable.

    ``fs`` routes the final write through an injectable filesystem shim
    (:class:`~repro.storage.faults.FilesystemShim`): the archive is
    assembled in memory and lands on disk via one ``fs.write_bytes``
    call, so the chaos harness can tear or crash an index write exactly
    like any other durable-tier file.  ``None`` (the default, and the
    right choice for out-of-core checkpoints) streams straight to
    ``path`` with no in-memory copy of the archive.
    """
    if not index.vectorizable:
        raise DatasetError(
            "only vectorizable indexes can be saved as .npz; big-int "
            "weights are not array-representable — persist the instance "
            "as JSON instead"
        )
    assert index.wei is not None and index.initial_gains is not None
    arrays = {
        "users": np.asarray(index.users, dtype=np.str_),
        "key_property": np.asarray(
            [k.property_label for k in index.group_keys], dtype=np.str_
        ),
        "key_bucket": np.asarray(
            [k.bucket_label for k in index.group_keys], dtype=np.str_
        ),
        "u_indptr": index.u_indptr,
        "u_indices": index.u_indices,
        "g_indptr": index.g_indptr,
        "g_indices": index.g_indices,
        "cov": index.cov,
        "wei": index.wei,
        "initial_gains": index.initial_gains,
    }
    writer = np.savez if not compressed else np.savez_compressed
    envelope = {
        "format": np.asarray(_INDEX_FORMAT),
        "format_version": np.asarray(CHECKPOINT_VERSION, dtype=np.int64),
        "payload_crc32": np.asarray(
            _index_checksum(arrays), dtype=np.uint32
        ),
    }
    if fs is None:
        writer(Path(path), **envelope, **arrays)
        return
    # np.savez accepts any file-like with write(): build the archive in
    # memory, then let the shim make the single write (and its faults)
    # visible to the chaos harness.
    buffer = io.BytesIO()
    writer(buffer, **envelope, **arrays)
    fs.write_bytes(Path(path), buffer.getvalue())


#: Array members of an index ``.npz`` that are worth memory-mapping: the
#: CSR topology and integer payloads.  The unicode id/key arrays are
#: converted to Python objects on load regardless, so mapping them buys
#: nothing.
_MMAP_MEMBERS = (
    "u_indptr",
    "u_indices",
    "g_indptr",
    "g_indices",
    "cov",
    "wei",
    "initial_gains",
)

_ZIP_LOCAL_HEADER = struct.Struct("<4s22xHH")  # magic, name len, extra len


def _stored_member_layouts(
    path: Path, wanted: tuple[str, ...]
) -> dict[str, tuple[int, np.dtype, tuple[int, ...], bool]]:
    """Locate uncompressed ``.npy`` members inside an ``.npz`` archive.

    ``.npz`` is a ZIP archive; a member written by :func:`np.savez` is a
    ``ZIP_STORED`` (uncompressed) ``.npy`` file sitting at a computable
    byte offset.  For every requested member that is stored verbatim,
    returns ``(data_offset, dtype, shape, fortran_order)`` — enough to
    either :class:`np.memmap` the array in place or stream its raw bytes
    with bounded memory.  Missing or compressed members are simply
    absent from the result (the caller decides whether that is a
    fallback or an error).
    """
    layouts: dict[str, tuple[int, np.dtype, tuple[int, ...], bool]] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for name in wanted:
            try:
                info = archive.getinfo(f"{name}.npy")
            except KeyError:
                continue
            if info.compress_type != zipfile.ZIP_STORED:
                continue  # deflated member: not mappable / streamable
            raw.seek(info.header_offset)
            header = raw.read(_ZIP_LOCAL_HEADER.size)
            magic, name_len, extra_len = _ZIP_LOCAL_HEADER.unpack(header)
            if magic != b"PK\x03\x04":
                raise DatasetError(
                    f"index checkpoint {path} has a corrupt ZIP member "
                    f"header for {name!r}"
                )
            npy_start = (
                info.header_offset
                + _ZIP_LOCAL_HEADER.size
                + name_len
                + extra_len
            )
            raw.seek(npy_start)
            version = np.lib.format.read_magic(raw)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                    raw
                )
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(
                    raw
                )
            else:  # pragma: no cover — numpy writes 1.0/2.0 only
                continue
            layouts[name] = (raw.tell(), dtype, tuple(shape), fortran)
    return layouts


def _mmap_npz_members(
    path: Path, wanted: tuple[str, ...]
) -> dict[str, np.ndarray]:
    """Memory-map the uncompressed ``.npy`` members of an ``.npz`` file.

    The array data of a ``ZIP_STORED`` member is mapped read-only
    straight out of the archive with :class:`np.memmap` — no
    decompression, no heap copy, and the pages are shared between every
    process that maps the same file.  Members that turn out to be
    compressed are skipped (the caller falls back to the eagerly-loaded
    copy for those).
    """
    mapped: dict[str, np.ndarray] = {}
    for name, (offset, dtype, shape, fortran) in _stored_member_layouts(
        path, wanted
    ).items():
        if dtype.hasobject:
            continue  # object arrays cannot be mapped
        mapped[name] = np.memmap(
            path,
            mode="r",
            dtype=dtype,
            shape=shape,
            order="F" if fortran else "C",
            offset=offset,
        )
    return mapped


#: ``.npz`` members that are checkpoint metadata, not array payload —
#: excluded from the payload checksum.
_ENVELOPE_MEMBERS = ("format", "format_version", "payload_crc32")


def streamed_index_checksum(
    path: str | Path, chunk_bytes: int = 1 << 22
) -> int:
    """Recompute an index checkpoint's payload CRC32 with bounded memory.

    Replays exactly what :func:`_index_checksum` computes over the
    in-memory arrays — per member (in sorted name order) the
    ``name:dtype:shape:`` header followed by the raw array bytes — but
    reads ``ZIP_STORED`` members straight off disk in ``chunk_bytes``
    slices, so a multi-gigabyte checkpoint verifies without ever being
    resident.  Compressed members (legacy checkpoints) are decompressed
    whole as a fallback.
    """
    path = Path(path)
    with zipfile.ZipFile(path) as archive:
        names = sorted(
            info.filename[:-4]
            for info in archive.infolist()
            if info.filename.endswith(".npy")
        )
    names = [name for name in names if name not in _ENVELOPE_MEMBERS]
    layouts = _stored_member_layouts(path, tuple(names))
    crc = 0
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for name in names:
            layout = layouts.get(name)
            if layout is None:  # compressed member: no streamable layout
                with archive.open(f"{name}.npy") as member:
                    array = np.lib.format.read_array(
                        member, allow_pickle=False
                    )
                array = np.ascontiguousarray(array)
                header = f"{name}:{array.dtype.str}:{array.shape}:".encode()
                crc = zlib.crc32(array.tobytes(), zlib.crc32(header, crc))
                continue
            offset, dtype, shape, _fortran = layout
            header = f"{name}:{dtype.str}:{shape}:".encode()
            crc = zlib.crc32(header, crc)
            remaining = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            raw.seek(offset)
            while remaining > 0:
                data = raw.read(min(chunk_bytes, remaining))
                if not data:
                    raise DatasetError(
                        f"index checkpoint {path} is truncated inside "
                        f"member {name!r}"
                    )
                crc = zlib.crc32(data, crc)
                remaining -= len(data)
    return crc & 0xFFFFFFFF


def load_index_npz(path: str | Path, mmap: bool = False) -> InstanceIndex:
    """Read an index checkpoint written by :func:`save_index_npz`.

    The CSR arrays come back verbatim (dtypes included), so selections
    over the loaded index are byte-identical to the original's.  The
    format version and array checksum are verified first (clear
    :class:`DatasetError` on mismatch); legacy header-less ``.npz``
    checkpoints still load.

    With ``mmap=True`` the big integer arrays are re-opened as read-only
    memory maps of the archive *after* that checksum verification — for
    checkpoints written with ``compressed=False`` this keeps the CSR
    payload in the OS page cache (shared across forked serving workers)
    instead of private process memory.  Compressed members silently fall
    back to the eagerly-loaded copy, so ``mmap=True`` is always safe.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        if str(data["format"]) != _INDEX_FORMAT:
            raise DatasetError(
                f"expected format {_INDEX_FORMAT!r}, "
                f"got {str(data['format'])!r}"
            )
        if "format_version" in data.files:
            version = int(data["format_version"])
            if version > CHECKPOINT_VERSION:
                raise DatasetError(
                    f"index checkpoint format_version {version} is newer "
                    f"than this reader (supports <= {CHECKPOINT_VERSION}); "
                    f"upgrade to load it"
                )
            stored = int(data["payload_crc32"])
            arrays = {
                name: data[name]
                for name in data.files
                if name not in ("format", "format_version", "payload_crc32")
            }
            actual = _index_checksum(arrays)
            if stored != actual:
                raise DatasetError(
                    f"index checkpoint checksum mismatch (stored {stored}, "
                    f"computed {actual}): the file is corrupted or truncated"
                )
        users = tuple(str(u) for u in data["users"])
        group_keys = tuple(
            GroupKey(str(p), str(b))
            for p, b in zip(data["key_property"], data["key_bucket"])
        )
        arrays = {name: data[name] for name in _MMAP_MEMBERS}
    if mmap:
        mapped = _mmap_npz_members(path, _MMAP_MEMBERS)
        unmapped = [name for name in _MMAP_MEMBERS if name not in mapped]
        if unmapped:
            warnings.warn(
                f"index checkpoint {path}: member(s) "
                f"{', '.join(repr(n) for n in unmapped)} are "
                f"DEFLATE-compressed and cannot be memory-mapped; falling "
                f"back to eagerly-loaded copies for them.  Re-save the "
                f"checkpoint with save_index_npz(..., compressed=False) to "
                f"keep the CSR payload out of private process memory.",
                RuntimeWarning,
                stacklevel=2,
            )
        arrays.update(mapped)
    return InstanceIndex(
        users=users,
        user_pos={u: i for i, u in enumerate(users)},
        group_keys=group_keys,
        group_pos={key: gid for gid, key in enumerate(group_keys)},
        u_indptr=arrays["u_indptr"],
        u_indices=arrays["u_indices"],
        g_indptr=arrays["g_indptr"],
        g_indices=arrays["g_indices"],
        cov=arrays["cov"],
        wei=arrays["wei"],
        initial_gains=arrays["initial_gains"],
        vectorizable=True,
    )


class LazyUserIds(Sequence):
    """Read-only user-id sequence over a memory-mapped unicode array.

    Stands in for the eager ``tuple[str, ...]`` on lazily opened
    indexes: ``len``, indexing, slicing and iteration behave
    identically, but ids are decoded only when asked for.  At 5M users
    the eager tuple (plus its inverse dict) costs on the order of a
    gigabyte of heap — most of the out-of-core RSS budget — while this
    wrapper holds a single mmap reference.
    """

    __slots__ = ("_ids",)

    def __init__(self, ids: np.ndarray) -> None:
        self._ids = ids

    def __len__(self) -> int:
        return len(self._ids)

    def __getitem__(self, item):  # type: ignore[override]
        if isinstance(item, slice):
            return tuple(str(u) for u in self._ids[item])
        return str(self._ids[item])

    def __iter__(self):
        for u in self._ids:
            yield str(u)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"LazyUserIds(n={len(self._ids)})"


class SortedIdPositions(Mapping):
    """``user_pos`` stand-in: binary search over the sorted id array.

    Index checkpoints store user ids sorted ascending (that is the row
    order of the CSR), so the id→row dict can be replaced by
    :func:`np.searchsorted` against the mapped array — O(log n) per
    lookup, zero resident copies.  Selection resolves a handful of ids
    per pick, so the log factor is invisible next to the gain scans.
    """

    __slots__ = ("_ids",)

    def __init__(self, ids: np.ndarray) -> None:
        self._ids = ids

    def get(self, key, default=None):
        ids = self._ids
        if not isinstance(key, str) or len(ids) == 0:
            return default
        if len(key) > ids.dtype.itemsize // 4:
            # Longer than any stored id: casting for searchsorted would
            # truncate and could produce a false hit.
            return default
        pos = int(np.searchsorted(ids, key))
        if pos < len(ids) and str(ids[pos]) == key:
            return pos
        return default

    def __getitem__(self, key):
        pos = self.get(key)
        if pos is None:
            raise KeyError(key)
        return pos

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self):
        return (str(u) for u in self._ids)


#: Members :func:`open_index_npz` maps instead of loading: the CSR
#: topology, the integer payloads, and — unlike plain ``mmap=True`` —
#: the fixed-width user-id array itself.
_LAZY_MEMBERS = _MMAP_MEMBERS + ("users",)

#: Attribute attached to lazily opened indexes recording the checkpoint
#: they were mapped from, so shard workers can re-open the same file
#: instead of pickling the index across the fork boundary.
_SOURCE_PATH_ATTR = "_source_path"


def index_source_path(index: InstanceIndex) -> str | None:
    """Checkpoint path a lazily opened index was mapped from, if any."""
    return getattr(index, _SOURCE_PATH_ATTR, None)


def index_npz_mappable(path: str | Path) -> bool:
    """Whether :func:`open_index_npz` can fully map this checkpoint.

    True iff every large member (CSR topology, integer payloads and the
    user-id array) is ``ZIP_STORED``.  Legacy DEFLATE-compressed
    checkpoints return False — callers fall back to
    :func:`load_index_npz` for those instead of letting
    :func:`open_index_npz` raise.  Probe failures (missing file, not a
    ZIP) also return False so the eager loader reports the real error.
    """
    try:
        layouts = _stored_member_layouts(Path(path), _LAZY_MEMBERS)
    except (OSError, zipfile.BadZipFile, DatasetError):
        return False
    return all(name in layouts for name in _LAZY_MEMBERS)


def open_index_npz(path: str | Path, verify: bool = True) -> InstanceIndex:
    """Open an uncompressed index checkpoint fully memory-mapped.

    :func:`load_index_npz` — even with ``mmap=True`` — first loads every
    member eagerly (the ``np.load`` pass plus the id tuple and its
    inverse dict), which at millions of users costs more transient heap
    than the selection it serves.  This opener never materializes the
    payload: the small envelope and group-key members are read eagerly,
    every large member (user ids included) is memory-mapped in place,
    ``index.users`` becomes a :class:`LazyUserIds` sequence and
    ``index.user_pos`` a :class:`SortedIdPositions` binary-search
    mapping.  Resident cost is O(groups), independent of the user count.

    Requires the checkpoint to have been written uncompressed
    (``save_index_npz(..., compressed=False)`` or
    :func:`~repro.core.external.build_index_external`); compressed
    members raise a :class:`DatasetError` instead of silently ballooning
    the heap.  ``verify=True`` replays the payload CRC32 with
    bounded-memory streaming reads before anything is mapped.
    """
    path = Path(path)
    with zipfile.ZipFile(path) as archive:
        names = {
            info.filename[:-4]
            for info in archive.infolist()
            if info.filename.endswith(".npy")
        }

        def read_small(name: str) -> np.ndarray:
            with archive.open(f"{name}.npy") as member:
                return np.lib.format.read_array(member, allow_pickle=False)

        if "format" not in names or str(read_small("format")) != _INDEX_FORMAT:
            raise DatasetError(
                f"{path} is not an index checkpoint "
                f"(missing format {_INDEX_FORMAT!r})"
            )
        stored_crc: int | None = None
        if "format_version" in names:
            version = int(read_small("format_version"))
            if version > CHECKPOINT_VERSION:
                raise DatasetError(
                    f"index checkpoint format_version {version} is newer "
                    f"than this reader (supports <= {CHECKPOINT_VERSION}); "
                    f"upgrade to load it"
                )
            stored_crc = int(read_small("payload_crc32"))
        key_property = read_small("key_property")
        key_bucket = read_small("key_bucket")
    if verify and stored_crc is not None:
        actual = streamed_index_checksum(path)
        if actual != stored_crc:
            raise DatasetError(
                f"index checkpoint checksum mismatch (stored {stored_crc}, "
                f"computed {actual}): the file is corrupted or truncated"
            )
    mapped = _mmap_npz_members(path, _LAZY_MEMBERS)
    unmapped = [name for name in _LAZY_MEMBERS if name not in mapped]
    if unmapped:
        raise DatasetError(
            f"open_index_npz needs every large member ZIP_STORED, but "
            f"{', '.join(repr(n) for n in unmapped)} of {path} are "
            f"compressed or missing — rewrite the checkpoint with "
            f"save_index_npz(..., compressed=False), or use load_index_npz "
            f"for an eager load"
        )
    group_keys = tuple(
        GroupKey(str(p), str(b)) for p, b in zip(key_property, key_bucket)
    )
    ids = mapped["users"]
    index = InstanceIndex(
        users=LazyUserIds(ids),
        user_pos=SortedIdPositions(ids),
        group_keys=group_keys,
        group_pos={key: gid for gid, key in enumerate(group_keys)},
        u_indptr=mapped["u_indptr"],
        u_indices=mapped["u_indices"],
        g_indptr=mapped["g_indptr"],
        g_indices=mapped["g_indices"],
        cov=mapped["cov"],
        wei=mapped["wei"],
        initial_gains=mapped["initial_gains"],
        vectorizable=True,
    )
    object.__setattr__(index, _SOURCE_PATH_ATTR, str(path))
    return index
