"""Checkpointing the grouping module's output (paper §7, Fig. 1).

The grouping module runs "in an offline process"; for large repositories
its output — the group set and the materialized instance — is worth
persisting so the selection module can restart without re-bucketing.
These functions serialize both to plain JSON.  EBS weights are exact
(arbitrary-precision) Python integers and JSON round-trips them
losslessly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .buckets import Bucket
from .errors import DatasetError
from .groups import Group, GroupKey, GroupSet
from .instance import DiversificationInstance

_GROUPS_FORMAT = "podium-groups-v1"
_INSTANCE_FORMAT = "podium-instance-v1"


def _bucket_to_dict(bucket: Bucket | None) -> dict[str, Any] | None:
    if bucket is None:
        return None
    return {
        "lo": bucket.lo,
        "hi": bucket.hi,
        "label": bucket.label,
        "closed_hi": bucket.closed_hi,
    }


def _bucket_from_dict(data: dict[str, Any] | None) -> Bucket | None:
    if data is None:
        return None
    return Bucket(
        lo=float(data["lo"]),
        hi=float(data["hi"]),
        label=str(data["label"]),
        closed_hi=bool(data["closed_hi"]),
    )


def group_set_to_dict(groups: GroupSet) -> dict[str, Any]:
    """Serialize a group set (keys, members, buckets, labels)."""
    return {
        "format": _GROUPS_FORMAT,
        "groups": [
            {
                "property": g.key.property_label,
                "bucket_label": g.key.bucket_label,
                "members": sorted(g.members),
                "bucket": _bucket_to_dict(g.bucket),
                "label": g.label,
            }
            for g in groups
        ],
    }


def group_set_from_dict(document: dict[str, Any]) -> GroupSet:
    """Rebuild a group set serialized by :func:`group_set_to_dict`."""
    if document.get("format") != _GROUPS_FORMAT:
        raise DatasetError(
            f"expected format {_GROUPS_FORMAT!r}, got {document.get('format')!r}"
        )
    try:
        return GroupSet(
            Group(
                GroupKey(str(g["property"]), str(g["bucket_label"])),
                frozenset(g["members"]),
                _bucket_from_dict(g.get("bucket")),
                str(g.get("label", "")),
            )
            for g in document["groups"]
        )
    except (KeyError, TypeError) as exc:
        raise DatasetError(f"malformed group document: {exc}") from exc


def _key_token(key: GroupKey) -> str:
    return f"{key.property_label}::{key.bucket_label}"


def _key_from_token(token: str) -> GroupKey:
    prop, _, bucket = token.rpartition("::")
    return GroupKey(prop, bucket)


def instance_to_dict(instance: DiversificationInstance) -> dict[str, Any]:
    """Serialize a full diversification instance."""
    return {
        "format": _INSTANCE_FORMAT,
        "budget": instance.budget,
        "population_size": instance.population_size,
        "groups": group_set_to_dict(instance.groups),
        "wei": {_key_token(k): w for k, w in instance.wei.items()},
        "cov": {_key_token(k): c for k, c in instance.cov.items()},
    }


def instance_from_dict(document: dict[str, Any]) -> DiversificationInstance:
    """Rebuild an instance serialized by :func:`instance_to_dict`."""
    if document.get("format") != _INSTANCE_FORMAT:
        raise DatasetError(
            f"expected format {_INSTANCE_FORMAT!r}, "
            f"got {document.get('format')!r}"
        )
    try:
        return DiversificationInstance(
            groups=group_set_from_dict(document["groups"]),
            wei={
                _key_from_token(t): w for t, w in document["wei"].items()
            },
            cov={
                _key_from_token(t): int(c)
                for t, c in document["cov"].items()
            },
            budget=int(document["budget"]),
            population_size=int(document["population_size"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"malformed instance document: {exc}") from exc


def save_instance(
    instance: DiversificationInstance, path: str | Path
) -> None:
    """Write an instance checkpoint to ``path`` as JSON."""
    Path(path).write_text(json.dumps(instance_to_dict(instance)))


def load_instance(path: str | Path) -> DiversificationInstance:
    """Read an instance checkpoint written by :func:`save_instance`."""
    return instance_from_dict(json.loads(Path(path).read_text()))
