"""Simple and complex user groups (paper §3.2, Def. 3.4).

A *simple group* ``G_{p,b}`` is the set of users whose score for property
``p`` falls in bucket ``b``.  The :class:`GroupSet` is the output of the
grouping module (paper §7): it holds every group's member set, its label
and the bidirectional user ↔ group links the greedy algorithm requires.

Complex groups (intersections/unions of simple groups, Example 3.5) are
supported both as first-class :class:`Group` members of a group set and as
*evaluation-only* constructs for the intersected-property coverage metric.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from .buckets import (
    Bucket,
    assign_bucket_indices,
    is_boolean,
    partition_from_splits,
    split_scores,
)
from .errors import InvalidInstanceError, UnknownGroupError
from .profiles import UserRepository


@dataclass(frozen=True)
class GroupKey:
    """Identifier of a simple group: property label + bucket label."""

    property_label: str
    bucket_label: str

    def __str__(self) -> str:
        return f"{self.property_label}::{self.bucket_label}"


@dataclass(frozen=True)
class Group:
    """A user group with its defining key, bucket and member set.

    ``bucket`` is ``None`` for complex (intersection/union) groups, which
    have no single defining score range.
    """

    key: GroupKey
    members: frozenset[str]
    bucket: Bucket | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            object.__setattr__(self, "label", _default_label(self))

    @property
    def size(self) -> int:
        """``|G|`` — the number of members."""
        return len(self.members)

    def intersect(self, other: "Group", label: str = "") -> "Group":
        """Complex group: members of both ``self`` and ``other``."""
        key = GroupKey(f"({self.key} & {other.key})", "intersection")
        return Group(key, self.members & other.members, None,
                     label or f"{self.label} AND {other.label}")

    def union(self, other: "Group", label: str = "") -> "Group":
        """Complex group: members of ``self`` or ``other``."""
        key = GroupKey(f"({self.key} | {other.key})", "union")
        return Group(key, self.members | other.members, None,
                     label or f"{self.label} OR {other.label}")

    def __contains__(self, user_id: object) -> bool:
        return user_id in self.members

    def __len__(self) -> int:
        return len(self.members)


def _default_label(group: Group) -> str:
    """Human-readable group label per paper §5 (property + bucket label)."""
    if group.bucket is None:
        return str(group.key)
    if group.bucket.label in ("true", "false"):
        # Boolean properties read naturally without a bucket label
        # ("lives in Tokyo"), negated for the false bucket.
        prefix = "not " if group.bucket.label == "false" else ""
        return f"{prefix}{group.key.property_label}"
    return f"{group.bucket.label} scores for {group.key.property_label}"


class GroupSet:
    """The set ``G`` of (possibly overlapping) groups over a population.

    Maintains the group → members and user → groups links described in the
    data-structures paragraph of paper §4, so that the greedy algorithm can
    walk both directions in O(1) per step.
    """

    def __init__(self, groups: Iterable[Group] = ()) -> None:
        self._groups: dict[GroupKey, Group] = {}
        #: User → groups reverse links, built lazily on the first reverse
        #: lookup (``groups_of``/``degree``/``max_degree``).  Projections
        #: like :meth:`subset` only ever walk the forward direction, so
        #: deferring the build keeps them O(|keys|) instead of O(Σ|G|) —
        #: the customization path derives a restricted group set per
        #: request and never asks it a reverse question.
        self._user_groups: dict[str, set[GroupKey]] | None = None
        #: Lazily-built immutable views handed out by :meth:`groups_of`;
        #: entries are invalidated whenever a user's link set changes.
        self._views: dict[str, frozenset[GroupKey]] = {}
        #: Mutation counter consumed by derived caches (the sparse
        #: :class:`~repro.core.index.InstanceIndex` keyed on an instance
        #: drops its cached build when this moves).
        self._version = 0
        for group in groups:
            self.add(group)

    @property
    def version(self) -> int:
        """Monotone counter bumped by every mutation of the group set.

        Derived structures (e.g. the cached sparse index of an instance
        built over this group set) compare the version they were built at
        against the current one to detect staleness — the same
        invalidation contract ``property_incidence`` has with
        :meth:`~repro.core.profiles.UserRepository.add`.
        """
        return self._version

    def add(self, group: Group) -> None:
        """Insert ``group``; re-adding the same key replaces it.

        Users the replacement unlinks from their last group are pruned
        from the user → groups map entirely, so ``degree`` and
        ``groups_of`` never see stale empty entries.
        """
        previous = self._groups.get(group.key)
        if self._user_groups is not None:
            # Reverse links exist: maintain them incrementally.  (Views
            # can only be populated once the links exist, so the lazy
            # branch below has nothing to invalidate.)
            if previous is not None:
                for user_id in previous.members:
                    links = self._user_groups[user_id]
                    links.discard(group.key)
                    if not links:
                        del self._user_groups[user_id]
                    self._views.pop(user_id, None)
            for user_id in group.members:
                self._user_groups.setdefault(user_id, set()).add(group.key)
                self._views.pop(user_id, None)
        self._groups[group.key] = group
        self._version += 1

    def _links(self) -> dict[str, set[GroupKey]]:
        """The user → groups map, built on first demand.

        Building from the current ``_groups`` state folds any
        replacements that happened while the map was unbuilt, so the
        result is identical to eager incremental maintenance.
        """
        if self._user_groups is None:
            links: dict[str, set[GroupKey]] = {}
            for group in self._groups.values():
                for user_id in group.members:
                    links.setdefault(user_id, set()).add(group.key)
            self._user_groups = links
        return self._user_groups

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[Group]:
        return iter(self._groups.values())

    def __contains__(self, key: object) -> bool:
        return key in self._groups

    @property
    def keys(self) -> list[GroupKey]:
        return list(self._groups)

    def group(self, key: GroupKey) -> Group:
        """Return the group stored under ``key``; raise if absent."""
        try:
            return self._groups[key]
        except KeyError:
            raise UnknownGroupError(f"unknown group {key}") from None

    def groups_of(self, user_id: str) -> frozenset[GroupKey]:
        """Keys of every group containing ``user_id`` (user explanation).

        Returns a cached immutable view: the greedy hot path calls this
        once per candidate per round, so no per-call copy is made.
        """
        view = self._views.get(user_id)
        if view is None:
            view = frozenset(self._links().get(user_id, ()))
            self._views[user_id] = view
        return view

    def degree(self, user_id: str) -> int:
        """``|{G in G-set | u in G}|`` — the user's group membership count."""
        return len(self._links().get(user_id, ()))

    def max_group_size(self) -> int:
        """``max_G |G|`` (appears in the complexity bound of Prop. 4.4)."""
        return max((g.size for g in self), default=0)

    def max_degree(self) -> int:
        """``max_u |{G | u in G}|`` (the other Prop. 4.4 factor)."""
        return max((len(k) for k in self._links().values()), default=0)

    def top_k(self, k: int) -> list[Group]:
        """The ``k`` largest groups, ties broken by key for determinism."""
        return sorted(self, key=lambda g: (-g.size, str(g.key)))[:k]

    def restricted_to_users(self, user_ids: Iterable[str]) -> "GroupSet":
        """Project every group onto a user subset (used by CUSTOM-DIVERSITY)."""
        keep = frozenset(user_ids)
        return GroupSet(
            Group(g.key, g.members & keep, g.bucket, g.label) for g in self
        )

    def subset(self, keys: Iterable[GroupKey]) -> "GroupSet":
        """Return a group set containing only ``keys``."""
        return GroupSet(self.group(k) for k in keys)

    def buckets_of_property(self, property_label: str) -> list[Group]:
        """All simple groups derived from one property — the set ``β(p)``."""
        return [
            g
            for g in self
            if g.bucket is not None and g.key.property_label == property_label
        ]

    def __repr__(self) -> str:
        return f"GroupSet(groups={len(self)})"


@dataclass(frozen=True)
class GroupingConfig:
    """Configuration of the offline grouping module (paper §7).

    ``buckets_per_property`` is the target number of score buckets ``k``
    for non-Boolean properties; ``strategy`` selects the 1-d splitting
    method; ``min_support`` drops properties carried by fewer users (rare
    properties generate near-empty groups that only add noise);
    ``drop_empty`` removes buckets that end up with no members;
    ``fixed_splits``, when given, bypasses the data-driven strategy and
    buckets every non-Boolean property at these interior boundaries (the
    paper's running example uses 0.4 and 0.65).
    """

    buckets_per_property: int = 3
    strategy: str = "jenks"
    min_support: int = 1
    drop_empty: bool = True
    fixed_splits: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.buckets_per_property < 1:
            raise InvalidInstanceError(
                f"buckets_per_property must be >= 1, "
                f"got {self.buckets_per_property}"
            )
        if self.min_support < 1:
            raise InvalidInstanceError(
                f"min_support must be >= 1, got {self.min_support}"
            )


def build_simple_groups(
    repository: UserRepository,
    config: GroupingConfig | None = None,
) -> GroupSet:
    """Run the grouping module: bucket every property, emit simple groups.

    This is the offline pre-processing step of Fig. 1: for each property
    ``p`` with enough support, compute ``β(p)`` with the configured
    splitting strategy and materialize one :class:`Group` per non-empty
    bucket.
    """
    config = config or GroupingConfig()
    group_set = GroupSet()
    for label in repository.property_labels:
        if repository.support(label) < config.min_support:
            continue
        user_ids, scores = repository.scores_for(label)
        if config.fixed_splits is not None and not is_boolean(scores):
            buckets = partition_from_splits(config.fixed_splits)
        else:
            buckets = split_scores(
                scores, k=config.buckets_per_property, strategy=config.strategy
            )
        assignment = assign_bucket_indices(buckets, scores)
        if assignment is None:
            memberships = [
                frozenset(
                    user_id
                    for user_id, score in zip(user_ids, scores)
                    if bucket.contains(float(score))
                )
                for bucket in buckets
            ]
        else:
            ids = np.asarray(user_ids, dtype=object)
            memberships = [
                frozenset(ids[assignment == position].tolist())
                for position in range(len(buckets))
            ]
        for bucket, members in zip(buckets, memberships):
            if config.drop_empty and not members:
                continue
            group_set.add(Group(GroupKey(label, bucket.label), members, bucket))
    return group_set


def intersect_groups(groups: Iterable[Group]) -> Group:
    """Fold a sequence of groups into one intersection group."""
    groups = list(groups)
    if not groups:
        raise InvalidInstanceError("cannot intersect an empty group sequence")
    result = groups[0]
    for group in groups[1:]:
        result = result.intersect(group)
    return result


def augment_with_intersections(
    groups: GroupSet,
    min_size: int = 2,
    max_new: int = 100,
) -> GroupSet:
    """Add the largest pairwise cross-property intersections as groups.

    Example 3.5 shows complex groups like "Tokyo residents who are also
    Mexican food lovers"; this helper materializes the ``max_new``
    largest such intersections (of at least ``min_size`` members) as
    first-class groups, so weights/coverage/selection treat them like any
    simple group.  Buckets of the same property never intersect and are
    skipped.  Returns a new group set; the input is untouched.
    """
    if min_size < 1:
        raise InvalidInstanceError(f"min_size must be >= 1, got {min_size}")
    simple = [g for g in groups if g.bucket is not None]
    simple.sort(key=lambda g: (-g.size, str(g.key)))
    candidates: list[Group] = []
    # Sizes of the current best ``max_new`` candidates (min-heap).  Since
    # |A ∩ B| <= min(|A|, |B|) and the pair scan walks sizes in
    # non-increasing order, a pair whose bound falls strictly below the
    # max_new-th best size so far — and hence every later pair in that
    # row/column — can never enter the final top list, so the scan stops
    # early instead of touching all O(n²) pairs.  Ties (bound equal to
    # the threshold) keep scanning, so the emitted top ``max_new`` under
    # the (-size, key) order are identical to the exhaustive scan's.
    best_sizes: list[int] = []

    def cutoff(bound: int) -> bool:
        return len(best_sizes) == max_new and bound < best_sizes[0]

    for i in range(len(simple)):
        if simple[i].size < min_size or cutoff(simple[i].size):
            break
        for j in range(i + 1, len(simple)):
            a, b = simple[i], simple[j]
            if b.size < min_size or cutoff(b.size):
                break
            if a.key.property_label == b.key.property_label:
                continue
            common = a.intersect(b)
            if common.size >= min_size:
                candidates.append(common)
                if len(best_sizes) < max_new:
                    heapq.heappush(best_sizes, common.size)
                elif common.size > best_sizes[0]:
                    heapq.heapreplace(best_sizes, common.size)
    candidates.sort(key=lambda g: (-g.size, str(g.key)))
    augmented = GroupSet(groups)
    for group in candidates[:max_new]:
        augmented.add(group)
    return augmented
