"""Unit tests for the synthetic platform generator (paper §8.1 substitute)."""

import numpy as np
import pytest

from repro.core import DatasetError
from repro.datasets import (
    SynthConfig,
    generate,
    tripadvisor_config,
    yelp_config,
)
from repro.datasets.synth import generate_profile_repository


class TestConfigValidation:
    def test_defaults_valid(self):
        SynthConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 0},
            {"demographic_rate": 1.5},
            {"n_cities": 0},
            {"n_cities": 999},
            {"topics_per_business": (0, 3)},
            {"topics_per_business": (5, 3)},
            {"mentions_per_review": (0, 2)},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(DatasetError):
            SynthConfig(**kwargs)

    def test_preset_overrides(self):
        config = tripadvisor_config(n_users=50, n_businesses=10)
        assert config.n_users == 50
        assert config.n_businesses == 10
        assert config.name == "tripadvisor"


class TestGenerate:
    def test_deterministic_for_seed(self):
        config = SynthConfig(n_users=40, n_businesses=15)
        a = generate(config, seed=5)
        b = generate(config, seed=5)
        assert [r.rating for r in a.reviews] == [r.rating for r in b.reviews]
        assert a.user_ids == b.user_ids

    def test_different_seeds_differ(self):
        config = SynthConfig(n_users=40, n_businesses=15)
        a = generate(config, seed=5)
        b = generate(config, seed=6)
        assert [r.rating for r in a.reviews] != [r.rating for r in b.reviews]

    def test_population_sizes(self):
        config = SynthConfig(n_users=30, n_businesses=12)
        dataset = generate(config, seed=1)
        assert len(dataset.user_ids) == 30
        assert len(dataset.business_ids) == 12

    def test_min_reviews_respected(self):
        config = SynthConfig(
            n_users=25, n_businesses=20, min_reviews_per_user=4
        )
        dataset = generate(config, seed=2)
        assert all(
            len(dataset.reviews_by(u)) >= 4 for u in dataset.user_ids
        )

    def test_user_reviews_distinct_businesses(self):
        dataset = generate(SynthConfig(n_users=20, n_businesses=30), seed=3)
        for user_id in dataset.user_ids:
            visited = [r.business_id for r in dataset.reviews_by(user_id)]
            assert len(visited) == len(set(visited))

    def test_heavy_tailed_activity(self):
        dataset = generate(SynthConfig(n_users=200, n_businesses=150), seed=4)
        counts = np.array(
            [len(dataset.reviews_by(u)) for u in dataset.user_ids]
        )
        # Heavy tail: the most active user far exceeds the median.
        assert counts.max() >= 4 * np.median(counts)

    def test_mentions_use_business_topics(self):
        dataset = generate(SynthConfig(n_users=20, n_businesses=10), seed=5)
        for review in dataset.reviews:
            topics = set(dataset.business(review.business_id).topics)
            for mention in review.mentions:
                assert mention.topic in topics

    def test_high_ratings_skew_positive(self):
        dataset = generate(SynthConfig(n_users=150, n_businesses=60), seed=6)
        pos = {True: 0, False: 0}
        for review in dataset.reviews:
            if review.rating == 5:
                for m in review.mentions:
                    pos[m.sentiment == "positive"] += 1
        assert pos[True] > 3 * pos[False]

    def test_yelp_has_useful_votes_tripadvisor_not(self):
        yelp = generate(yelp_config(n_users=60), seed=7)
        ta = generate(tripadvisor_config(n_users=60), seed=7)
        assert any(r.useful_votes > 0 for r in yelp.reviews)
        assert all(r.useful_votes == 0 for r in ta.reviews)

    def test_demographics_rate_contrast(self):
        ta = generate(tripadvisor_config(n_users=200), seed=8)
        yelp = generate(yelp_config(n_users=200), seed=8)

        def declared(dataset):
            return sum(
                1 for u in dataset.user_ids if dataset.user(u).city
            ) / len(dataset.user_ids)

        assert declared(ta) > declared(yelp)


class TestProfileRepositoryGenerator:
    def test_shapes(self):
        repo = generate_profile_repository(50, 30, 8.0, seed=1)
        assert len(repo) == 50
        assert repo.max_profile_size() <= 30
        assert 2.0 < repo.mean_profile_size() < 20.0

    def test_deterministic(self):
        a = generate_profile_repository(20, 15, 5.0, seed=9)
        b = generate_profile_repository(20, 15, 5.0, seed=9)
        assert a.profile("u000003").scores == b.profile("u000003").scores

    def test_skewed_property_popularity(self):
        repo = generate_profile_repository(300, 50, 10.0, seed=2)
        supports = sorted(
            (repo.support(p) for p in repo.property_labels), reverse=True
        )
        assert supports[0] >= 3 * supports[-1]

    def test_invalid_mean_size(self):
        with pytest.raises(DatasetError):
            generate_profile_repository(10, 5, 9.0)
