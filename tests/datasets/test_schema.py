"""Unit tests for the review-dataset records and indexes."""

import pytest

from repro.core import DatasetError
from repro.datasets import (
    Business,
    RawUser,
    Review,
    ReviewDataset,
    TopicMention,
)


@pytest.fixture()
def tiny():
    users = [RawUser("u1", city="Tokyo"), RawUser("u2")]
    businesses = [
        Business("b1", "Tokyo", ("Mexican", "CheapEats"), topics=("service",)),
        Business("b2", "Paris", ("French",)),
    ]
    reviews = [
        Review("u1", "b1", 5, (TopicMention("service", "positive"),), 3),
        Review("u1", "b2", 2),
        Review("u2", "b1", 3),
    ]
    return ReviewDataset(users, businesses, reviews)


class TestRecords:
    def test_business_needs_categories(self):
        with pytest.raises(DatasetError):
            Business("b", "Tokyo", ())

    @pytest.mark.parametrize("rating", [0, 6, -1])
    def test_rating_bounds(self, rating):
        with pytest.raises(DatasetError):
            Review("u", "b", rating)

    def test_negative_votes_rejected(self):
        with pytest.raises(DatasetError):
            Review("u", "b", 3, useful_votes=-1)

    def test_bad_sentiment_rejected(self):
        with pytest.raises(DatasetError):
            TopicMention("service", "meh")


class TestDatasetIndexes:
    def test_reviews_by_user(self, tiny):
        assert len(tiny.reviews_by("u1")) == 2
        assert len(tiny.reviews_by("u2")) == 1
        assert tiny.reviews_by("ghost") == []

    def test_reviews_of_business(self, tiny):
        assert len(tiny.reviews_of("b1")) == 2
        assert tiny.reviews_of("b2")[0].rating == 2

    def test_review_endpoints_validated(self, tiny):
        with pytest.raises(DatasetError):
            tiny.add_review(Review("ghost", "b1", 3))
        with pytest.raises(DatasetError):
            tiny.add_review(Review("u1", "ghost", 3))

    def test_unknown_lookups_raise(self, tiny):
        with pytest.raises(DatasetError):
            tiny.user("ghost")
        with pytest.raises(DatasetError):
            tiny.business("ghost")

    def test_destinations_threshold(self, tiny):
        assert set(tiny.destinations(1)) == {"b1", "b2"}
        assert tiny.destinations(2) == ["b1"]
        assert tiny.destinations(3) == []

    def test_categories_and_cities(self, tiny):
        assert set(tiny.categories()) == {"Mexican", "CheapEats", "French"}
        assert set(tiny.cities()) == {"Tokyo", "Paris"}

    def test_len_iter_repr(self, tiny):
        assert len(tiny) == 3
        assert len(list(tiny)) == 3
        assert "users=2" in repr(tiny)
