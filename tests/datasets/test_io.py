"""Unit tests for JSON IO of profiles and datasets (paper §7 format)."""

import json

import pytest

from repro.core import DatasetError
from repro.datasets import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    load_profiles,
    profiles_from_dict,
    profiles_to_dict,
    save_dataset,
    save_profiles,
)


class TestProfileIO:
    def test_roundtrip_in_memory(self, table2_repo):
        document = profiles_to_dict(table2_repo)
        restored = profiles_from_dict(document)
        assert set(restored.user_ids) == set(table2_repo.user_ids)
        assert (
            restored.profile("Alice").scores
            == table2_repo.profile("Alice").scores
        )

    def test_roundtrip_on_disk(self, table2_repo, tmp_path):
        path = tmp_path / "profiles.json"
        save_profiles(table2_repo, path)
        restored = load_profiles(path)
        assert len(restored) == 5
        # File must be plain JSON.
        json.loads(path.read_text())

    def test_wrong_format_rejected(self):
        with pytest.raises(DatasetError):
            profiles_from_dict({"format": "something-else", "users": []})

    def test_malformed_entry_rejected(self):
        with pytest.raises(DatasetError):
            profiles_from_dict(
                {"format": "podium-profiles-v1", "users": [{"nope": 1}]}
            )

    def test_empty_repository_roundtrip(self):
        from repro.core import UserRepository

        document = profiles_to_dict(UserRepository())
        assert len(profiles_from_dict(document)) == 0


class TestDatasetIO:
    def test_roundtrip_in_memory(self, ta_dataset):
        document = dataset_to_dict(ta_dataset)
        restored = dataset_from_dict(document)
        assert restored.user_ids == ta_dataset.user_ids
        assert restored.business_ids == ta_dataset.business_ids
        assert len(restored) == len(ta_dataset)
        original = ta_dataset.reviews[0]
        copied = restored.reviews[0]
        assert (copied.user_id, copied.business_id, copied.rating) == (
            original.user_id,
            original.business_id,
            original.rating,
        )
        assert copied.mentions == original.mentions

    def test_roundtrip_on_disk(self, yelp_dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset(yelp_dataset, path)
        restored = load_dataset(path)
        assert sum(r.useful_votes for r in restored.reviews) == sum(
            r.useful_votes for r in yelp_dataset.reviews
        )

    def test_wrong_format_rejected(self):
        with pytest.raises(DatasetError):
            dataset_from_dict({"format": "nope"})

    def test_malformed_review_rejected(self):
        document = {
            "format": "podium-reviews-v1",
            "users": [{"id": "u"}],
            "businesses": [
                {"id": "b", "city": "X", "categories": ["C"]}
            ],
            "reviews": [{"user": "u", "business": "b", "rating": "five"}],
        }
        with pytest.raises(DatasetError):
            dataset_from_dict(document)

    def test_business_metadata_preserved(self, ta_dataset):
        restored = dataset_from_dict(dataset_to_dict(ta_dataset))
        bid = ta_dataset.business_ids[0]
        assert restored.business(bid).topics == ta_dataset.business(bid).topics
        assert restored.business(bid).quality == pytest.approx(
            ta_dataset.business(bid).quality
        )
