"""Unit tests for the built-in domain catalog."""

from repro.datasets import catalog


class TestCatalogData:
    def test_every_leaf_cuisine_has_family_and_root(self):
        taxonomy = catalog.cuisine_taxonomy()
        for leaf in catalog.leaf_cuisines():
            assert "AnyCuisine" in taxonomy.ancestors(leaf)

    def test_families_cover_declared_parents(self):
        assert set(catalog.CUISINE_PARENTS.values()) == set(
            catalog.CUISINE_FAMILY_PARENTS
        )

    def test_every_city_has_a_region(self):
        taxonomy = catalog.city_taxonomy()
        for city in catalog.cities():
            assert len(taxonomy.parents(city)) == 1

    def test_price_tiers_disjoint_from_cuisines(self):
        assert not set(catalog.PRICE_TIERS) & set(catalog.leaf_cuisines())

    def test_topics_unique(self):
        assert len(set(catalog.REVIEW_TOPICS)) == len(catalog.REVIEW_TOPICS)

    def test_age_groups_ordered_and_unique(self):
        assert len(set(catalog.AGE_GROUPS)) == len(catalog.AGE_GROUPS)
        assert catalog.AGE_GROUPS[0].startswith("18")

    def test_stable_ordering(self):
        assert catalog.leaf_cuisines() == catalog.leaf_cuisines()
        assert catalog.cities() == catalog.cities()

    def test_scale(self):
        # Enough leaves/cities for the generators' n_cities defaults.
        assert len(catalog.leaf_cuisines()) >= 30
        assert len(catalog.cities()) >= 20
        assert len(catalog.REVIEW_TOPICS) >= 12
