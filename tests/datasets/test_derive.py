"""Unit tests for property derivation from raw activity (paper §8.1)."""

import pytest

from repro.datasets import (
    Business,
    DeriveConfig,
    RawUser,
    Review,
    ReviewDataset,
    build_repository,
    tripadvisor_derive_config,
    yelp_derive_config,
)
from repro.datasets.derive import (
    _activity_score,
    _normalize_avg_rating,
    derive_profile,
)


@pytest.fixture()
def handmade():
    """Two users, two businesses with known categories and ratings."""
    users = [RawUser("u1", city="Tokyo", age_group="25-34"), RawUser("u2")]
    businesses = [
        Business("mex", "Tokyo", ("Mexican", "CheapEats")),
        Business("fra", "Paris", ("French",)),
    ]
    reviews = [
        Review("u1", "mex", 5),
        Review("u1", "fra", 1),
        Review("u2", "fra", 3),
    ]
    return ReviewDataset(users, businesses, reviews)


@pytest.fixture()
def no_enrich():
    return DeriveConfig(enrich_taxonomy=False, functional_lives_in=False)


class TestNormalization:
    def test_parity_maps_to_half(self):
        assert _normalize_avg_rating(3.0, 3.0) == pytest.approx(0.5)

    def test_double_saturates_at_one(self):
        assert _normalize_avg_rating(6.0, 3.0) == 1.0
        assert _normalize_avg_rating(9.0, 3.0) == 1.0

    def test_zero_overall_defaults_half(self):
        assert _normalize_avg_rating(4.0, 0.0) == 0.5

    def test_activity_score_monotone(self):
        low = _activity_score(2, 100)
        high = _activity_score(80, 100)
        assert 0 < low < high <= 1.0
        assert _activity_score(100, 100) == pytest.approx(1.0)


class TestDeriveProfile:
    def test_demographics(self, handmade, no_enrich):
        profile = derive_profile(handmade, "u1", no_enrich, max_reviews=2)
        assert profile.score("livesIn Tokyo") == 1.0
        assert profile.score("ageGroup 25-34") == 1.0
        anon = derive_profile(handmade, "u2", no_enrich, max_reviews=2)
        assert not any(p.startswith("livesIn") for p in anon.properties)

    def test_avg_rating_normalized_by_user_mean(self, handmade, no_enrich):
        profile = derive_profile(handmade, "u1", no_enrich, max_reviews=2)
        # u1 overall mean = 3; Mexican mean = 5 -> 5/(2*3) = 0.8333
        assert profile.score("avgRating Mexican") == pytest.approx(5 / 6)
        # French mean = 1 -> 1/6
        assert profile.score("avgRating French") == pytest.approx(1 / 6)

    def test_visit_freq_fractions(self, handmade, no_enrich):
        profile = derive_profile(handmade, "u1", no_enrich, max_reviews=2)
        assert profile.score("visitFreq Mexican") == pytest.approx(0.5)
        assert profile.score("visitFreq CheapEats") == pytest.approx(0.5)
        assert profile.score("visitFreq French") == pytest.approx(0.5)

    def test_enthusiasm_fraction_of_points(self, handmade, no_enrich):
        profile = derive_profile(handmade, "u1", no_enrich, max_reviews=2)
        # 5 of 6 total rating points went to Mexican (and CheapEats).
        assert profile.score("enthusiasm Mexican") == pytest.approx(5 / 6)
        assert profile.score("enthusiasm French") == pytest.approx(1 / 6)

    def test_exclusion_hides_destination(self, handmade, no_enrich):
        config = no_enrich.excluding(["mex"])
        profile = derive_profile(handmade, "u1", config, max_reviews=2)
        assert not profile.has("avgRating Mexican")
        assert profile.has("avgRating French")
        # French is now u1's only review -> visitFreq 1.0.
        assert profile.score("visitFreq French") == pytest.approx(1.0)

    def test_user_without_reviews_keeps_demographics(self, no_enrich):
        dataset = ReviewDataset(
            [RawUser("lurker", city="Paris")],
            [Business("b", "Paris", ("French",))],
            [],
        )
        profile = derive_profile(dataset, "lurker", no_enrich, max_reviews=1)
        assert profile.properties == frozenset({"livesIn Paris"})

    def test_family_toggles(self, handmade):
        config = DeriveConfig(
            include_avg_rating=False,
            include_enthusiasm=False,
            include_activity=False,
            enrich_taxonomy=False,
            functional_lives_in=False,
        )
        profile = derive_profile(handmade, "u1", config, max_reviews=2)
        assert not any(p.startswith("avgRating") for p in profile.properties)
        assert not any(p.startswith("enthusiasm") for p in profile.properties)
        assert any(p.startswith("visitFreq") for p in profile.properties)


class TestBuildRepository:
    def test_taxonomy_enrichment_adds_parent_categories(self, handmade):
        repo = build_repository(
            handmade, DeriveConfig(functional_lives_in=False)
        )
        profile = repo.profile("u1")
        # Mexican -> Latin -> AnyCuisine, French -> European.
        assert profile.has("avgRating Latin")
        assert profile.has("avgRating European")
        assert profile.has("avgRating AnyCuisine")

    def test_functional_lives_in_closure(self, handmade):
        repo = build_repository(
            handmade, DeriveConfig(enrich_taxonomy=False)
        )
        profile = repo.profile("u1")
        assert profile.score("livesIn Tokyo") == 1.0
        assert profile.score("livesIn Paris") == 0.0

    def test_user_ids_subset(self, handmade, no_enrich):
        repo = build_repository(handmade, no_enrich, user_ids=["u2"])
        assert repo.user_ids == ["u2"]

    def test_yelp_config_simpler_than_tripadvisor(self, ta_dataset):
        ta_repo = build_repository(ta_dataset, tripadvisor_derive_config())
        yelp_repo = build_repository(ta_dataset, yelp_derive_config())
        assert (
            yelp_repo.mean_profile_size() < ta_repo.mean_profile_size()
        )
        assert len(yelp_repo.property_labels) < len(ta_repo.property_labels)
